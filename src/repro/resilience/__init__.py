"""``repro.resilience`` — chaos injection and failure containment.

The serving stack (``repro.aio``, ``repro.shard``) recovers from clean
kills; this package makes it survive the messy middle and proves it:

* :class:`ChaosProxy` / :class:`FaultSchedule` / :class:`FaultSpec` — a
  seeded, deterministic TCP man-in-the-middle injecting latency, jitter,
  partial writes, truncation, resets, blackholes, and bandwidth caps in
  declarative time windows.
* :class:`CircuitBreaker` / :class:`BreakerPolicy` /
  :class:`BreakerOpenError` — per-node closed/open/half-open breakers so
  a dead shard fails fast instead of charging every request the full
  retry+backoff schedule.
* :class:`OverloadPolicy` — server-side idle timeouts, per-batch request
  deadlines, and queue-depth/latency load shedding (``SERVER_ERROR
  busy``).

``tests/resilience`` drives mixed workloads through the proxy under
seeded schedules and asserts the invariants: no acknowledged write lost
on a live shard, every call terminates in bounded time, breakers open
and recover.
"""

from repro.resilience.breaker import (
    BreakerOpenError,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.resilience.chaos import (
    CLEAN,
    ChaosProxy,
    FaultSchedule,
    FaultSpec,
)
from repro.resilience.overload import OverloadPolicy

__all__ = [
    "BreakerOpenError",
    "BreakerPolicy",
    "CLEAN",
    "ChaosProxy",
    "CircuitBreaker",
    "FaultSchedule",
    "FaultSpec",
    "OverloadPolicy",
]
