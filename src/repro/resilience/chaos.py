"""ChaosProxy: a deterministic fault-injecting TCP man-in-the-middle.

Real memcached fleets do not fail by dying cleanly — they fail slow,
lossy, and half-broken: added latency and jitter, kernel buffers flushing
half a write before the rest, connections reset mid-stream, bytes
silently swallowed, links capped far below line rate.  The proxy sits in
front of any :class:`~repro.aio.server.AsyncTCPStoreServer` (or shard
worker) and injects exactly those faults, per forwarded chunk, under a
declarative :class:`FaultSchedule`:

    schedule = (
        FaultSchedule(seed=7)
        .always(latency=0.001, jitter=0.002)
        .window(0.0, 0.5, reset_prob=0.1, direction="out")
        .window(0.5, 1.0, blackhole=True)
    )
    async with ChaosProxy("127.0.0.1", server_port, schedule) as proxy:
        client = AsyncStoreClient(*proxy.address, ...)

Every random decision draws from a per-connection, per-direction
``random.Random`` derived from the schedule seed and the connection's
accept index — two runs with the same seed, workload, and timing windows
inject the same faults, which is what lets the invariant suite assert
exact recovery behaviour.  Injected-fault counts export through a
:class:`~repro.obs.registry.MetricsRegistry`
(``chaos_faults_total{kind=...}``) and a plain :attr:`fault_counts` dict.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.protocol.sockopt import tune_socket

#: per-read chunk size for both pump directions
CHUNK_SIZE = 65536

#: pause inserted between the two halves of an injected partial write
PARTIAL_WRITE_PAUSE = 0.02

#: client→server and server→client pump directions
INBOUND = "in"
OUTBOUND = "out"


@dataclass(frozen=True)
class FaultSpec:
    """The faults active for one direction of one connection, per chunk.

    Args:
        latency: fixed added delay (seconds) before forwarding a chunk.
        jitter: extra uniform [0, jitter) delay on top of ``latency``.
        reset_prob: probability the connection is hard-aborted (RST-style)
            instead of forwarding this chunk.
        partial_write_prob: probability a chunk is forwarded in two
            flushes separated by a pause (stresses incremental parsers).
        truncate_prob: probability a chunk loses its tail bytes —
            *corrupting* the stream; peers must fail or time out, never
            silently mis-parse.
        blackhole: swallow every chunk (delivered nowhere, no error).
        bandwidth: cap in bytes/second, applied as per-chunk pacing.
        direction: which pump this spec applies to — ``"in"``
            (client→server), ``"out"`` (server→client), or ``"both"``.
    """

    latency: float = 0.0
    jitter: float = 0.0
    reset_prob: float = 0.0
    partial_write_prob: float = 0.0
    truncate_prob: float = 0.0
    blackhole: bool = False
    bandwidth: Optional[float] = None
    direction: str = "both"

    def __post_init__(self) -> None:
        for name in ("latency", "jitter"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("reset_prob", "partial_write_prob", "truncate_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.direction not in (INBOUND, OUTBOUND, "both"):
            raise ValueError("direction must be 'in', 'out', or 'both'")

    def applies_to(self, direction: str) -> bool:
        return self.direction == "both" or self.direction == direction

    @property
    def clean(self) -> bool:
        return (
            not self.latency and not self.jitter and not self.reset_prob
            and not self.partial_write_prob and not self.truncate_prob
            and not self.blackhole and self.bandwidth is None
        )


CLEAN = FaultSpec()


class FaultSchedule:
    """A base fault spec plus time-windowed overrides, all seeded.

    The *base* spec (set via :meth:`always`) applies whenever no window
    covers the current elapsed time; windows are checked newest-first so a
    later-declared window overrides an earlier overlapping one.  Elapsed
    time is measured from :meth:`start` (the proxy calls it on
    ``start()``), so windows are relative to proxy startup — declarative
    and reproducible, not wall-clock dependent.
    """

    def __init__(self, seed: int = 0, clock: Callable[[], float] = time.monotonic) -> None:
        self.seed = seed
        self._clock = clock
        self._base = CLEAN
        self._windows: List[Tuple[float, float, FaultSpec]] = []
        self._epoch: Optional[float] = None

    # -- declaration (chainable) -----------------------------------------------

    def always(self, **faults: object) -> "FaultSchedule":
        """Set the base spec active outside every window."""
        self._base = replace(CLEAN, **faults)  # type: ignore[arg-type]
        return self

    def window(self, start: float, end: float, **faults: object) -> "FaultSchedule":
        """Add a ``[start, end)`` override window (seconds since start)."""
        if end <= start:
            raise ValueError("window end must be after start")
        self._windows.append(
            (start, end, replace(CLEAN, **faults))  # type: ignore[arg-type]
        )
        return self

    def partition(
        self,
        start: float = 0.0,
        end: Optional[float] = None,
        direction: str = INBOUND,
    ) -> "FaultSchedule":
        """Black-hole one direction only — an *asymmetric* partition.

        The nasty real-network failure symmetric blackholing can't model:
        with ``direction="in"`` requests vanish before the server but the
        server's half of TCP still flows, so the client's connection looks
        alive while every request times out; ``direction="out"`` delivers
        requests (the server *executes* writes) and drops only the
        acknowledgements — the canonical acked-vs-applied divergence that
        quorum accounting and anti-entropy must survive.  ``"both"`` is a
        full partition.  Declared as a window (not :meth:`always`) so it
        composes with a base spec instead of replacing it.
        """
        return self.window(
            start,
            end if end is not None else float("inf"),
            blackhole=True,
            direction=direction,
        )

    # -- evaluation --------------------------------------------------------------

    def start(self) -> None:
        """Anchor the schedule's t=0 (idempotent once started)."""
        if self._epoch is None:
            self._epoch = self._clock()

    @property
    def elapsed(self) -> float:
        return 0.0 if self._epoch is None else self._clock() - self._epoch

    def spec_at(self, elapsed: float, direction: str) -> FaultSpec:
        """The spec governing ``direction`` at ``elapsed`` seconds."""
        for start, end, spec in reversed(self._windows):
            if start <= elapsed < end and spec.applies_to(direction):
                return spec
        if self._base.applies_to(direction):
            return self._base
        return CLEAN

    def current_spec(self, direction: str) -> FaultSpec:
        return self.spec_at(self.elapsed, direction)

    def rng_for(self, connection_id: int, direction: str) -> random.Random:
        """Deterministic per-connection, per-direction randomness source."""
        stream = 2 * connection_id + (0 if direction == INBOUND else 1)
        return random.Random(self.seed * 1_000_003 + stream)


class ChaosProxy:
    """Seeded asyncio TCP proxy injecting :class:`FaultSchedule` faults.

    Args:
        upstream_host/upstream_port: the real server behind the proxy.
        schedule: what to inject and when; defaults to a clean pass-through.
        host/port: the proxy's own bind address (port 0 = ephemeral,
            exposed via :attr:`address` after :meth:`start`).
        registry: metrics registry for ``chaos_*`` series; ``None`` keeps
            counting in :attr:`fault_counts` only.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        schedule: Optional[FaultSchedule] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: set = set()
        self._writers: set = set()
        self._accepted = 0
        #: injected faults by kind: latency/reset/partial_write/truncate/
        #: blackhole_chunk/bandwidth/upstream_refused
        self.fault_counts: Dict[str, int] = {}
        self._registry = registry

    # -- accounting --------------------------------------------------------------

    def _count(self, kind: str, amount: int = 1) -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + amount
        if self._registry is not None:
            self._registry.counter(
                "chaos_faults_total", help="injected faults", kind=kind
            ).inc(amount)

    @property
    def total_injected(self) -> int:
        return sum(self.fault_counts.values())

    @property
    def connections(self) -> int:
        """Client connections accepted since start."""
        return self._accepted

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("proxy already started")
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )
        self.schedule.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The proxy's bound (host, port) — what clients should dial."""
        if self._server is None:
            raise RuntimeError("proxy not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Close the listener, abort live links, wait for pump tasks."""
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for writer in list(self._writers):
            self._abort(writer)
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        self._writers.clear()

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- data path ---------------------------------------------------------------

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        """RST-style teardown: no FIN handshake, no lingering buffers."""
        try:
            transport = writer.transport
            if transport is not None:
                transport.abort()
            else:  # pragma: no cover - transport always set for streams
                writer.close()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def _handle_client(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        connection_id = self._accepted
        self._accepted += 1
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except (ConnectionError, OSError):
            self._count("upstream_refused")
            self._abort(client_writer)
            return
        # both legs get the shared wire tuning: the proxy must not add
        # Nagle stalls the direct path doesn't have
        tune_socket(client_writer.get_extra_info("socket"))
        tune_socket(upstream_writer.get_extra_info("socket"))
        self._writers.add(client_writer)
        self._writers.add(upstream_writer)
        inbound = asyncio.ensure_future(
            self._pump(client_reader, upstream_writer, INBOUND, connection_id)
        )
        outbound = asyncio.ensure_future(
            self._pump(upstream_reader, client_writer, OUTBOUND, connection_id)
        )
        for pump in (inbound, outbound):
            self._tasks.add(pump)
            pump.add_done_callback(self._tasks.discard)
        try:
            await asyncio.gather(inbound, outbound, return_exceptions=True)
        finally:
            self._writers.discard(client_writer)
            self._writers.discard(upstream_writer)
            self._abort(client_writer)
            self._abort(upstream_writer)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        direction: str,
        connection_id: int,
    ) -> None:
        """Forward ``reader`` → ``writer`` applying the active fault spec."""
        rng = self.schedule.rng_for(connection_id, direction)
        try:
            while True:
                data = await reader.read(CHUNK_SIZE)
                if not data:
                    break
                spec = self.schedule.current_spec(direction)
                if spec.clean:
                    writer.write(data)
                    await writer.drain()
                    continue
                if spec.blackhole:
                    # direction-tagged so asymmetric partitions are
                    # observable: a one-way drop counts only its own pump
                    self._count("blackhole_chunk")
                    self._count(f"blackhole_{direction}")
                    continue
                delay = spec.latency
                if spec.jitter:
                    delay += rng.random() * spec.jitter
                if delay > 0:
                    self._count("latency")
                    await asyncio.sleep(delay)
                if spec.bandwidth is not None:
                    self._count("bandwidth")
                    await asyncio.sleep(len(data) / spec.bandwidth)
                if spec.reset_prob and rng.random() < spec.reset_prob:
                    self._count("reset")
                    self._abort(writer)
                    return
                if (
                    spec.truncate_prob
                    and len(data) > 1
                    and rng.random() < spec.truncate_prob
                ):
                    self._count("truncate")
                    data = data[: rng.randrange(1, len(data))]
                if (
                    spec.partial_write_prob
                    and len(data) > 1
                    and rng.random() < spec.partial_write_prob
                ):
                    self._count("partial_write")
                    split = rng.randrange(1, len(data))
                    writer.write(data[:split])
                    await writer.drain()
                    await asyncio.sleep(PARTIAL_WRITE_PAUSE)
                    writer.write(data[split:])
                else:
                    writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
