"""Client-side circuit breaker: closed → open → half-open → closed.

A dead shard costs a retry-with-backoff schedule *per request* — every
caller pays connect timeout × attempts before learning what the previous
caller already knew.  The breaker remembers: consecutive transport
failures open the circuit, open requests fail fast with
:class:`BreakerOpenError` (no dial, no sleep), and after a recovery
period a bounded number of half-open probes test the water.  Probe
success closes the circuit; probe failure re-opens it.

The breaker tracks *transport* health (connect failures, timeouts,
dropped connections).  ``SERVER_ERROR busy`` shedding replies are a
healthy transport saying "back off" and are deliberately not counted —
opening the breaker on them would turn graceful degradation into an
outage.

State, transitions, and short-circuit counts export through a
:class:`~repro.obs.registry.MetricsRegistry` and (optionally) a
:class:`~repro.obs.trace.EventTrace`, so chaos runs can correlate breaker
flips with injected fault windows.  The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import BreakerTransitionEvent, EventTrace

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: gauge encoding of the state, for ``breaker_state`` metric series
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class BreakerOpenError(ConnectionError):
    """Request short-circuited: the breaker for this host is open."""


@dataclass(frozen=True)
class BreakerPolicy:
    """When to trip, how long to stay open, and how to probe recovery.

    Args:
        failure_threshold: consecutive transport failures that open the
            circuit from closed.
        recovery_time: seconds the circuit stays open before allowing
            half-open probes.
        half_open_max_probes: concurrent trial requests admitted while
            half-open; everything beyond that fails fast.
        success_threshold: probe successes needed to close the circuit.
    """

    failure_threshold: int = 5
    recovery_time: float = 1.0
    half_open_max_probes: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_time < 0:
            raise ValueError("recovery_time must be non-negative")
        if self.half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        if self.success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")


class CircuitBreaker:
    """One breaker guarding one node (host:port or shard name).

    Args:
        policy: thresholds and timings.
        name: node label for metrics/trace (e.g. ``"shard-0"``).
        clock: monotonic seconds source (inject for deterministic tests).
        registry: metrics registry for state/transition/short-circuit
            series; defaults to a no-op-free private registry omitted
            entirely when ``None``.
        trace: optional event trace receiving
            :class:`BreakerTransitionEvent` records.
    """

    __slots__ = (
        "policy", "name", "_clock", "_state", "_failures", "_successes",
        "_probes", "_opened_at", "_trace",
        "_state_gauge", "_opens", "_short_circuits",
    )

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        name: str = "",
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self.name = name
        self._clock = clock
        self._state = CLOSED
        self._failures = 0      # consecutive failures while closed
        self._successes = 0     # probe successes while half-open
        self._probes = 0        # in-flight half-open probes
        self._opened_at = 0.0
        self._trace = trace
        if registry is not None:
            self._state_gauge = registry.gauge(
                "client_breaker_state",
                help="circuit state (0=closed, 1=half_open, 2=open)",
                node=name,
            )
            self._opens = registry.counter(
                "client_breaker_opens_total",
                help="closed/half_open -> open transitions", node=name,
            )
            self._short_circuits = registry.counter(
                "client_breaker_short_circuits_total",
                help="requests failed fast while open", node=name,
            )
        else:
            self._state_gauge = None
            self._opens = None
            self._short_circuits = None

    # -- state machine ---------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when recovery is due."""
        self._maybe_half_open()
        return self._state

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if old_state == new_state:
            return
        if self._state_gauge is not None:
            self._state_gauge.set(STATE_CODES[new_state])
            if new_state == OPEN:
                self._opens.inc()
        if self._trace is not None:
            self._trace.record(
                BreakerTransitionEvent(
                    node=self.name, old_state=old_state, new_state=new_state
                )
            )

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.policy.recovery_time
        ):
            self._probes = 0
            self._successes = 0
            self._transition(HALF_OPEN)

    def allow(self) -> bool:
        """May a request proceed right now?  Counts half-open probes."""
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN:
            if self._probes < self.policy.half_open_max_probes:
                self._probes += 1
                return True
            return False
        # open and not yet recovered
        if self._short_circuits is not None:
            self._short_circuits.inc()
        return False

    def record_success(self) -> None:
        """A request completed over a healthy transport."""
        if self._state == HALF_OPEN:
            self._probes = max(0, self._probes - 1)
            self._successes += 1
            if self._successes >= self.policy.success_threshold:
                self._failures = 0
                self._transition(CLOSED)
        elif self._state == CLOSED:
            self._failures = 0
        # success while open: a straggler from before the trip — ignore

    def record_failure(self) -> None:
        """A request failed at the transport layer."""
        if self._state == HALF_OPEN:
            self._probes = max(0, self._probes - 1)
            self._open()
        elif self._state == CLOSED:
            self._failures += 1
            if self._failures >= self.policy.failure_threshold:
                self._open()
        # failure while already open: nothing new to learn

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._transition(OPEN)
