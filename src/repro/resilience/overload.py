"""Server self-protection knobs: idle timeouts, deadlines, load shedding.

An overloaded cache that degrades *everyone* is worse than one that says
``SERVER_ERROR busy`` to *some* — the paper's cost-aware replacement only
helps if the serving layer in front of it survives load swings.  An
:class:`OverloadPolicy` bundles the three defences both servers
(:class:`~repro.aio.server.AsyncTCPStoreServer` and
:class:`~repro.protocol.server.TCPStoreServer`) understand:

* **idle timeout** — a silent client can no longer pin a
  ``max_connections`` slot forever; the server closes it and records an
  :class:`~repro.obs.trace.IdleDisconnectEvent`.
* **request deadline** — a pipelined batch gets a wall-clock budget; once
  it is spent, the remaining commands in the batch are answered
  ``SERVER_ERROR busy`` (framing preserved: one reply per reply-expecting
  command) instead of holding the loop hostage.
* **load shedding** — when in-flight batches exceed ``max_inflight`` or
  the dispatch-latency EWMA exceeds ``shed_latency_us``, whole incoming
  batches are answered busy without touching the store.

``None`` for any knob disables that defence; the all-``None`` default is
byte-for-byte the unprotected fast path (the overhead-guard benchmark
holds it to the PR 3 baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class OverloadPolicy:
    """Which self-protections are armed, and their thresholds.

    Args:
        idle_timeout: seconds a connection may sit with no readable bytes
            before the server closes it.
        request_deadline: wall-clock seconds one pipelined batch may spend
            dispatching before its remaining commands are shed.
        max_inflight: batches concurrently between read and fully-written
            response, above which new batches are shed (queue-depth gate).
        shed_latency_us: dispatch-latency EWMA (microseconds per batch)
            above which new batches are shed (latency gate).
        latency_alpha: EWMA smoothing factor in (0, 1]; higher reacts
            faster to spikes.
    """

    idle_timeout: Optional[float] = None
    request_deadline: Optional[float] = None
    max_inflight: Optional[int] = None
    shed_latency_us: Optional[float] = None
    latency_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ValueError("request_deadline must be positive")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.shed_latency_us is not None and self.shed_latency_us <= 0:
            raise ValueError("shed_latency_us must be positive")
        if not 0.0 < self.latency_alpha <= 1.0:
            raise ValueError("latency_alpha must be in (0, 1]")

    @property
    def enabled(self) -> bool:
        """True when any defence is armed."""
        return (
            self.idle_timeout is not None
            or self.request_deadline is not None
            or self.max_inflight is not None
            or self.shed_latency_us is not None
        )
