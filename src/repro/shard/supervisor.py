"""The shard supervisor — spawn, monitor, respawn, and aggregate workers.

The process model is nginx/memcached-meets-prefork: a parent that owns no
traffic, N shared-nothing workers that own everything (store, policies,
event loop, metrics), and a monitor thread that respawns any worker that
dies.  A respawned worker rebinds its predecessor's port, so the fleet's
endpoints are stable and clients recover with the ordinary PR 1
retry/backoff path — no coordination protocol, no connection draining.

Because each shard runs its own per-slab-class policies over its own key
subset, eviction decisions inside one shard are identical to a
single-process store serving only that subset — sharding changes *where*
the paper's replacement work happens, never *what* gets evicted
(DESIGN.md §8).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.aggregate import merge_trace_stats, sum_numeric_stats
from repro.protocol.client import CostAwareClient
from repro.shard.router import Endpoint, ShardRouter
from repro.shard.worker import ShardConfig, worker_main


class ShardStartupError(RuntimeError):
    """A worker failed to come up (or report ready) in time."""


class _WorkerHandle:
    """Parent-side state for one worker process."""

    __slots__ = ("name", "process", "host", "port", "restarts")

    def __init__(self, name: str, process, host: str, port: int) -> None:
        self.name = name
        self.process = process
        self.host = host
        self.port = port
        self.restarts = 0


def _default_start_method() -> str:
    # fork is by far the cheapest way to stamp out N identical workers
    # (no re-import of numpy per child); fall back to spawn where fork
    # does not exist (Windows) — worker_main and ShardConfig pickle fine.
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardSupervisor:
    """Run N shard workers as child processes behind stable endpoints.

    Args:
        num_shards: worker count (one store + asyncio server each).
        host: bind address for every worker (loopback by default).
        ports: optional explicit port per shard; default lets each worker
            bind an ephemeral port and report it back.
        policy / memory_limit / slab_size / max_connections: forwarded
            into each worker's :class:`~repro.shard.worker.ShardConfig`.
            ``memory_limit`` is the PER-SHARD budget (a 4-shard fleet with
            the default serves 4x the memory of one process).
        tier_bytes / tier_dir / tier_segment_bytes: per-shard flash tier;
            each worker opens ``tier_dir/<shard-name>``, so a respawned
            worker recovers its predecessor's spilled entries.
        trace_dir / trace_sample / trace_events / trace_capacity: request
            tracing (DESIGN.md §12).  ``trace_dir`` set arms a
            server-side :class:`~repro.obs.tracing.Tracer` in every
            worker; each exports its span ring to
            ``trace_dir/<shard>-<pid>.jsonl`` on shutdown, ready for
            :mod:`repro.obs.tracecollect`.  ``trace_events`` sizes the
            per-worker :class:`~repro.obs.trace.EventTrace` ring that
            ``stats trace`` (and :meth:`aggregate_trace`) reads.
        replicas: ketama points per shard for routers/pools built here.
        replication: workers per shard group (R).  The ring still routes
            by *group* name, so R=1 (the default) is byte-for-byte the
            old unreplicated fleet; R>1 runs ``num_shards`` groups of R
            members named ``<group>.r<j>``, every member holding the
            group's full key range (DESIGN.md §14).
        write_quorum: default W for pools built by :meth:`connect_pool`
            (None = all R members, synchronous; 1 = fire-and-forget
            async replication).
        anti_entropy_interval: seconds between background digest-compare
            -and-repair sweeps over every group (0 = no background loop;
            call :meth:`repair_replicas` manually).
        replica_nslots: digest slots for anti-entropy and convergence
            probes.
        bootstrap_on_respawn: whether a respawned member copies its key
            range from a live same-group peer before serving.
        start_method: multiprocessing start method; default prefers
            ``fork`` and falls back to ``spawn``.
        respawn: whether the monitor thread restarts dead workers.
        max_respawns: per-shard restart budget before giving up.
        monitor_interval: seconds between liveness sweeps.

    Use as a context manager (``with ShardSupervisor(4) as sup:``) from
    synchronous code — start it *before* entering an event loop so workers
    never fork a live loop.
    """

    def __init__(
        self,
        num_shards: int = 2,
        host: str = "127.0.0.1",
        ports: Optional[List[int]] = None,
        policy: str = "gdwheel",
        memory_limit: int = 64 * 1024 * 1024,
        slab_size: int = 1024 * 1024,
        max_connections: Optional[int] = None,
        replicas: int = 100,
        start_method: Optional[str] = None,
        respawn: bool = True,
        max_respawns: int = 5,
        monitor_interval: float = 0.2,
        name_prefix: str = "shard",
        startup_timeout: float = 30.0,
        tier_bytes: int = 0,
        tier_dir: Optional[str] = None,
        tier_segment_bytes: int = 256 * 1024,
        trace_dir: Optional[str] = None,
        trace_sample: int = 100,
        trace_events: int = 512,
        trace_capacity: int = 4096,
        replication: int = 1,
        write_quorum: Optional[int] = None,
        anti_entropy_interval: float = 0.0,
        replica_nslots: int = 64,
        bootstrap_on_respawn: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if write_quorum is not None and not 1 <= write_quorum <= replication:
            raise ValueError(
                f"write_quorum must be in 1..{replication} (R), "
                f"got {write_quorum}"
            )
        if ports is not None and len(ports) != num_shards * replication:
            raise ValueError(
                "ports must list one port per worker "
                f"(num_shards*replication = {num_shards * replication})"
            )
        self.num_shards = num_shards
        self.host = host
        self.policy = policy
        self.memory_limit = memory_limit
        self.slab_size = slab_size
        self.max_connections = max_connections
        self.tier_bytes = tier_bytes
        self.tier_dir = tier_dir
        self.tier_segment_bytes = tier_segment_bytes
        self.trace_dir = trace_dir
        self.trace_sample = trace_sample
        self.trace_events = trace_events
        self.trace_capacity = trace_capacity
        self.replicas = replicas
        self.replication = replication
        self.write_quorum = write_quorum
        self.anti_entropy_interval = anti_entropy_interval
        self.replica_nslots = replica_nslots
        self.bootstrap_on_respawn = bootstrap_on_respawn
        self.respawn = respawn
        self.max_respawns = max_respawns
        self.monitor_interval = monitor_interval
        self.startup_timeout = startup_timeout
        self._requested_ports = ports
        # group names define the ring; member names are the processes.
        # With R=1 member name == group name, so every existing caller
        # (and every on-disk tier path) sees exactly the old fleet.
        self._group_names = [f"{name_prefix}-{i}" for i in range(num_shards)]
        self._group_members: Dict[str, List[str]] = {
            group: (
                [group] if replication == 1
                else [f"{group}.r{j}" for j in range(replication)]
            )
            for group in self._group_names
        }
        self._member_group: Dict[str, str] = {
            member: group
            for group, members in self._group_members.items()
            for member in members
        }
        self._names = [
            member
            for group in self._group_names
            for member in self._group_members[group]
        ]
        self._ctx = multiprocessing.get_context(
            start_method if start_method is not None else _default_start_method()
        )
        self._handles: Dict[str, _WorkerHandle] = {}
        self._lock = threading.Lock()
        self._monitor: Optional[threading.Thread] = None
        self._anti_entropy: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        # serializes _respawn against stop(): a respawn in flight when
        # shutdown begins either finishes (and its fresh worker is then
        # terminated with the rest) or never starts — no worker can be
        # (re)spawned after stop() has swept the fleet
        self._respawn_lock = threading.Lock()
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker and block until all report ready."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        try:
            for index, name in enumerate(self._names):
                port = (
                    self._requested_ports[index]
                    if self._requested_ports is not None
                    else 0
                )
                self._handles[name] = self._spawn(name, port)
        except Exception:
            self.stop()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-supervisor-monitor", daemon=True
        )
        self._monitor.start()
        if self.anti_entropy_interval > 0 and self.replication > 1:
            self._anti_entropy = threading.Thread(
                target=self._anti_entropy_loop,
                name="shard-supervisor-anti-entropy",
                daemon=True,
            )
            self._anti_entropy.start()

    def _spawn(
        self,
        name: str,
        port: int,
        bootstrap_peers: Tuple[Tuple[str, int], ...] = (),
    ) -> _WorkerHandle:
        """Start one worker and wait for its ready report."""
        config = ShardConfig(
            name=name,
            host=self.host,
            port=port,
            policy=self.policy,
            memory_limit=self.memory_limit,
            slab_size=self.slab_size,
            max_connections=self.max_connections,
            tier_bytes=self.tier_bytes,
            tier_dir=self.tier_dir,
            tier_segment_bytes=self.tier_segment_bytes,
            trace_dir=self.trace_dir,
            trace_sample=self.trace_sample,
            trace_events=self.trace_events,
            trace_capacity=self.trace_capacity,
            replica_group=self._member_group[name],
            replica_versions=self.replication > 1,
            bootstrap_peers=bootstrap_peers,
            bootstrap_nslots=self.replica_nslots,
        )
        parent_end, child_end = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(config, child_end),
            name=f"gdwheel-{name}",
            daemon=True,
        )
        process.start()
        child_end.close()  # the worker owns the other end now
        try:
            if not parent_end.poll(self.startup_timeout):
                raise ShardStartupError(f"worker {name} never reported ready")
            report = parent_end.recv()
        except (EOFError, OSError) as exc:
            process.terminate()
            process.join(timeout=5)
            raise ShardStartupError(f"worker {name} died during startup") from exc
        finally:
            parent_end.close()
        return _WorkerHandle(name, process, report["host"], report["port"])

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful fleet shutdown: SIGTERM, join, then kill stragglers."""
        self._stopping.set()
        # wait out any respawn already in flight: after this, _respawn's
        # entry check sees _stopping and refuses, so the handle list we
        # sweep below is complete — no worker can appear after the sweep
        if self._respawn_lock.acquire(timeout=timeout):
            self._respawn_lock.release()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout)
            self._monitor = None
        if self._anti_entropy is not None:
            self._anti_entropy.join(timeout=timeout)
            self._anti_entropy = None
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            if handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + timeout
        for handle in handles:
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(timeout=1.0)

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- monitoring / respawn ---------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.monitor_interval):
            with self._lock:
                dead = [
                    handle
                    for handle in self._handles.values()
                    if not handle.process.is_alive()
                ]
            for handle in dead:
                if self._stopping.is_set():
                    return
                self._respawn(handle)

    def _respawn(self, handle: _WorkerHandle) -> None:
        with self._respawn_lock:
            # checked *inside* the lock: a worker that dies while stop()
            # is sweeping the fleet must not be resurrected after its
            # SIGTERM — the old entry-less path could spawn a fresh
            # process that outlived the supervisor
            if self._stopping.is_set():
                return
            handle.process.join(timeout=1.0)  # reap the corpse
            if not self.respawn or handle.restarts >= self.max_respawns:
                return
            restarts = handle.restarts + 1
            peers = self._bootstrap_peers_for(handle.name)
            try:
                # rebind the dead worker's port so existing clients
                # recover by plain retry; a new ready report confirms the
                # listener is live (and, with peers, already warmed)
                fresh = self._spawn(handle.name, handle.port,
                                    bootstrap_peers=peers)
            except ShardStartupError:
                try:
                    # port may be briefly unavailable — fall back to ephemeral
                    fresh = self._spawn(handle.name, 0, bootstrap_peers=peers)
                except ShardStartupError:  # pragma: no cover - startup storm
                    return
            fresh.restarts = restarts
            with self._lock:
                if self._stopping.is_set():  # lost the race with stop()
                    fresh.process.terminate()
                    fresh.process.join(timeout=1.0)
                    return
                self._handles[handle.name] = fresh

    def _bootstrap_peers_for(
        self, member: str
    ) -> Tuple[Tuple[str, int], ...]:
        """Live same-group endpoints a respawning ``member`` can copy from."""
        if not self.bootstrap_on_respawn or self.replication < 2:
            return ()
        group = self._member_group[member]
        with self._lock:
            return tuple(
                (h.host, h.port)
                for name in self._group_members[group]
                if name != member
                for h in (self._handles.get(name),)
                if h is not None and h.process.is_alive()
            )

    # -- introspection ----------------------------------------------------------

    @property
    def shard_names(self) -> List[str]:
        """Every worker (member) name; == group names when R=1."""
        return list(self._names)

    @property
    def group_names(self) -> List[str]:
        """Replica group names — the identities on the hash ring."""
        return list(self._group_names)

    def members_of(self, group: str) -> List[str]:
        """Member names of one replica group, in rotation order."""
        return list(self._group_members[group])

    def endpoints(self) -> Dict[str, Endpoint]:
        """Worker name -> (host, port) for every worker."""
        with self._lock:
            return {
                name: (handle.host, handle.port)
                for name, handle in self._handles.items()
            }

    def group_endpoints(self) -> Dict[str, Dict[str, Endpoint]]:
        """Group name -> {member name -> (host, port)}."""
        endpoints = self.endpoints()
        return {
            group: {
                member: endpoints[member]
                for member in members
                if member in endpoints
            }
            for group, members in self._group_members.items()
        }

    def pids(self) -> Dict[str, Optional[int]]:
        with self._lock:
            return {
                name: handle.process.pid
                for name, handle in self._handles.items()
            }

    def restarts(self) -> Dict[str, int]:
        """Per-shard respawn counts (0 = original process still serving)."""
        with self._lock:
            return {name: h.restarts for name, h in self._handles.items()}

    def alive(self) -> Dict[str, bool]:
        with self._lock:
            return {
                name: handle.process.is_alive()
                for name, handle in self._handles.items()
            }

    def kill_worker(self, name: str) -> int:
        """SIGKILL one worker (chaos testing); returns the dead pid.

        The monitor thread observes the death and respawns a replacement
        on the same endpoint (respawn budget permitting).
        """
        with self._lock:
            handle = self._handles[name]
        pid = handle.process.pid
        handle.process.kill()
        return pid

    def wait_for_respawn(
        self, name: str, min_restarts: int = 1, timeout: float = 10.0
    ) -> bool:
        """Block until ``name`` has been respawned at least ``min_restarts``
        times and is alive again; returns False on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                handle = self._handles[name]
                if handle.restarts >= min_restarts and handle.process.is_alive():
                    return True
            time.sleep(0.05)
        return False

    # -- client-side views ------------------------------------------------------

    def router(self) -> ShardRouter:
        """A :class:`ShardRouter` over the current endpoints (R=1 only —
        with replica groups a flat member ring would split each group's
        keyspace; use :meth:`replica_router`)."""
        if self.replication > 1:
            raise RuntimeError(
                "router() is for unreplicated fleets; use replica_router()"
            )
        return ShardRouter(self.endpoints(), replicas=self.replicas)

    def replica_router(self):
        """A :class:`~repro.replica.router.ReplicaRouter` over the groups.

        Works at any R (R=1 groups are groups of one), and routes by the
        same group names :meth:`router` would use, so the key→group
        assignment is identical to the unreplicated fleet's key→shard.
        """
        from repro.replica.router import ReplicaRouter

        return ReplicaRouter(self.group_endpoints(), replicas=self.replicas)

    def connect_pool(self, **kwargs):
        """A live pool over the fleet.

        R=1: an :class:`~repro.aio.pool.AsyncStorePool` (exactly the old
        behaviour, same kwargs).  R>1: a
        :class:`~repro.replica.pool.ReplicatedStorePool` with this
        supervisor's default ``write_quorum`` (overridable per call).
        """
        if self.replication == 1:
            return self.router().connect_pool(**kwargs)
        kwargs.setdefault("write_quorum", self.write_quorum)
        return self.replica_router().connect_pool(**kwargs)

    # -- anti-entropy -----------------------------------------------------------

    def _repairer(self):
        from repro.replica.antientropy import AntiEntropyRepairer

        return AntiEntropyRepairer(
            self.group_endpoints(), nslots=self.replica_nslots
        )

    def repair_replicas(self):
        """One digest-compare-and-repair sweep over every replica group.

        Returns the sweep's
        :class:`~repro.replica.antientropy.RepairReport`.  Safe to call
        with members down (their groups are skipped this sweep).
        """
        return self._repairer().run_once()

    def replicas_converged(self) -> bool:
        """Do all members of every group hold identical digests right now?"""
        if self.replication < 2:
            return True
        return self._repairer().converged()

    def _anti_entropy_loop(self) -> None:
        while not self._stopping.wait(self.anti_entropy_interval):
            try:
                self.repair_replicas()
            except Exception:  # pragma: no cover - workers mid-respawn
                # a sweep racing a dying/respawning member can fail in
                # arbitrary connection-shaped ways; the next sweep repairs
                continue

    # -- fleet telemetry --------------------------------------------------------

    def per_shard_stats(self, subcommand: str = "") -> Dict[str, Dict[str, str]]:
        """Raw ``stats [subcommand]`` per shard over short-lived connections."""
        out: Dict[str, Dict[str, str]] = {}
        for name, (host, port) in self.endpoints().items():
            client = CostAwareClient.tcp(host, port)
            try:
                out[name] = client.stats(subcommand)
            finally:
                client.close()
        return out

    def aggregate_stats(self, subcommand: str = "") -> Dict[str, object]:
        """Numeric sum of every shard's stats (counters and level gauges).

        Ratios/percentiles do not sum; recompute them from the summed raw
        series (see :mod:`repro.obs.aggregate`).
        """
        return sum_numeric_stats(self.per_shard_stats(subcommand).values())

    def aggregate_trace(self) -> Dict[str, object]:
        """Fleet-wide ``stats trace`` view: pull every worker's EventTrace
        ring through the supervisor and merge (summed per-kind counts plus
        a shard-tagged, per-shard-ordered event tail).

        See :func:`repro.obs.aggregate.merge_trace_stats` for the shape.
        """
        return merge_trace_stats(self.per_shard_stats("trace"))

    def cluster_top(self, seconds: float = 1.0) -> str:
        """One rendered frame of the live cluster health table.

        Samples every shard's default + metrics stats twice, ``seconds``
        apart, and renders per-shard ops/s, GET p99, hit rate, evictions,
        tier hit/spill rates, shed counts, and item counts (see
        :mod:`repro.obs.top`).  Replicated fleets add a ``group`` column
        with members of the same group rendered adjacent.
        """
        from repro.obs.top import top_table

        return top_table(
            self.per_shard_stats,
            seconds=seconds,
            replica_groups=(
                dict(self._member_group) if self.replication > 1 else None
            ),
        )
