"""Client-side key→shard routing for a sharded deployment.

The router wraps the same ketama ring
(:class:`repro.cluster.consistent.ConsistentHashRing`) that both
:class:`repro.cluster.pool.StorePool` and
:class:`repro.aio.pool.AsyncStorePool` build internally, keyed by shard
*name* — never by address.  Names outlive worker processes: a shard that
crashes and respawns (even on a new port) keeps its name and therefore its
ring points, so the key→shard assignment is byte-for-byte stable across
restarts and across every client that knows the same shard names.

:meth:`ShardRouter.connect_pool` turns the routing table into a live
:class:`AsyncStorePool`, which makes a sharded deployment a drop-in,
protocol-compatible replacement for the multi-node cluster client from
PR 1.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.aio.backoff import RetryPolicy
from repro.aio.client import AsyncStoreClient
from repro.aio.pool import AsyncStorePool
from repro.cluster.consistent import ConsistentHashRing
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker

Endpoint = Tuple[str, int]


class ShardRouter:
    """Key→shard assignment plus the address book to reach each shard.

    Args:
        endpoints: shard name -> (host, port).  The *names* define the
            ring; the addresses are just delivery details and may be
            updated in place (:meth:`update_endpoint`) without moving any
            keys.
        replicas: virtual ring points per shard (must match the value
            other clients use for their routing to agree).
    """

    def __init__(self, endpoints: Dict[str, Endpoint], replicas: int = 100) -> None:
        if not endpoints:
            raise ValueError("a router needs at least one shard endpoint")
        self.replicas = replicas
        self._endpoints: Dict[str, Endpoint] = dict(endpoints)
        self._ring = ConsistentHashRing(list(self._endpoints), replicas=replicas)

    def __len__(self) -> int:
        return len(self._endpoints)

    @property
    def shards(self) -> Tuple[str, ...]:
        return tuple(self._endpoints)

    @property
    def endpoints(self) -> Dict[str, Endpoint]:
        return dict(self._endpoints)

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    def shard_for(self, key: bytes) -> str:
        """The shard name owning ``key`` (pure ring lookup)."""
        shard = self._ring.node_for(key)
        assert shard is not None  # the ring is never empty
        return shard

    def endpoint_for(self, key: bytes) -> Endpoint:
        """The (host, port) currently serving ``key``'s shard."""
        return self._endpoints[self.shard_for(key)]

    def update_endpoint(self, shard: str, host: str, port: int) -> None:
        """Point ``shard`` at a new address — routing does not change."""
        if shard not in self._endpoints:
            raise KeyError(f"unknown shard {shard!r}")
        self._endpoints[shard] = (host, port)

    def connect_pool(
        self,
        pool_size: int = 4,
        timeout: Optional[float] = 5.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        registry=None,
        trace=None,
        tracer=None,
        batching: str = "mget",
    ) -> AsyncStorePool:
        """A live :class:`AsyncStorePool` over the current endpoints.

        The pool re-derives the ring from the same shard names and replica
        count, so ``pool.node_for(key) == router.shard_for(key)`` for every
        key; clients inherit the PR 1 retry/backoff behaviour, which is
        what rides out a worker respawn.

        With ``breaker_policy`` set, every shard's client gets its own
        :class:`~repro.resilience.CircuitBreaker` (named after the shard,
        exporting state through ``registry``/``trace`` when given), so a
        dead shard fails fast with
        :class:`~repro.resilience.BreakerOpenError` instead of charging
        each request the full retry+backoff schedule.

        With ``tracer`` set, the pool and every shard client share that
        one :class:`~repro.obs.tracing.Tracer`: the pool makes the
        sampling decision, per-node clients record their hop spans, and
        the context propagates to each shard server on the wire.

        ``batching`` (default ``"mget"``) selects how each shard client
        puts batches on the wire — one first-class MGET/MSET frame per
        shard, with per-key fallback negotiated against old shard
        servers; see :class:`AsyncStoreClient`.
        """
        clients = {
            shard: AsyncStoreClient(
                host, port, pool_size=pool_size, timeout=timeout,
                retry=retry, rng=rng,
                breaker=(
                    CircuitBreaker(
                        breaker_policy, name=shard,
                        registry=registry, trace=trace,
                    )
                    if breaker_policy is not None else None
                ),
                tracer=tracer,
                batching=batching,
            )
            for shard, (host, port) in self._endpoints.items()
        }
        return AsyncStorePool(clients, replicas=self.replicas, tracer=tracer)
