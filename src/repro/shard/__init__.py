"""``repro.shard`` — the shared-nothing multi-process serving engine.

PR 1 gave the reproduction an asyncio server; this package multiplies it
across cores.  A :class:`ShardSupervisor` runs N worker processes (each a
complete store + server, see :mod:`repro.shard.worker`), respawns any that
die, and exposes stable per-shard endpoints.  A :class:`ShardRouter` maps
keys onto shards with the same ketama ring every other client in the repo
uses, so a sharded deployment is protocol- and routing-compatible with the
multi-node :class:`~repro.aio.pool.AsyncStorePool` from PR 1.

The paper's replacement-policy story survives intact: shards are
shared-nothing, each key lives on exactly one shard, and that shard's
GD-Wheel instances see exactly the traffic a single-process store serving
the same key subset would see — eviction behaviour is preserved while the
serialized per-operation section stops being a global bottleneck
(DESIGN.md §8).
"""

from repro.shard.router import ShardRouter
from repro.shard.supervisor import ShardStartupError, ShardSupervisor
from repro.shard.worker import (
    POLICY_FACTORIES,
    ShardConfig,
    build_store,
    worker_main,
)

__all__ = [
    "POLICY_FACTORIES",
    "ShardConfig",
    "ShardRouter",
    "ShardStartupError",
    "ShardSupervisor",
    "build_store",
    "worker_main",
]
