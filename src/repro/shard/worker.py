"""Shard worker — one process, one :class:`KVStore`, one asyncio server.

Each worker is a complete single-shard deployment of the PR 1/PR 2 stack:
its own slab allocator, its own per-class GD-Wheel (or comparator) policy
instances, its own metrics registry, and its own event loop.  Nothing is
shared between workers, so there is no cross-process cache lock — the
paper's serialized replacement section shrinks to one shard's worth of
traffic, and N workers use N cores.

The module-level :func:`worker_main` is the child-process entrypoint (it
must be importable by name so ``spawn``/``forkserver`` start methods can
pickle it).  The parent passes a :class:`ShardConfig` plus one pipe
connection; the worker binds, reports ``{shard, host, port, pid}`` through
the pipe, then serves until SIGTERM/SIGINT.

Policies are named by string (``"gdwheel"``, ``"gdpq"``, ...) rather than
passed as callables so configs stay picklable under every start method.
"""

from __future__ import annotations

import asyncio
import os
import signal
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.aio.server import AsyncTCPStoreServer
from repro.core import (
    ClockPolicy,
    GDPQPolicy,
    GDSFPolicy,
    GDSPolicy,
    GDWheelPolicy,
    LRUPolicy,
)
from repro.kvstore.slab import (
    DEFAULT_GROWTH_FACTOR,
    DEFAULT_MIN_CHUNK,
    DEFAULT_SLAB_SIZE,
)
from repro.kvstore.store import KVStore
from repro.obs.trace import EventTrace
from repro.obs.tracing import Tracer

#: policy name -> factory, the picklable configuration surface
POLICY_FACTORIES = {
    "gdwheel": GDWheelPolicy,
    "gdpq": GDPQPolicy,
    "gds": GDSPolicy,
    "gdsf": GDSFPolicy,
    "lru": LRUPolicy,
    "clock": ClockPolicy,
}


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker process needs to build and serve its shard.

    ``port=0`` binds an ephemeral port (reported back through the ready
    pipe); the supervisor pins the reported port on respawn so a restarted
    shard keeps its endpoint and clients recover via plain retry.
    """

    name: str
    host: str = "127.0.0.1"
    port: int = 0
    policy: str = "gdwheel"
    memory_limit: int = 64 * 1024 * 1024
    slab_size: int = DEFAULT_SLAB_SIZE
    growth_factor: float = DEFAULT_GROWTH_FACTOR
    min_chunk_size: int = DEFAULT_MIN_CHUNK
    hash_power: int = 10
    max_connections: Optional[int] = None
    #: flash-tier capacity per shard; 0 = no tier
    tier_bytes: int = 0
    #: parent directory for shard tiers; each shard uses ``tier_dir/<name>``
    #: (required when ``tier_bytes > 0`` — workers must survive restarts,
    #: so the tier cannot live in an ephemeral tempdir)
    tier_dir: Optional[str] = None
    tier_segment_bytes: int = 256 * 1024
    #: bounded EventTrace ring per worker (0 disables); on by default so
    #: the supervisor's ``stats trace`` aggregation always has rings to pull
    trace_events: int = 512
    #: directory for distributed-tracing span exports; ``None`` disables
    #: request tracing entirely (the default — zero overhead)
    trace_dir: Optional[str] = None
    #: head-sampling interval for server-side tracing (1 = every request)
    trace_sample: int = 100
    #: span-ring capacity when tracing is enabled
    trace_capacity: int = 4096
    #: replica group this worker serves (None = unreplicated; a member's
    #: group decides which peers it bootstraps from and repairs against)
    replica_group: Optional[str] = None
    #: arm a :class:`~repro.replica.hlc.HybridLogicalClock` in the store —
    #: server-stamped versions plus last-writer-wins resolution, the
    #: storage half of replication (required for every group member)
    replica_versions: bool = False
    #: same-group (host, port) peers to copy the key range from *before*
    #: the listener opens; () = start cold (initial spawn)
    bootstrap_peers: Tuple[Tuple[str, int], ...] = ()
    #: listing granularity / MGET batch for the bootstrap stream
    bootstrap_nslots: int = 64
    bootstrap_batch: int = 256

    def __post_init__(self) -> None:
        if self.policy not in POLICY_FACTORIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"known: {sorted(POLICY_FACTORIES)}"
            )
        if self.tier_bytes < 0:
            raise ValueError(f"tier_bytes must be >= 0, got {self.tier_bytes}")
        if self.tier_bytes > 0 and not self.tier_dir:
            raise ValueError(
                "tier_bytes > 0 requires tier_dir (the tier must persist "
                "across worker restarts)"
            )
        if self.trace_events < 0:
            raise ValueError(
                f"trace_events must be >= 0, got {self.trace_events}"
            )
        if self.trace_sample < 1:
            raise ValueError(
                f"trace_sample must be >= 1, got {self.trace_sample}"
            )
        if self.bootstrap_nslots < 1:
            raise ValueError(
                f"bootstrap_nslots must be >= 1, got {self.bootstrap_nslots}"
            )
        if self.bootstrap_batch < 1:
            raise ValueError(
                f"bootstrap_batch must be >= 1, got {self.bootstrap_batch}"
            )
        if self.bootstrap_peers and not self.replica_versions:
            raise ValueError(
                "bootstrap_peers requires replica_versions (bootstrapped "
                "items carry versions the store must understand)"
            )


def build_store(config: ShardConfig) -> KVStore:
    """The shard's store, exactly as a single-process deployment builds it.

    With ``tier_bytes > 0`` the shard gets its own :class:`FlashTier` under
    ``tier_dir/<name>``; a respawned worker reopens the same directory and
    recovers the tier's contents (torn tails truncated) before serving.
    With ``trace_events > 0`` (the default) the store carries its own
    bounded :class:`~repro.obs.trace.EventTrace`, so ``stats trace`` —
    including the supervisor's fleet-wide aggregation — sees this worker's
    eviction/spill/shed events.
    """
    tier = None
    if config.tier_bytes > 0:
        from repro.tier import FlashTier, TierConfig

        tier = FlashTier(
            os.path.join(config.tier_dir, config.name),
            TierConfig(
                capacity_bytes=config.tier_bytes,
                segment_bytes=config.tier_segment_bytes,
            ),
        )
    trace = EventTrace(capacity=config.trace_events) if config.trace_events else None
    hlc = None
    if config.replica_versions:
        from repro.replica.hlc import HybridLogicalClock

        hlc = HybridLogicalClock()
    return KVStore(
        memory_limit=config.memory_limit,
        policy_factory=POLICY_FACTORIES[config.policy],
        slab_size=config.slab_size,
        growth_factor=config.growth_factor,
        min_chunk_size=config.min_chunk_size,
        hash_power=config.hash_power,
        trace=trace,
        tier=tier,
        hlc=hlc,
    )


async def _serve(config: ShardConfig, ready) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    store = build_store(config)
    tracer = None
    if config.trace_dir:
        tracer = Tracer(
            process=config.name,
            capacity=config.trace_capacity,
            sample_interval=config.trace_sample,
        )
        # store ops under a traced dispatch record store.* spans (one
        # ContextVar read per op otherwise; nothing at all without a tracer)
        tracer.instrument_store(store)
    if config.bootstrap_peers:
        # warm the store from a live same-group peer BEFORE the listener
        # opens: a respawned replica never serves its group's keys cold,
        # and clients that reconnect on the stable endpoint see data, not
        # a miss storm.  Best-effort — a peer dying mid-stream leaves a
        # partial warm-up for anti-entropy to finish.
        from repro.replica.bootstrap import bootstrap_store

        bootstrap_store(
            store,
            config.bootstrap_peers,
            nslots=config.bootstrap_nslots,
            batch=config.bootstrap_batch,
        )
    server = AsyncTCPStoreServer(
        store,
        host=config.host,
        port=config.port,
        max_connections=config.max_connections,
        tracer=tracer,
    )
    await server.start()
    host, port = server.address
    ready.send({"shard": config.name, "host": host, "port": port, "pid": os.getpid()})
    ready.close()
    try:
        await stop.wait()
    finally:
        await server.stop()
        if tracer is not None:
            # per-process file (pid-suffixed so a respawned worker appends
            # a fresh file instead of interleaving with its predecessor)
            os.makedirs(config.trace_dir, exist_ok=True)
            tracer.export(
                os.path.join(
                    config.trace_dir, f"{config.name}-{os.getpid()}.jsonl"
                )
            )
        if store.tier is not None:
            store.tier.close()


def worker_main(config: ShardConfig, ready) -> None:
    """Child-process entrypoint: serve ``config``'s shard until SIGTERM.

    Args:
        config: the shard to build and serve.
        ready: a ``multiprocessing.connection.Connection``; one dict
            (shard name, bound host/port, pid) is sent once the listener
            is live, then the worker's end is closed.
    """
    try:
        asyncio.run(_serve(config, ready))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C delivery
        pass
