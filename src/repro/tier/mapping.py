"""The tier's in-RAM mapping table, organised into translation pages.

A flash KV tier needs to answer "where on flash is this key?" without
holding a full per-key index in precious RAM.  Real devices keep the
mapping itself on flash, in *translation pages*, and cache the hot pages
in a small RAM table (the CMT in :mod:`repro.tier.cmt`); we emulate that
layout: the authoritative mapping lives in this process (it is rebuilt
from a segment scan on recovery, exactly as a device replays its log),
but it is partitioned into ``num_pages`` translation pages by a stable
key fingerprint, and every lookup first asks the CMT whether the page is
cached — a CMT miss is charged one emulated translation-page read before
the data read, which is how the tier's read-latency accounting reflects
mapping pressure, not just data reads.

Per-segment live-bytes / live-cost accounting hangs off the table too:
it is exactly the information GC victim selection needs, and the
mapping table is the one place that sees every entry birth and death.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.obs.trace import key_fingerprint


class MappingEntry:
    """Where one key lives on flash, plus what the GC needs to score it."""

    __slots__ = ("segment_id", "offset", "length", "cost")

    def __init__(self, segment_id: int, offset: int, length: int, cost: int) -> None:
        self.segment_id = segment_id
        self.offset = offset
        #: full record length in bytes (header + key + value)
        self.length = length
        self.cost = cost


class MappingTable:
    """Key -> :class:`MappingEntry`, partitioned into translation pages."""

    def __init__(self, num_pages: int = 256) -> None:
        if num_pages < 1:
            raise ValueError("num_pages must be >= 1")
        self.num_pages = num_pages
        self._pages: Dict[int, Dict[bytes, MappingEntry]] = {}
        #: per-segment [live_bytes, live_cost] — the GC's scoring input
        self.segment_live: Dict[int, list] = {}
        self.live_entries = 0
        self.live_bytes = 0

    def page_of(self, key: bytes) -> int:
        """The translation page a key's entry lives on (stable fingerprint)."""
        return key_fingerprint(key) % self.num_pages

    # -- lookups ------------------------------------------------------------------

    def get(self, key: bytes) -> Tuple[int, Optional[MappingEntry]]:
        """``(page_id, entry-or-None)`` — page id is needed either way,
        because even a negative lookup costs a translation-page visit."""
        page_id = self.page_of(key)
        page = self._pages.get(page_id)
        if page is None:
            return page_id, None
        return page_id, page.get(key)

    def __contains__(self, key: bytes) -> bool:
        page = self._pages.get(self.page_of(key))
        return page is not None and key in page

    def __len__(self) -> int:
        return self.live_entries

    # -- mutation -----------------------------------------------------------------

    def put(self, key: bytes, entry: MappingEntry) -> Optional[MappingEntry]:
        """Install ``entry``; returns the superseded entry if there was one."""
        page_id = self.page_of(key)
        page = self._pages.get(page_id)
        if page is None:
            page = self._pages[page_id] = {}
        old = page.get(key)
        page[key] = entry
        if old is not None:
            self._account_dead(old)
        else:
            self.live_entries += 1
        self.live_bytes += entry.length
        live = self.segment_live.get(entry.segment_id)
        if live is None:
            live = self.segment_live[entry.segment_id] = [0, 0]
        live[0] += entry.length
        live[1] += entry.cost
        return old

    def remove(self, key: bytes) -> Optional[MappingEntry]:
        """Drop the entry for ``key`` (tier invalidation); None if absent."""
        page = self._pages.get(self.page_of(key))
        if page is None:
            return None
        entry = page.pop(key, None)
        if entry is not None:
            self.live_entries -= 1
            self._account_dead(entry)
        return entry

    def _account_dead(self, entry: MappingEntry) -> None:
        self.live_bytes -= entry.length
        live = self.segment_live.get(entry.segment_id)
        if live is not None:
            live[0] -= entry.length
            live[1] -= entry.cost
            if live[0] <= 0:
                # fully dead segment: drop the accounting row (GC treats
                # a missing row as zero live bytes)
                self.segment_live.pop(entry.segment_id, None)

    def forget_segment(self, segment_id: int) -> None:
        """Drop accounting for a reclaimed segment (entries already moved)."""
        self.segment_live.pop(segment_id, None)

    def entries_in_segment(
        self, segment_id: int
    ) -> Iterator[Tuple[bytes, MappingEntry]]:
        """Live entries housed in ``segment_id`` (snapshot, GC copy-forward)."""
        out = []
        for page in self._pages.values():
            for key, entry in page.items():
                if entry.segment_id == segment_id:
                    out.append((key, entry))
        return iter(out)

    def clear(self) -> None:
        self._pages.clear()
        self.segment_live.clear()
        self.live_entries = 0
        self.live_bytes = 0
