"""Cached mapping table — a bounded LRU over translation pages.

The mapping table (:mod:`repro.tier.mapping`) is partitioned into
translation pages; a real device keeps those pages on flash and caches
the recently-used ones in a small RAM structure.  The CMT emulates that
cache: it is an LRU of page *ids* with a fixed capacity.  A tier lookup
touches the CMT first —

* **hit**: the page is RAM-resident, the mapping read is free;
* **miss**: the device would read one translation page from flash before
  the data page, so the tier charges one extra emulated flash read (and
  the page becomes cached, possibly evicting the LRU page).

Nothing is actually copied in or out — the authoritative mapping stays
in the process — but the hit/miss stream and the extra charged reads
make mapping-table pressure visible in the tier's latency accounting,
the same shape as the CMT in the kv-emulator this subsystem is
modelled on.
"""

from __future__ import annotations

from collections import OrderedDict


class CachedMappingTable:
    """Bounded LRU of translation-page ids with hit/miss accounting."""

    __slots__ = ("capacity", "_pages", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("CMT capacity must be >= 1")
        self.capacity = capacity
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def touch(self, page_id: int) -> bool:
        """Visit a translation page; True = cached (no flash read charged).

        On a miss the page is inserted most-recently-used and the LRU
        page is evicted once over capacity.
        """
        pages = self._pages
        if page_id in pages:
            pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        pages[page_id] = None
        if len(pages) > self.capacity:
            pages.popitem(last=False)
            self.evictions += 1
        return False

    def invalidate(self, page_id: int) -> None:
        """Drop a page (its translation page was rewritten by GC)."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        self._pages.clear()

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "resident": len(self._pages),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
