"""The flash-tier facade: segments + mapping + CMT + GC + admission.

A :class:`FlashTier` is the second tier behind a
:class:`~repro.kvstore.store.KVStore`: evictions the RAM tier would drop
on the floor are offered to the admission filter and, if their
``cost/size`` clears the adaptive watermark, appended to the emulated
flash log.  A later RAM miss falls through to :meth:`lookup`; a tier hit
hands the record back to the store, which promotes it into RAM with its
original cost and invalidates the tier copy.

The tier is crash-safe by construction: the only mutable on-disk state
is append-only segment files, and reopening a directory replays them
(last write wins, torn tails truncated) to rebuild the in-RAM mapping
table.  Nothing acknowledged to the RAM tier is ever *lost* by a tier
crash — the tier is a recomputation-cost cache, not a durability layer —
but the reopen path must never serve a corrupt value, which the per-
record CRC guarantees.

Observability: counters are plain attributes (always correct, zero
dependency on a registry) mirrored into gauges/counters on
:meth:`publish_metrics`; the per-read latency histogram and the
spill/GC trace events stream live through whatever registry/trace the
owning store binds with :meth:`bind_observability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import EventTrace, SpillEvent, TierGCEvent, key_fingerprint
from repro.tier.admission import CostPerByteAdmission
from repro.tier.cmt import CachedMappingTable
from repro.tier.gc import GarbageCollector
from repro.tier.mapping import MappingEntry, MappingTable
from repro.tier.segments import (
    SegmentStore,
    TierRecord,
    encode_record,
    record_size,
)

#: default emulated flash read latency (one page), microseconds
DEFAULT_READ_LATENCY_US = 90.0

#: default segment size — small enough that simulations exercise GC
DEFAULT_SEGMENT_BYTES = 256 * 1024


@dataclass(frozen=True)
class TierConfig:
    """Geometry and latency model of one emulated flash tier (picklable)."""

    capacity_bytes: int
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    num_translation_pages: int = 256
    cmt_pages: int = 64
    read_latency_us: float = DEFAULT_READ_LATENCY_US
    admission_alpha: float = 0.05
    admission_pressure_floor: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("tier capacity_bytes must be positive")
        if self.segment_bytes <= 0:
            raise ValueError("tier segment_bytes must be positive")


class FlashTier:
    """Cost-aware spill tier over append-only emulated-flash segments."""

    def __init__(
        self,
        directory,
        config: TierConfig,
        clock=None,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
    ) -> None:
        """
        Args:
            directory: where segment files live; reopening the same
                directory recovers the tier's contents.
            config: tier geometry (capacity, segment size, CMT size, ...).
            clock: a :class:`~repro.kvstore.clock.SimClock`-like object
                (``.now``) for expiry checks; the owning store attaches
                its own via :meth:`bind_observability`.
            registry: metrics registry for the read-latency histogram; a
                private one is created when omitted and replaced when a
                store binds its own.
            trace: optional event trace for spill / GC events.
        """
        self.config = config
        self.directory = Path(directory)
        self.clock = clock
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        #: segment slots the capacity buys (>= 2 so GC always has a victim
        #: distinct from the active segment)
        self.max_segments = max(2, config.capacity_bytes // config.segment_bytes)
        self.segments = SegmentStore(self.directory, config.segment_bytes)
        self.mapping = MappingTable(num_pages=config.num_translation_pages)
        self.cmt = CachedMappingTable(capacity=config.cmt_pages)
        self.admission = CostPerByteAdmission(
            alpha=config.admission_alpha,
            pressure_floor=config.admission_pressure_floor,
        )
        self.gc = GarbageCollector(
            self.segments, self.mapping, self.admission,
            relocate=self._relocate, now=self._now,
        )
        self._active = None
        # lifetime counters (plain ints: correct with or without a registry)
        self.spills = 0
        self.spilled_bytes = 0
        self.full_rejects = 0
        self.oversize_rejects = 0
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.invalidations = 0
        self.data_reads = 0
        self.translation_reads = 0
        self.recovered_records = 0
        #: emulated page reads charged by the most recent :meth:`lookup`
        #: (read by tier.read span attribution; not part of snapshots)
        self.last_lookup_reads = 0
        self._read_hist = self.metrics.histogram(
            "tier_read_latency_us",
            help="emulated flash read latency per tier lookup (us)",
        )
        self._recover()

    # -- wiring -------------------------------------------------------------------

    def bind_observability(self, registry, trace, clock=None) -> None:
        """Adopt the owning store's registry/trace/clock (at construction,
        before any operations, so no samples are lost to the rebind)."""
        self.metrics = registry
        if trace is not None:
            self.trace = trace
        if clock is not None:
            self.clock = clock
        self._read_hist = registry.histogram(
            "tier_read_latency_us",
            help="emulated flash read latency per tier lookup (us)",
        )

    def _now(self) -> float:
        clock = self.clock
        return clock.now if clock is not None else 0.0

    def _recover(self) -> None:
        """Rebuild the mapping table from the segment logs (last write wins)."""
        for segment_id, offset, record in self.segments.recover():
            length = record_size(record.key, record.value)
            self.mapping.put(
                record.key,
                MappingEntry(segment_id, offset, length, record.cost),
            )
            self.recovered_records += 1
        self._update_pressure()

    # -- write path ---------------------------------------------------------------

    def spill(self, key: bytes, value: bytes, cost: int,
              flags: int = 0, exptime: float = 0.0) -> bool:
        """Offer one RAM evictee to the tier; True when it was stored."""
        size = record_size(key, value)
        if size > self.config.segment_bytes:
            self.oversize_rejects += 1
            return False
        admitted = self.admission.offer(cost, size)
        if self.trace is not None:
            self.trace.record(
                SpillEvent(
                    key_hash=key_fingerprint(key),
                    cost=cost,
                    size=size,
                    admitted=admitted,
                    watermark=round(self.admission.watermark, 6),
                )
            )
        if not admitted:
            return False
        payload = encode_record(key, value, cost, flags, exptime)
        segment = self._room_for(len(payload))
        if segment is None:
            self.full_rejects += 1
            # the filter said yes but flash had no room: undo the admit
            self.admission.admitted -= 1
            self.admission.rejected += 1
            return False
        offset = segment.append(payload)
        self.mapping.put(
            key, MappingEntry(segment.segment_id, offset, len(payload), cost)
        )
        self.spills += 1
        self.spilled_bytes += size
        self._update_pressure()
        return True

    def _room_for(self, nbytes: int, allow_gc: bool = True):
        """The segment to append ``nbytes`` into, rolling / GCing as needed.

        Returns ``None`` when the tier is full and GC cannot make progress
        (the caller rejects the spill).  With ``allow_gc=False`` (the GC's
        own relocation path) a fresh segment is always created — the
        victim's deletion at the end of the round restores the budget.
        """
        active = self._active
        if active is not None and active.has_room(nbytes, self.config.segment_bytes):
            return active
        if allow_gc:
            guard = 2 * self.max_segments
            while len(self.segments.segments) >= self.max_segments and guard > 0:
                guard -= 1
                exclude = self._active.segment_id if self._active else None
                round_stats = self.gc.run(exclude=exclude)
                if self.trace is not None and round_stats["victim"] >= 0:
                    self.trace.record(
                        TierGCEvent(
                            victim_segment=round_stats["victim"],
                            copied=round_stats["copied"],
                            dropped=round_stats["dropped"],
                            reclaimed_bytes=round_stats["reclaimed_bytes"],
                            watermark=round(self.admission.watermark, 6),
                        )
                    )
                if round_stats["victim"] < 0 or round_stats["reclaimed_bytes"] <= 0:
                    break
            if len(self.segments.segments) >= self.max_segments:
                self._update_pressure()
                return None
        self._active = self.segments.create_segment()
        return self._active

    def _relocate(self, key: bytes, record: TierRecord) -> None:
        """GC copy-forward: re-append ``record`` through the write path."""
        payload = encode_record(
            record.key, record.value, record.cost, record.flags, record.exptime
        )
        segment = self._room_for(len(payload), allow_gc=False)
        offset = segment.append(payload)
        self.mapping.put(
            key, MappingEntry(segment.segment_id, offset, len(payload), record.cost)
        )

    def _update_pressure(self) -> None:
        self.admission.set_pressure(
            self.segments.used_bytes / self.config.capacity_bytes
        )

    # -- read path ----------------------------------------------------------------

    def lookup(self, key: bytes) -> Optional[TierRecord]:
        """The live tier record for ``key``, or ``None`` on a tier miss.

        Charges one emulated data-page read per hit, plus one
        translation-page read when the key's mapping page is not CMT-
        resident.  Expired records are lazily invalidated and miss.
        """
        page_id, entry = self.mapping.get(key)
        reads = 0 if self.cmt.touch(page_id) else 1
        self.translation_reads += reads
        if entry is None:
            self.misses += 1
            self.last_lookup_reads = reads
            if reads:
                self._read_hist.observe(reads * self.config.read_latency_us)
            return None
        record = self.segments.read_record(entry.segment_id, entry.offset, entry.length)
        reads += 1
        self.data_reads += 1
        self.last_lookup_reads = reads
        self._read_hist.observe(reads * self.config.read_latency_us)
        if record is None or record.key != key:  # pragma: no cover - defensive
            self.mapping.remove(key)
            self.misses += 1
            return None
        if record.exptime and self._now() >= record.exptime:
            self.mapping.remove(key)
            self.expired += 1
            self.misses += 1
            return None
        self.hits += 1
        return record

    def contains(self, key: bytes) -> bool:
        """Presence check with no CMT, read, or stats side effects."""
        return key in self.mapping

    def invalidate(self, key: bytes) -> bool:
        """Drop the tier copy of ``key`` (re-SET / DELETE / promotion)."""
        if self.mapping.remove(key) is not None:
            self.invalidations += 1
            return True
        return False

    # -- lifecycle / introspection ------------------------------------------------

    def __len__(self) -> int:
        return len(self.mapping)

    @property
    def used_bytes(self) -> int:
        return self.segments.used_bytes

    @property
    def live_bytes(self) -> int:
        return self.mapping.live_bytes

    def flush(self) -> int:
        """Drop everything (``flush_all`` fell through): segments deleted."""
        removed = len(self.mapping)
        self.segments.clear()
        self.mapping.clear()
        self.cmt.clear()
        self._active = None
        self._update_pressure()
        return removed

    def close(self) -> None:
        """Flush and close segment file handles (contents stay on disk)."""
        self.segments.close()
        self._active = None

    def snapshot(self) -> dict:
        """One JSON-friendly dict with every tier statistic."""
        return {
            "entries": len(self.mapping),
            "segments": len(self.segments.segments),
            "max_segments": self.max_segments,
            "used_bytes": self.used_bytes,
            "live_bytes": self.live_bytes,
            "capacity_bytes": self.config.capacity_bytes,
            "spills": self.spills,
            "spilled_bytes": self.spilled_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "expired": self.expired,
            "invalidations": self.invalidations,
            "full_rejects": self.full_rejects,
            "oversize_rejects": self.oversize_rejects,
            "data_reads": self.data_reads,
            "translation_reads": self.translation_reads,
            "recovered_records": self.recovered_records,
            "admission": self.admission.snapshot(),
            "cmt": self.cmt.snapshot(),
            "gc": self.gc.snapshot(),
        }

    def publish_metrics(self) -> None:
        """Mirror counters/gauges into the bound registry (pull-style).

        Called from :meth:`KVStore.publish_metrics` right before a
        ``stats metrics`` / Prometheus read, so the registry's tier series
        agree with :meth:`snapshot` at the instant of the read.
        """
        registry = self.metrics
        pairs = [
            ("tier_spills_total", "counter", self.spills,
             "evictions admitted and written to the flash tier"),
            ("tier_spilled_bytes_total", "counter", self.spilled_bytes,
             "record bytes written by spills (excl. GC relocation)"),
            ("tier_hits_total", "counter", self.hits,
             "tier lookups that returned a live record"),
            ("tier_misses_total", "counter", self.misses,
             "tier lookups that found nothing live"),
            ("tier_expired_total", "counter", self.expired,
             "tier records lazily dropped as expired on lookup"),
            ("tier_invalidations_total", "counter", self.invalidations,
             "tier copies dropped because RAM re-SET/DELETE/promoted them"),
            ("tier_admission_rejected_total", "counter",
             self.admission.rejected,
             "evictions refused by the cost-per-byte admission filter"),
            ("tier_full_rejects_total", "counter", self.full_rejects,
             "admitted evictions dropped because GC could not free space"),
            ("tier_data_reads_total", "counter", self.data_reads,
             "emulated flash data-page reads"),
            ("tier_translation_reads_total", "counter", self.translation_reads,
             "emulated flash translation-page reads (CMT misses)"),
            ("tier_cmt_hits_total", "counter", self.cmt.hits,
             "tier lookups whose translation page was CMT-resident"),
            ("tier_cmt_misses_total", "counter", self.cmt.misses,
             "tier lookups that had to fetch a translation page"),
            ("tier_gc_runs_total", "counter", self.gc.runs,
             "tier GC rounds executed"),
            ("tier_gc_copied_total", "counter", self.gc.records_copied,
             "records copied forward by tier GC"),
            ("tier_gc_dropped_total", "counter", self.gc.records_dropped,
             "records dropped by tier GC (dead, expired, or low value)"),
            ("tier_gc_reclaimed_bytes_total", "counter",
             self.gc.bytes_reclaimed, "flash bytes reclaimed by tier GC"),
        ]
        for name, kind, value, help_text in pairs:
            registry.counter(name, help=help_text).set(value)
        registry.gauge(
            "tier_entries", help="live entries in the flash tier"
        ).set(len(self.mapping))
        registry.gauge(
            "tier_segments", help="segment files currently allocated"
        ).set(len(self.segments.segments))
        registry.gauge(
            "tier_used_bytes", help="flash bytes consumed (live + dead)"
        ).set(self.used_bytes)
        registry.gauge(
            "tier_live_bytes", help="flash bytes referenced by live entries"
        ).set(self.live_bytes)
        registry.gauge(
            "tier_capacity_bytes", help="configured tier capacity"
        ).set(self.config.capacity_bytes)
        registry.gauge(
            "tier_admission_watermark",
            help="current cost-per-byte admission watermark",
        ).set(self.admission.watermark)
