"""repro.tier — cost-aware tiered storage behind the RAM cache.

GD-Wheel fights to keep high-recomputation-cost items in RAM, but the
seed store dropped every eviction on the floor — exactly the items the
policy valued most are the most expensive to lose.  This package adds an
emulated flash second tier:

* :mod:`repro.tier.segments` — fixed-size append-only log segments with
  CRC'd records and torn-tail-tolerant recovery;
* :mod:`repro.tier.mapping` — the compact in-RAM mapping table,
  partitioned into translation pages;
* :mod:`repro.tier.cmt` — the bounded LRU cache over translation pages
  (mapping pressure shows up as extra emulated flash reads);
* :mod:`repro.tier.gc` — segment GC that copies forward still-live,
  still-valuable entries (victim = min live-bytes x cost-per-byte);
* :mod:`repro.tier.admission` — the adaptive cost-per-byte admission
  watermark deciding which evictees deserve flash space;
* :mod:`repro.tier.tier` — the :class:`FlashTier` facade the
  :class:`~repro.kvstore.store.KVStore` spills to and reads through.

Wire-up: pass ``tier=FlashTier(...)`` to a ``KVStore``; evictions flow
through the store's ``on_evict`` choke point into :meth:`FlashTier.spill`
and RAM misses fall through to :meth:`FlashTier.lookup` with promotion
back into RAM on a hit.
"""

from repro.tier.admission import CostPerByteAdmission
from repro.tier.cmt import CachedMappingTable
from repro.tier.gc import GarbageCollector, select_victim
from repro.tier.mapping import MappingEntry, MappingTable
from repro.tier.segments import (
    HEADER_SIZE,
    RECORD_MAGIC,
    Segment,
    SegmentStore,
    TierRecord,
    decode_record,
    encode_record,
    record_size,
    scan_segment,
)
from repro.tier.tier import (
    DEFAULT_READ_LATENCY_US,
    DEFAULT_SEGMENT_BYTES,
    FlashTier,
    TierConfig,
)

__all__ = [
    "CachedMappingTable",
    "CostPerByteAdmission",
    "DEFAULT_READ_LATENCY_US",
    "DEFAULT_SEGMENT_BYTES",
    "FlashTier",
    "GarbageCollector",
    "HEADER_SIZE",
    "MappingEntry",
    "MappingTable",
    "RECORD_MAGIC",
    "Segment",
    "SegmentStore",
    "TierConfig",
    "TierRecord",
    "decode_record",
    "encode_record",
    "record_size",
    "scan_segment",
    "select_victim",
]
