"""Segment garbage collection — reclaim flash by copying forward the
still-live, still-valuable entries of one victim segment.

Append-only segments never shrink in place: when a tier entry is
superseded (its key was re-spilled), invalidated (the key was re-SET,
deleted, or promoted back to RAM), or expires, its record becomes dead
weight in whatever segment holds it.  The GC reclaims whole segments:

* **victim selection** scores every sealed segment by
  ``live_bytes x cost_per_byte`` — the total recomputation value that
  would have to be relocated to free it — and takes the minimum, so
  mostly-dead and low-value segments are cleaned first and a segment
  full of expensive live items is left alone;
* **copy-forward** re-appends each live entry to the active segment
  *iff* it still clears the admission watermark
  (:meth:`~repro.tier.admission.CostPerByteAdmission.still_valuable`)
  and has not expired; everything else is simply dropped, shrinking the
  tier's working set to what is worth its flash;
* the victim's file is then deleted, reclaiming its full size.

A GC round that cannot find a victim, or whose victim is so live that
relocation writes back as much as it frees, reports no progress; the
tier responds by rejecting the spill rather than looping forever.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.tier.admission import CostPerByteAdmission
from repro.tier.mapping import MappingTable
from repro.tier.segments import SegmentStore, TierRecord


def select_victim(
    segments: SegmentStore,
    mapping: MappingTable,
    exclude: Optional[int] = None,
) -> Optional[int]:
    """The sealed segment cheapest to reclaim, or ``None`` if there is none.

    Score is ``live_bytes x cost_per_byte`` (== the live recomputation
    value stranded in the segment); a segment with no live entries scores
    zero and is reclaimed for free.  Ties break toward the oldest segment,
    which is also the one whose surviving entries have proven durable.
    """
    best_id = None
    best_score = None
    for segment_id in sorted(segments.segments):
        if segment_id == exclude:
            continue
        live = mapping.segment_live.get(segment_id)
        if live is None:
            live_bytes, live_cost = 0, 0
        else:
            live_bytes, live_cost = live
        # live_bytes * (live_cost / live_bytes) reduces to the live cost,
        # but guard the degenerate empty case explicitly
        score = float(live_cost) if live_bytes > 0 else 0.0
        if best_score is None or score < best_score:
            best_id = segment_id
            best_score = score
    return best_id


class GarbageCollector:
    """Reclaims segments for a :class:`~repro.tier.tier.FlashTier`.

    The tier hands the GC its segment store, mapping table, and admission
    filter, plus a ``relocate`` callback that appends a record through the
    tier's normal write path (so relocation rolls the active segment
    exactly like a spill would, minus recursive GC).
    """

    def __init__(
        self,
        segments: SegmentStore,
        mapping: MappingTable,
        admission: CostPerByteAdmission,
        relocate: Callable[[bytes, TierRecord], None],
        now: Callable[[], float],
    ) -> None:
        self.segments = segments
        self.mapping = mapping
        self.admission = admission
        self._relocate = relocate
        self._now = now
        self.runs = 0
        self.segments_reclaimed = 0
        self.records_copied = 0
        self.records_dropped = 0
        self.bytes_copied = 0
        self.bytes_reclaimed = 0

    def run(self, exclude: Optional[int] = None) -> Dict[str, int]:
        """One GC round: clean the cheapest sealed segment.

        Returns a stats dict for the round; ``reclaimed_bytes`` is 0 when
        no victim existed (the caller should stop retrying).
        """
        self.runs += 1
        round_stats = {
            "victim": -1, "copied": 0, "dropped": 0,
            "copied_bytes": 0, "reclaimed_bytes": 0,
        }
        victim = select_victim(self.segments, self.mapping, exclude=exclude)
        if victim is None:
            return round_stats
        round_stats["victim"] = victim
        segment = self.segments.segments[victim]
        victim_size = segment.size
        now = self._now()
        copied = dropped = copied_bytes = 0
        for key, entry in self.mapping.entries_in_segment(victim):
            record = self.segments.read_record(
                entry.segment_id, entry.offset, entry.length
            )
            keep = (
                record is not None
                and not (record.exptime and now >= record.exptime)
                and self.admission.still_valuable(entry.cost, entry.length)
            )
            if keep:
                # relocation re-points the mapping entry at the new home
                self._relocate(key, record)
                copied += 1
                copied_bytes += entry.length
            else:
                self.mapping.remove(key)
                dropped += 1
        self.segments.drop_segment(victim)
        self.mapping.forget_segment(victim)
        self.segments_reclaimed += 1
        self.records_copied += copied
        self.records_dropped += dropped
        self.bytes_copied += copied_bytes
        reclaimed = victim_size - copied_bytes
        self.bytes_reclaimed += max(reclaimed, 0)
        round_stats.update(
            copied=copied, dropped=dropped,
            copied_bytes=copied_bytes, reclaimed_bytes=max(reclaimed, 0),
        )
        return round_stats

    def snapshot(self) -> dict:
        return {
            "runs": self.runs,
            "segments_reclaimed": self.segments_reclaimed,
            "records_copied": self.records_copied,
            "records_dropped": self.records_dropped,
            "bytes_copied": self.bytes_copied,
            "bytes_reclaimed": self.bytes_reclaimed,
        }
