"""Append-only log segments — the emulated flash device under the tier.

The second tier stores spilled items in fixed-size *segments*: plain
files of back-to-back records, written strictly append-only (flash pages
are never overwritten in place; reclamation is segment-granular, by the
GC in :mod:`repro.tier.gc`).  Each record is::

    MAGIC(4s) key_len(H) value_len(I) flags(I) cost(Q) exptime(d) crc(I)
    key bytes  value bytes

with the CRC-32 taken over the header fields *and* the payload, so any
byte of damage is detected.  A record is only addressable through the
mapping table once its append returned, which gives the crash contract:

* a record either decodes completely and checksums clean, or it is part
  of a **torn tail** — the suffix a crashed writer left behind;
* :func:`scan_segment` stops at the first incomplete/corrupt record and
  reports how many clean bytes precede it, so reopening after a
  mid-spill kill silently drops the tail and keeps everything before it
  (``tests/tier/test_crash.py`` kills real processes to prove it).

Segment files are named ``seg-<id>.log`` inside the tier directory; the
id order is the write order, which recovery relies on (later records for
the same key supersede earlier ones).
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

#: per-record magic — also the format version; bump on layout changes
RECORD_MAGIC = b"GDT1"

#: ``magic key_len value_len flags cost exptime crc``
_HEADER = struct.Struct("<4sHIIQdI")
HEADER_SIZE = _HEADER.size

#: filename pattern for segment files
SEGMENT_PREFIX = "seg-"
SEGMENT_SUFFIX = ".log"


class TierRecord:
    """One decoded spill record (what the store gets back on a tier hit)."""

    __slots__ = ("key", "value", "cost", "flags", "exptime")

    def __init__(self, key: bytes, value: bytes, cost: int,
                 flags: int = 0, exptime: float = 0.0) -> None:
        self.key = key
        self.value = value
        self.cost = cost
        self.flags = flags
        self.exptime = exptime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TierRecord(key={self.key!r}, {len(self.value)}B value, "
                f"cost={self.cost})")


def record_size(key: bytes, value: bytes) -> int:
    """On-flash footprint of a record for ``key``/``value``."""
    return HEADER_SIZE + len(key) + len(value)


def encode_record(key: bytes, value: bytes, cost: int,
                  flags: int = 0, exptime: float = 0.0) -> bytes:
    """Serialize one record, CRC included."""
    header_wo_crc = _HEADER.pack(
        RECORD_MAGIC, len(key), len(value), flags, cost, exptime, 0
    )[:-4]
    crc = zlib.crc32(key, zlib.crc32(value, zlib.crc32(header_wo_crc)))
    return (
        header_wo_crc + struct.pack("<I", crc & 0xFFFFFFFF) + key + value
    )


def decode_record(buf: bytes, offset: int = 0) -> Optional[Tuple[TierRecord, int]]:
    """Decode the record at ``offset``; ``None`` if torn or corrupt.

    Returns ``(record, end_offset)`` on success.  Every failure mode a
    torn tail can produce — short header, bad magic, lengths past the end
    of the buffer, CRC mismatch — reads as ``None`` rather than raising,
    because recovery treats it as "the log ends here".
    """
    end_header = offset + HEADER_SIZE
    if end_header > len(buf):
        return None
    magic, key_len, value_len, flags, cost, exptime, crc = _HEADER.unpack_from(
        buf, offset
    )
    if magic != RECORD_MAGIC:
        return None
    end = end_header + key_len + value_len
    if end > len(buf):
        return None
    key = buf[end_header:end_header + key_len]
    value = buf[end_header + key_len:end]
    header_wo_crc = buf[offset:end_header - 4]
    expected = zlib.crc32(key, zlib.crc32(value, zlib.crc32(header_wo_crc)))
    if (expected & 0xFFFFFFFF) != crc:
        return None
    return TierRecord(key, value, cost, flags, exptime), end


def scan_segment(path: Path) -> Tuple[List[Tuple[int, TierRecord]], int]:
    """All clean records in a segment file, plus the clean-bytes length.

    Returns ``([(offset, record), ...], clean_end)``; anything at or past
    ``clean_end`` is a torn tail the caller may truncate away.
    """
    data = path.read_bytes()
    records: List[Tuple[int, TierRecord]] = []
    offset = 0
    while offset < len(data):
        decoded = decode_record(data, offset)
        if decoded is None:
            break
        record, end = decoded
        records.append((offset, record))
        offset = end
    return records, offset


def segment_path(directory: Path, segment_id: int) -> Path:
    return directory / f"{SEGMENT_PREFIX}{segment_id:08d}{SEGMENT_SUFFIX}"


def parse_segment_id(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])
    except ValueError:
        return None


class Segment:
    """One append-only segment file and its write cursor."""

    __slots__ = ("segment_id", "path", "size", "_writer")

    def __init__(self, segment_id: int, path: Path, size: int = 0) -> None:
        self.segment_id = segment_id
        self.path = path
        #: clean bytes in the file (the append cursor)
        self.size = size
        self._writer = None

    def has_room(self, nbytes: int, capacity: int) -> bool:
        return self.size + nbytes <= capacity

    def append(self, payload: bytes) -> int:
        """Append ``payload``; returns the record's start offset.

        The write is flushed to the OS before the offset is returned, so
        a record the mapping table points at is never still sitting in a
        user-space buffer when the process dies (the crash tests SIGKILL
        the process, not the machine; OS-buffered bytes survive).
        """
        writer = self._writer
        if writer is None:
            writer = self._writer = open(self.path, "ab")
        offset = self.size
        writer.write(payload)
        writer.flush()
        self.size = offset + len(payload)
        return offset

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` raw bytes at ``offset`` (one emulated page read)."""
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def delete(self) -> None:
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


class SegmentStore:
    """The tier's segment files: allocation, recovery, reads, reclamation."""

    def __init__(self, directory: Path, segment_bytes: int) -> None:
        if segment_bytes <= HEADER_SIZE:
            raise ValueError("segment_bytes too small for a single record")
        self.directory = Path(directory)
        self.segment_bytes = segment_bytes
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segments: dict = {}  # segment_id -> Segment
        self._next_id = 0

    # -- recovery -----------------------------------------------------------------

    def recover(self) -> Iterator[Tuple[int, int, TierRecord]]:
        """Open existing segment files, truncating torn tails.

        Yields ``(segment_id, offset, record)`` for every clean record in
        write (segment-id, then offset) order, so the caller can rebuild
        the mapping table by simple last-write-wins replay.
        """
        paths = []
        for path in self.directory.iterdir():
            segment_id = parse_segment_id(path)
            if segment_id is not None:
                paths.append((segment_id, path))
        paths.sort()
        for segment_id, path in paths:
            records, clean_end = scan_segment(path)
            if clean_end < path.stat().st_size:
                # torn tail from a crashed writer: drop it on the floor
                with open(path, "r+b") as fh:
                    fh.truncate(clean_end)
            self.segments[segment_id] = Segment(segment_id, path, size=clean_end)
            self._next_id = max(self._next_id, segment_id + 1)
            for offset, record in records:
                yield segment_id, offset, record

    # -- allocation / io ----------------------------------------------------------

    def create_segment(self) -> Segment:
        segment_id = self._next_id
        self._next_id += 1
        segment = Segment(
            segment_id, segment_path(self.directory, segment_id)
        )
        # create the file eagerly so recovery sees even an empty segment
        segment.append(b"")
        self.segments[segment_id] = segment
        return segment

    def read_record(self, segment_id: int, offset: int,
                    length: int) -> Optional[TierRecord]:
        """Decode the record stored at ``(segment_id, offset)``."""
        segment = self.segments.get(segment_id)
        if segment is None:
            return None
        raw = segment.read(offset, length)
        decoded = decode_record(raw)
        return decoded[0] if decoded is not None else None

    def drop_segment(self, segment_id: int) -> None:
        segment = self.segments.pop(segment_id, None)
        if segment is not None:
            segment.delete()

    @property
    def used_bytes(self) -> int:
        """Bytes of flash consumed (live + dead, all segments)."""
        return sum(seg.size for seg in self.segments.values())

    def close(self) -> None:
        for segment in self.segments.values():
            segment.close()

    def clear(self) -> None:
        """Delete every segment (``flush_all`` semantics)."""
        for segment_id in list(self.segments):
            self.drop_segment(segment_id)
