"""Cost-per-byte admission control for the flash tier.

Flash space is scarcer than the eviction stream is wide: under memory
pressure the RAM tier can evict far more bytes than the tier can absorb,
and unfiltered spilling turns the tier into a FIFO of mostly-worthless
items plus endless GC churn.  The admission filter applies the CAMP
insight — value an item by ``cost / size`` — with an **adaptive
watermark**:

* every candidate updates an EWMA of the eviction stream's cost-per-byte
  (the "going rate" for a byte of flash);
* the watermark is that mean scaled by how full the tier is: an empty
  tier admits any positive-cost item (cheap insurance), a tier past the
  ``pressure_floor`` fill fraction demands progressively more value, and
  a full tier only accepts items above the stream's average rate.

The same watermark doubles as the GC's copy-forward bar: an entry whose
cost-per-byte no longer clears it is not worth the write amplification
of relocating, so segment cleaning sheds exactly the items admission
would reject today.  Everything is deterministic — no randomness, no
wall clock — so simulation results are reproducible cell-for-cell.
"""

from __future__ import annotations


class CostPerByteAdmission:
    """Adaptive ``cost/size`` watermark over the observed eviction stream."""

    __slots__ = ("alpha", "pressure_floor", "mean_cost_per_byte", "pressure",
                 "offered", "admitted", "rejected")

    def __init__(self, alpha: float = 0.05, pressure_floor: float = 0.5) -> None:
        """
        Args:
            alpha: EWMA smoothing for the observed cost-per-byte stream.
            pressure_floor: tier fill fraction below which everything with
                positive cost is admitted; above it the watermark ramps
                linearly from 0 to the stream's mean cost-per-byte.
        """
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= pressure_floor < 1.0:
            raise ValueError("pressure_floor must be in [0, 1)")
        self.alpha = alpha
        self.pressure_floor = pressure_floor
        #: EWMA of candidate cost/size (the stream's going rate)
        self.mean_cost_per_byte = 0.0
        #: tier fill fraction, pushed by the tier after spills/GC
        self.pressure = 0.0
        self.offered = 0
        self.admitted = 0
        self.rejected = 0

    @property
    def watermark(self) -> float:
        """Current cost-per-byte bar a candidate must clear."""
        floor = self.pressure_floor
        if self.pressure <= floor:
            return 0.0
        ramp = (self.pressure - floor) / (1.0 - floor)
        return self.mean_cost_per_byte * min(ramp, 1.0)

    def set_pressure(self, fill_fraction: float) -> None:
        """Tell the filter how full the tier is (0.0 empty .. 1.0 full)."""
        self.pressure = max(0.0, min(fill_fraction, 1.0))

    def offer(self, cost: int, size: int) -> bool:
        """Should this evictee be spilled?  Updates the EWMA either way."""
        self.offered += 1
        cpb = cost / size if size > 0 else 0.0
        if self.offered == 1:
            self.mean_cost_per_byte = cpb
        else:
            alpha = self.alpha
            self.mean_cost_per_byte += alpha * (cpb - self.mean_cost_per_byte)
        if cost <= 0 or cpb < self.watermark:
            self.rejected += 1
            return False
        self.admitted += 1
        return True

    def still_valuable(self, cost: int, size: int) -> bool:
        """GC copy-forward bar: would this entry be admitted today?

        Unlike :meth:`offer` this does not update the EWMA — GC relocations
        are not part of the eviction stream whose rate we are estimating.
        """
        if cost <= 0:
            return False
        cpb = cost / size if size > 0 else 0.0
        return cpb >= self.watermark

    def snapshot(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "mean_cost_per_byte": self.mean_cost_per_byte,
            "watermark": self.watermark,
            "pressure": self.pressure,
        }
