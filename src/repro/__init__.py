"""GD-Wheel reproduction: a cost-aware replacement policy for key-value stores.

Reproduces Li & Cox, *GD-Wheel: A Cost-Aware Replacement Policy for
Key-Value Stores* (EuroSys 2015) as a pure-Python system:

* :mod:`repro.core` — the GD-Wheel policy (Hierarchical Cost Wheels) and
  every comparator: GD-PQ, naive GreedyDual, LRU, CLOCK, random, GDS/GDSF,
  CAMP, 2Q, ARC, LRU-K, and offline bounds.
* :mod:`repro.kvstore` — a memcached-like store: chained hash table, slab
  allocator, cost-carrying items, and the original + cost-aware slab
  rebalancers.
* :mod:`repro.protocol` — the memcached text protocol with the paper's
  cost extension, plus in-memory and TCP servers/clients.
* :mod:`repro.workloads` — YCSB-style Zipf workloads and the paper's
  Table 1/2/3 suite.
* :mod:`repro.sim` — the warmup/measurement driver, latency model, and
  metrics.
* :mod:`repro.experiments` — regenerates every evaluation table and figure.

Quickstart::

    from repro import GDWheelPolicy, KVStore

    store = KVStore(memory_limit=64 * 1024 * 1024,
                    policy_factory=GDWheelPolicy)
    store.set(b"user:42", b"rendered-profile", cost=240)
    item = store.get(b"user:42")
"""

from repro.core import (
    CAMPPolicy,
    ClockPolicy,
    GDPQPolicy,
    GDSFPolicy,
    GDSPolicy,
    GDWheelPolicy,
    LRUPolicy,
    NaiveGreedyDual,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.kvstore import (
    CostAwareRebalancer,
    Item,
    KVStore,
    NullRebalancer,
    OriginalRebalancer,
    SimClock,
)

__version__ = "1.0.0"

__all__ = [
    "CAMPPolicy",
    "ClockPolicy",
    "CostAwareRebalancer",
    "GDPQPolicy",
    "GDSFPolicy",
    "GDSPolicy",
    "GDWheelPolicy",
    "Item",
    "KVStore",
    "LRUPolicy",
    "NaiveGreedyDual",
    "NullRebalancer",
    "OriginalRebalancer",
    "RandomPolicy",
    "ReplacementPolicy",
    "SimClock",
    "__version__",
    "make_policy",
]
