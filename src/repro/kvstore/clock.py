"""Simulated wall clock shared by the store, rebalancers, and driver.

All time in the simulation is virtual seconds.  The workload driver advances
the clock by a configurable mean service time per request so that
time-triggered machinery — item expiry and, crucially, the original
rebalancer's "3 checks per 30 seconds" cadence (Section 5.1) — runs at a
faithful pace relative to the request stream.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing virtual clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance by ``seconds`` (must be non-negative); returns new time."""
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
