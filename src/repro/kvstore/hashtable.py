"""Chained hash table with incremental expansion — memcached's ``assoc``.

The index half of Figure 5: a power-of-two array of buckets, each a singly
linked chain through ``Item.h_next``.  Like memcached's ``assoc_insert`` /
``assoc_expand``, the table doubles when the load factor passes 1.5 and the
old buckets are migrated *incrementally* (a fixed number of old buckets per
subsequent operation) so no single request pays an O(n) rehash — the same
"keep every operation constant time" discipline that motivates GD-Wheel.

Hashing uses FNV-1a over the key bytes, memcached's historical default.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.kvstore.item import Item

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of ``data``."""
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    return h


class HashTable:
    """Chained hash table over :class:`Item` with incremental doubling."""

    #: old buckets migrated per mutating operation while expanding
    MIGRATE_BATCH = 4

    def __init__(
        self,
        initial_power: int = 10,
        load_factor: float = 1.5,
        hash_func=fnv1a_64,
    ) -> None:
        """
        Args:
            initial_power: table starts with ``2**initial_power`` buckets
                (memcached's default power is 16; tests use smaller).
            load_factor: expansion threshold (items / buckets).
            hash_func: bytes -> int.  FNV-1a by default (memcached's
                historical choice); simulations may pass the built-in
                ``hash`` for speed — bucket layout never affects results.
        """
        if initial_power < 1:
            raise ValueError("initial_power must be >= 1")
        self._hash = hash_func
        self._power = initial_power
        self._buckets: List[Optional[Item]] = [None] * (1 << initial_power)
        self._old_buckets: Optional[List[Optional[Item]]] = None
        self._migrate_pos = 0
        self._count = 0
        self._load_factor = load_factor
        #: number of completed expansions (observability)
        self.expansions = 0

    def __len__(self) -> int:
        return self._count

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    @property
    def expanding(self) -> bool:
        return self._old_buckets is not None

    # -- internals ---------------------------------------------------------------

    def _bucket_index(self, hashval: int, buckets: List[Optional[Item]]) -> int:
        return hashval & (len(buckets) - 1)

    def _locate(self, key: bytes, hashval: int):
        """Return (bucket_list, index, prev_item, item) for ``key``."""
        # While expanding, a key lives in the old table if its old bucket has
        # not been migrated yet.
        if self._old_buckets is not None:
            old_idx = self._bucket_index(hashval, self._old_buckets)
            if old_idx >= self._migrate_pos:
                buckets, idx = self._old_buckets, old_idx
            else:
                buckets, idx = self._buckets, self._bucket_index(hashval, self._buckets)
        else:
            buckets, idx = self._buckets, self._bucket_index(hashval, self._buckets)
        prev: Optional[Item] = None
        item = buckets[idx]
        while item is not None:
            if item.key == key:
                return buckets, idx, prev, item
            prev, item = item, item.h_next
        return buckets, idx, None, None

    def _maybe_start_expansion(self) -> None:
        if self._old_buckets is not None:
            return
        if self._count <= self._load_factor * len(self._buckets):
            return
        self._old_buckets = self._buckets
        self._buckets = [None] * (len(self._old_buckets) * 2)
        self._power += 1
        self._migrate_pos = 0

    def _migrate_some(self) -> None:
        if self._old_buckets is None:
            return
        batch = self.MIGRATE_BATCH
        old = self._old_buckets
        while batch > 0 and self._migrate_pos < len(old):
            item = old[self._migrate_pos]
            while item is not None:
                nxt = item.h_next
                idx = self._bucket_index(self._hash(item.key), self._buckets)
                item.h_next = self._buckets[idx]
                self._buckets[idx] = item
                item = nxt
            old[self._migrate_pos] = None
            self._migrate_pos += 1
            batch -= 1
        if self._migrate_pos >= len(old):
            self._old_buckets = None
            self._migrate_pos = 0
            self.expansions += 1

    # -- public API ----------------------------------------------------------------

    def find(self, key: bytes) -> Optional[Item]:
        """Look up ``key``; returns the item or ``None``."""
        # Steady state (no expansion in flight) walks the chain inline —
        # find() is the single hottest call in the simulation driver and
        # the _locate/_bucket_index detour costs two frames per probe.
        if self._old_buckets is None:
            buckets = self._buckets
            item = buckets[self._hash(key) & (len(buckets) - 1)]
            while item is not None:
                if item.key == key:
                    return item
                item = item.h_next
            return None
        _, _, _, item = self._locate(key, self._hash(key))
        return item

    def insert(self, item: Item) -> None:
        """Insert a new item.  The key must not already be present."""
        hashval = self._hash(item.key)
        buckets, idx, _, existing = self._locate(item.key, hashval)
        if existing is not None:
            raise KeyError(f"duplicate key {item.key!r}")
        item.h_next = buckets[idx]
        buckets[idx] = item
        self._count += 1
        self._maybe_start_expansion()
        self._migrate_some()

    def delete(self, key: bytes) -> Optional[Item]:
        """Remove and return the item for ``key``, or ``None``."""
        buckets, idx, prev, item = self._locate(key, self._hash(key))
        if item is None:
            return None
        if prev is None:
            buckets[idx] = item.h_next
        else:
            prev.h_next = item.h_next
        item.h_next = None
        self._count -= 1
        self._migrate_some()
        return item

    def __contains__(self, key: bytes) -> bool:
        return self.find(key) is not None

    def items(self) -> Iterator[Item]:
        """Iterate all items (unordered); O(buckets + items)."""
        tables = [self._buckets]
        if self._old_buckets is not None:
            tables.append(self._old_buckets)
        for table in tables:
            for head in table:
                item = head
                while item is not None:
                    yield item
                    item = item.h_next
