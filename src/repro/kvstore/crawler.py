"""The LRU crawler — memcached's proactive expired-item reaper.

Lazy expiry (Section 4.2's model: expired items are reclaimed when a GET
trips over them or when an eviction scan finds them) leaves "zombie"
items occupying chunks that nothing ever touches again.  Memcached's LRU
crawler walks each class's replacement queue from the eviction end in
small, budgeted steps, reclaiming expired items so their chunks return to
the free list without waiting for memory pressure.

The crawler is cooperative: :meth:`step` does a bounded amount of work and
returns, so the driver can interleave it with request processing exactly
like memcached's background thread interleaves with workers.  It only
supports policies with an ordered tail to walk (LRU-like); wheel-organized
policies rely on eviction-time reclaim, as in the paper's GD-Wheel
implementation.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.kvstore.item import Item
from repro.kvstore.store import KVStore


class LRUCrawler:
    """Budgeted, resumable walk over every slab class's eviction queue."""

    def __init__(self, store: KVStore, items_per_step: int = 20) -> None:
        if items_per_step < 1:
            raise ValueError("items_per_step must be >= 1")
        self.store = store
        self.items_per_step = items_per_step
        #: expired items reclaimed by the crawler (not by lazy expiry)
        self.reclaimed = 0
        #: total items examined across all steps
        self.examined = 0
        self._pending: List[Item] = []

    def _snapshot_tails(self) -> None:
        """Capture a bounded batch of tail items from every crawlable class."""
        for cls in self.store.allocator.classes:
            if cls.live_items == 0:
                continue
            policy = self.store.policy_for(cls)
            iter_tail = getattr(policy, "iter_tail", None)
            if iter_tail is None:
                continue  # wheel-like policies: eviction-time reclaim only
            taken = 0
            for entry in iter_tail():
                if taken >= self.items_per_step:
                    break
                self._pending.append(entry)  # type: ignore[arg-type]
                taken += 1

    def step(self) -> int:
        """Do one budgeted crawl increment; returns items reclaimed now."""
        if not self._pending:
            self._snapshot_tails()
        now = self.store.clock.now
        reclaimed = 0
        budget = self.items_per_step
        while self._pending and budget > 0:
            item = self._pending.pop()
            budget -= 1
            self.examined += 1
            # the item may have been touched/removed since the snapshot
            if item.slab is None or not item.linked:
                continue
            if item.expired(now):
                slab_class = item.slab.owner
                self.store._unlink_item(item, slab_class)
                self.store.stats.reclaims += 1
                self.reclaimed += 1
                reclaimed += 1
        return reclaimed

    def run_until_clean(self, max_steps: int = 10_000) -> int:
        """Crawl until a full pass reclaims nothing; returns total reclaimed.

        Intended for tests and drains, not the steady-state path.
        """
        total = 0
        for _ in range(max_steps):
            reclaimed = self.step()
            total += reclaimed
            if reclaimed == 0 and not self._pending:
                # one more snapshot to confirm the queues are clean
                self._snapshot_tails()
                if not any(
                    item.expired(self.store.clock.now)
                    for item in self._pending
                ):
                    self._pending.clear()
                    break
        return total
