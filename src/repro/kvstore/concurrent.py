"""Thread-safe store wrapper — memcached's global cache-lock model.

Memcached (of the paper's era) serializes all item/LRU mutations behind a
single cache lock; its 8 worker threads (Section 6.2) parallelize network
and protocol work, not the replacement structure.  That is exactly why the
paper cares about the *CPU cost per operation* of the replacement policy:
time spent inside the lock is lost to every thread.

:class:`ThreadSafeStore` reproduces that model: one plain (non-reentrant)
lock around every store operation.  Lock-hold-time accounting — the two
``perf_counter`` reads bracketing the critical section — is opt-in and
sampled, so the wrapper no longer taxes the very path it exists to
measure: pass ``hold_time_sampling=1`` to time every operation (the
paper's measurement mode) or ``N`` to time one in ``N``.

For scale-out parallelism, use multiple stores behind
:class:`repro.cluster.StorePool` or the multi-process
:class:`repro.shard.ShardSupervisor` — the same answer memcached
deployments use.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.kvstore.item import Item, NEVER_EXPIRES
from repro.kvstore.store import KVStore


class ThreadSafeStore:
    """A :class:`KVStore` serialized behind one lock, like memcached's.

    Exposes the same public operations; each acquires the cache lock for
    its duration.  The store's operations never call back into the
    wrapper, so a plain ``Lock`` suffices (an ``RLock`` would pay owner
    bookkeeping on every acquire).

    Args:
        store: the store to serialize.
        hold_time_sampling: 0 (default) disables lock-hold accounting
            entirely; ``N >= 1`` times every Nth locked operation and
            accumulates into :attr:`lock_hold_seconds`.  Sampling keeps
            :meth:`average_lock_hold_us` honest (it divides by the number
            of *sampled* operations) while shrinking the measurement tax
            by ``1/N``.
    """

    def __init__(self, store: KVStore, hold_time_sampling: int = 0) -> None:
        if hold_time_sampling < 0:
            raise ValueError("hold_time_sampling must be >= 0")
        self._store = store
        self._lock = threading.Lock()
        self._sampling = hold_time_sampling
        #: cumulative seconds spent inside the cache lock (sampled ops only)
        self.lock_hold_seconds = 0.0
        #: number of locked operations performed
        self.locked_operations = 0
        #: how many operations were actually timed
        self.sampled_operations = 0
        self._locked = (
            self._locked_sampled if hold_time_sampling else self._locked_fast
        )

    @property
    def store(self) -> KVStore:
        """The underlying store (callers must hold no assumptions about
        thread safety when touching it directly)."""
        return self._store

    @property
    def clock(self):
        return self._store.clock

    @property
    def stats(self):
        return self._store.stats

    @property
    def hold_time_sampling(self) -> int:
        return self._sampling

    def _locked_fast(self, fn, *args, **kwargs):
        with self._lock:
            self.locked_operations += 1
            return fn(*args, **kwargs)

    def _locked_sampled(self, fn, *args, **kwargs):
        with self._lock:
            self.locked_operations += 1
            if self.locked_operations % self._sampling:
                return fn(*args, **kwargs)
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self.lock_hold_seconds += time.perf_counter() - started
                self.sampled_operations += 1

    # -- delegated operations ---------------------------------------------------

    def get(self, key: bytes) -> Optional[Item]:
        return self._locked(self._store.get, key)

    def get_many(self, keys):
        """Vectored GET under **one** lock acquisition for the whole batch.

        This is the server-side half of the MGET story: an N-key frame
        pays the lock handshake once instead of N times, and the batch
        reads a consistent point-in-time view of the store.
        """
        return self._locked(self._store.get_many, keys)

    def set_many(self, entries):
        """Vectored SET under one lock acquisition (see ``KVStore.set_many``)."""
        return self._locked(self._store.set_many, entries)

    def set(self, key: bytes, value: bytes, cost: int = 0,
            exptime: float = NEVER_EXPIRES, flags: int = 0,
            version: int = 0) -> Item:
        return self._locked(
            self._store.set, key, value, cost, exptime, flags, version
        )

    def add(self, key: bytes, value: bytes, cost: int = 0,
            exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        return self._locked(self._store.add, key, value, cost, exptime, flags)

    def replace(self, key: bytes, value: bytes, cost: int = 0,
                exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        return self._locked(
            self._store.replace, key, value, cost, exptime, flags
        )

    def append(self, key: bytes, suffix: bytes) -> Item:
        return self._locked(self._store.append, key, suffix)

    def prepend(self, key: bytes, prefix: bytes) -> Item:
        return self._locked(self._store.prepend, key, prefix)

    def cas(self, key: bytes, value: bytes, cas_unique: int, cost: int = 0,
            exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        return self._locked(
            self._store.cas, key, value, cas_unique, cost, exptime, flags
        )

    def incr(self, key: bytes, delta: int = 1) -> int:
        return self._locked(self._store.incr, key, delta)

    def decr(self, key: bytes, delta: int = 1) -> int:
        return self._locked(self._store.decr, key, delta)

    def delete(self, key: bytes) -> bool:
        return self._locked(self._store.delete, key)

    def touch_ttl(self, key: bytes, exptime: float) -> bool:
        return self._locked(self._store.touch_ttl, key, exptime)

    def flush_all(self) -> int:
        return self._locked(self._store.flush_all)

    def contains(self, key: bytes) -> bool:
        return self._locked(self._store.contains, key)

    def digest(self, nslots: int):
        """Anti-entropy digest under the cache lock (a consistent view)."""
        return self._locked(self._store.digest, nslots)

    def key_entries(self, slot: int, nslots: int):
        return self._locked(self._store.key_entries, slot, nslots)

    def check_invariants(self) -> None:
        self._locked(self._store.check_invariants)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def average_lock_hold_us(self) -> float:
        """Mean serialized time per *sampled* operation, in microseconds."""
        if not self.sampled_operations:
            return 0.0
        return 1e6 * self.lock_hold_seconds / self.sampled_operations
