"""Thread-safe store wrapper — memcached's global cache-lock model.

Memcached (of the paper's era) serializes all item/LRU mutations behind a
single cache lock; its 8 worker threads (Section 6.2) parallelize network
and protocol work, not the replacement structure.  That is exactly why the
paper cares about the *CPU cost per operation* of the replacement policy:
time spent inside the lock is lost to every thread.

:class:`ThreadSafeStore` reproduces that model: a re-entrant lock around
every store operation, with lock-hold-time accounting so experiments can
observe how a costlier policy (GD-PQ) inflates the serialized section.

For scale-out parallelism, use multiple stores behind
:class:`repro.cluster.StorePool` — the same answer memcached deployments
use.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.kvstore.item import Item, NEVER_EXPIRES
from repro.kvstore.store import KVStore


class ThreadSafeStore:
    """A :class:`KVStore` serialized behind one lock, like memcached's.

    Exposes the same public operations; each acquires the cache lock for
    its duration.  ``lock_hold_seconds`` accumulates total time spent
    holding the lock (the serialized CPU the paper's Figures 7-8 are
    about).
    """

    def __init__(self, store: KVStore) -> None:
        self._store = store
        self._lock = threading.RLock()
        #: cumulative seconds spent inside the cache lock
        self.lock_hold_seconds = 0.0
        #: number of locked operations performed
        self.locked_operations = 0

    @property
    def store(self) -> KVStore:
        """The underlying store (callers must hold no assumptions about
        thread safety when touching it directly)."""
        return self._store

    @property
    def clock(self):
        return self._store.clock

    @property
    def stats(self):
        return self._store.stats

    def _locked(self, fn, *args, **kwargs):
        with self._lock:
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self.lock_hold_seconds += time.perf_counter() - started
                self.locked_operations += 1

    # -- delegated operations ---------------------------------------------------

    def get(self, key: bytes) -> Optional[Item]:
        return self._locked(self._store.get, key)

    def set(self, key: bytes, value: bytes, cost: int = 0,
            exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        return self._locked(self._store.set, key, value, cost, exptime, flags)

    def add(self, key: bytes, value: bytes, cost: int = 0,
            exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        return self._locked(self._store.add, key, value, cost, exptime, flags)

    def replace(self, key: bytes, value: bytes, cost: int = 0,
                exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        return self._locked(
            self._store.replace, key, value, cost, exptime, flags
        )

    def append(self, key: bytes, suffix: bytes) -> Item:
        return self._locked(self._store.append, key, suffix)

    def prepend(self, key: bytes, prefix: bytes) -> Item:
        return self._locked(self._store.prepend, key, prefix)

    def cas(self, key: bytes, value: bytes, cas_unique: int, cost: int = 0,
            exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        return self._locked(
            self._store.cas, key, value, cas_unique, cost, exptime, flags
        )

    def incr(self, key: bytes, delta: int = 1) -> int:
        return self._locked(self._store.incr, key, delta)

    def decr(self, key: bytes, delta: int = 1) -> int:
        return self._locked(self._store.decr, key, delta)

    def delete(self, key: bytes) -> bool:
        return self._locked(self._store.delete, key)

    def touch_ttl(self, key: bytes, exptime: float) -> bool:
        return self._locked(self._store.touch_ttl, key, exptime)

    def flush_all(self) -> int:
        return self._locked(self._store.flush_all)

    def contains(self, key: bytes) -> bool:
        return self._locked(self._store.contains, key)

    def check_invariants(self) -> None:
        self._locked(self._store.check_invariants)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def average_lock_hold_us(self) -> float:
        """Mean serialized time per operation, in microseconds."""
        if not self.locked_operations:
            return 0.0
        return 1e6 * self.lock_hold_seconds / self.locked_operations
