"""Store-wide counters, mirroring the interesting parts of ``stats``.

Kept separate from the store so experiment code can snapshot/diff cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict


@dataclass
class StoreStats:
    """Counters the experiments read.  All monotonically non-decreasing."""

    get_hits: int = 0
    get_misses: int = 0
    #: GET hits on items that turned out to be expired (count as misses)
    get_expired: int = 0
    sets: int = 0
    deletes: int = 0
    delete_misses: int = 0
    #: replacement-policy evictions of unexpired items (capacity misses seed)
    evictions: int = 0
    #: evictions where the victim was already expired (reclaims)
    reclaims: int = 0
    #: items dropped because their slab was moved to another class
    rebalance_evictions: int = 0
    #: sum of the cost field over all policy-evicted (unexpired) items
    evicted_cost: int = 0
    #: slab moves performed by the active rebalancer
    slab_moves: int = 0

    @property
    def gets(self) -> int:
        return self.get_hits + self.get_misses

    @property
    def hit_rate(self) -> float:
        total = self.gets
        return self.get_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (for reports and diffing)."""
        data = asdict(self)
        data["gets"] = self.gets
        return data


@dataclass
class ClassStats:
    """Per-slab-class snapshot used in reports."""

    class_id: int
    chunk_size: int
    num_slabs: int
    live_items: int
    live_bytes: int
    evictions: int
    rebalance_evictions: int
    average_cost_per_byte: float = field(default=0.0)
