"""Store-wide counters, mirroring the interesting parts of ``stats``.

Since the observability PR these are *views over registry counters*: every
field of :class:`StoreStats` is backed by a ``store_<field>_total`` counter
in a :class:`~repro.obs.registry.MetricsRegistry`, so ``stats``,
``stats metrics``, the Prometheus renderer, and experiment snapshot/diff
code all read the same numbers through one code path.  Field access keeps
the historic ``store.stats.get_hits`` / ``+= 1`` shape via properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, Optional

from repro.obs.registry import Counter, MetricsRegistry

#: StoreStats field -> help text; order is the historical snapshot order.
STORE_COUNTER_FIELDS = {
    "get_hits": "GET requests answered from cache",
    "get_misses": "GET requests that missed (absent or expired)",
    "get_expired": "GET hits on items that turned out to be expired",
    "sets": "storage commands that stored an item",
    "deletes": "DELETE commands that removed an item",
    "delete_misses": "DELETE commands for absent keys",
    "evictions": "replacement-policy evictions of unexpired items",
    "reclaims": "evictions where the victim was already expired",
    "rebalance_evictions": "items dropped because their slab moved classes",
    "evicted_cost": "sum of cost over all policy-evicted unexpired items",
    "slab_moves": "slab moves performed by the active rebalancer",
    "tier_spills": "evictions admitted into the flash tier",
    "tier_hits": "GET misses answered from the flash tier",
    "tier_promotions": "tier hits re-inserted into RAM (not client SETs)",
    "lww_rejects": "versioned SETs rejected because a newer version is stored",
    "bootstrap_keys": "items copied from a replica peer during bootstrap",
}


def _counter_property(name: str) -> property:
    def fget(self: "StoreStats") -> int:
        return self._counters[name].value

    def fset(self: "StoreStats", value: int) -> None:
        # via set() so NullRegistry's shared no-op counter stays untouched
        self._counters[name].set(value)

    return property(fget, fset, doc=STORE_COUNTER_FIELDS[name])


class StoreStats:
    """Counters the experiments read.  All monotonically non-decreasing.

    Backed by ``store_*_total`` counters in ``registry`` (a private
    registry is created when none is given, so a standalone ``StoreStats()``
    still counts).  Under a :class:`~repro.obs.registry.NullRegistry` every
    field reads zero and writes are dropped — that is the observability-off
    configuration the overhead benchmark uses.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self._counters: Dict[str, Counter] = {
            name: registry.counter(f"store_{name}_total", help=text)
            for name, text in STORE_COUNTER_FIELDS.items()
        }

    @property
    def gets(self) -> int:
        return self.get_hits + self.get_misses

    @property
    def hit_rate(self) -> float:
        total = self.gets
        return self.get_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (for reports and diffing)."""
        data = {name: counter.value for name, counter in self._counters.items()}
        data["gets"] = self.gets
        return data

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"StoreStats({inner})"


for _name in STORE_COUNTER_FIELDS:
    setattr(StoreStats, _name, _counter_property(_name))
del _name


@dataclass
class ClassStats:
    """Per-slab-class snapshot used in reports."""

    class_id: int
    chunk_size: int
    num_slabs: int
    live_items: int
    live_bytes: int
    evictions: int
    rebalance_evictions: int
    average_cost_per_byte: float = field(default=0.0)

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form (JSON-friendly; inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "ClassStats":
        return cls(**{f: data[f] for f in cls.__dataclass_fields__})

    def publish(self, registry: MetricsRegistry) -> None:
        """Mirror this snapshot into labeled per-class registry gauges.

        ``slab_class_*{class_id=N}`` gauges are what ``stats metrics`` and
        the Prometheus renderer expose; publishing from the snapshot keeps
        them in exact agreement with :meth:`KVStore.class_stats`.
        """
        cid = self.class_id
        registry.gauge(
            "slab_class_cost_per_byte",
            help="average recomputation cost per byte of live items",
            class_id=cid,
        ).set(self.average_cost_per_byte)
        registry.gauge(
            "slab_class_slabs", help="slabs owned by the class", class_id=cid
        ).set(self.num_slabs)
        registry.gauge(
            "slab_class_live_items", help="live items in the class", class_id=cid
        ).set(self.live_items)
        registry.gauge(
            "slab_class_live_bytes", help="live bytes in the class", class_id=cid
        ).set(self.live_bytes)
        registry.gauge(
            "slab_class_evictions",
            help="policy evictions from the class (lifetime)",
            class_id=cid,
        ).set(self.evictions)
        registry.gauge(
            "slab_class_rebalance_evictions",
            help="items dropped from the class by slab moves (lifetime)",
            class_id=cid,
        ).set(self.rebalance_evictions)
