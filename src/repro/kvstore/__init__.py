"""The memcached-like key-value store substrate.

Everything Section 4 of the paper touches: item metadata with the 2-byte
cost field, the chained hash-table index, the slab allocator with its size
classes, the store facade with memcached's command set, and the two slab
rebalancing policies of Section 5.
"""

from repro.kvstore.clock import SimClock
from repro.kvstore.concurrent import ThreadSafeStore
from repro.kvstore.errors import (
    CasMismatchError,
    NotStoredError,
    ObjectTooLargeError,
    OutOfMemoryError,
    SlabError,
    StoreError,
)
from repro.kvstore.hashtable import HashTable, fnv1a_64
from repro.kvstore.item import ITEM_HEADER_SIZE, NEVER_EXPIRES, Item
from repro.kvstore.rebalance import (
    CostAwareRebalancer,
    NullRebalancer,
    OriginalRebalancer,
    Rebalancer,
)
from repro.kvstore.slab import (
    DEFAULT_GROWTH_FACTOR,
    DEFAULT_MIN_CHUNK,
    DEFAULT_SLAB_SIZE,
    Slab,
    SlabAllocator,
    SlabClass,
)
from repro.kvstore.stats import ClassStats, StoreStats
from repro.kvstore.store import KVStore

__all__ = [
    "CasMismatchError",
    "ClassStats",
    "CostAwareRebalancer",
    "DEFAULT_GROWTH_FACTOR",
    "DEFAULT_MIN_CHUNK",
    "DEFAULT_SLAB_SIZE",
    "HashTable",
    "ITEM_HEADER_SIZE",
    "Item",
    "KVStore",
    "NEVER_EXPIRES",
    "NotStoredError",
    "NullRebalancer",
    "ObjectTooLargeError",
    "OriginalRebalancer",
    "OutOfMemoryError",
    "Rebalancer",
    "SimClock",
    "Slab",
    "SlabAllocator",
    "SlabClass",
    "SlabError",
    "StoreError",
    "StoreStats",
    "ThreadSafeStore",
    "fnv1a_64",
]
