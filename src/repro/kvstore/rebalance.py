"""Slab rebalancing policies (Section 5 of the paper).

Both policies move whole slabs between slab classes; the difference is the
trigger and the donor selection:

* :class:`OriginalRebalancer` models memcached's "slab automove" policy as
  the paper describes it: the eviction rate of every class is checked 3
  times per 30 seconds, and only if the *same* class has the highest
  eviction count in all three checks does it take one least-recently-used
  slab — and only from a class with **zero** evictions over the whole
  window.  The paper criticizes this as too conservative; the multi-size
  experiments show it never fires on their workloads (Section 6.4.2), and
  the reproduction preserves that behaviour.
* :class:`CostAwareRebalancer` is the paper's alternative: every class
  maintains an average recomputation cost per byte; when an eviction occurs
  in a class whose average cost exceeds the cheapest class's, slabs move
  immediately from the cheapest class to the evicting class.  The number of
  slabs moved scales with the evicted item's size (the paper leaves the
  exact function open; we move ``ceil(footprint / slab_size_fraction)``
  capped by ``max_slabs_per_move`` — see DESIGN.md).

Rebalancers receive callbacks from the store; they never touch items
directly but ask the store to reassign a chosen slab.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, TYPE_CHECKING

from repro.kvstore.slab import SlabClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvstore.store import KVStore
    from repro.kvstore.item import Item


class Rebalancer(ABC):
    """Interface between the store and a slab rebalancing policy."""

    name: str = "abstract"

    def __init__(self) -> None:
        self._store: Optional["KVStore"] = None

    def attach(self, store: "KVStore") -> None:
        """Called once by the store that owns this rebalancer."""
        self._store = store

    @abstractmethod
    def on_eviction(self, slab_class: SlabClass, victim: "Item") -> None:
        """Notification: the policy evicted ``victim`` from ``slab_class``."""

    def on_request(self) -> None:
        """Called once per store operation (the periodic policy's heartbeat)."""


class NullRebalancer(Rebalancer):
    """No rebalancing at all (single-size experiments use this)."""

    name = "none"

    def on_eviction(self, slab_class: SlabClass, victim: "Item") -> None:
        pass


class OriginalRebalancer(Rebalancer):
    """Memcached's periodic, conservative automove policy (Section 5.1)."""

    name = "original"

    def __init__(self, check_interval: float = 10.0, window_checks: int = 3) -> None:
        super().__init__()
        self.check_interval = check_interval
        self.window_checks = window_checks
        self._last_check = 0.0
        #: eviction counter snapshots at each check: list of {class_id: count}
        self._snapshots: List[dict] = []
        #: argmax class id at each check within the window
        self._window_leaders: List[Optional[int]] = []

    def on_eviction(self, slab_class: SlabClass, victim: "Item") -> None:
        pass  # purely periodic

    def on_request(self) -> None:
        store = self._store
        assert store is not None, "rebalancer not attached"
        now = store.clock.now
        if now - self._last_check < self.check_interval:
            return
        self._last_check = now
        current = {cls.class_id: cls.evictions for cls in store.allocator.classes}
        if self._snapshots:
            prev = self._snapshots[-1]
            deltas = {cid: current[cid] - prev.get(cid, 0) for cid in current}
            leader = None
            best = 0
            for cid, delta in deltas.items():
                if delta > best:
                    best, leader = delta, cid
            self._window_leaders.append(leader)
        self._snapshots.append(current)
        if len(self._window_leaders) < self.window_checks:
            return
        leaders = self._window_leaders[-self.window_checks :]
        base = self._snapshots[-(self.window_checks + 1)]
        # reset the window whether or not we act, like memcached's automover
        self._window_leaders = []
        self._snapshots = self._snapshots[-1:]
        if leaders[0] is None or any(l != leaders[0] for l in leaders):
            return
        receiver = self._class_by_id(leaders[0])
        donor = self._find_zero_eviction_donor(base, current, exclude=receiver)
        if donor is None:
            return
        slab = donor.least_recently_used_slab()
        if slab is None:
            return
        store.move_slab(slab, receiver)

    def _class_by_id(self, class_id: int) -> SlabClass:
        return self._store.allocator.classes[class_id]

    def _find_zero_eviction_donor(
        self, base: dict, current: dict, exclude: SlabClass
    ) -> Optional[SlabClass]:
        """A class with zero evictions across the window and a spare slab."""
        for cls in self._store.allocator.classes:
            if cls is exclude or cls.num_slabs <= 1:
                continue
            if current[cls.class_id] - base.get(cls.class_id, 0) == 0:
                return cls
        return None


class CostAwareRebalancer(Rebalancer):
    """The paper's reactive, cost-per-byte-driven policy (Section 5.2)."""

    name = "cost-aware"

    def __init__(self, max_slabs_per_move: int = 4, min_donor_slabs: int = 2) -> None:
        super().__init__()
        if max_slabs_per_move < 1:
            raise ValueError("max_slabs_per_move must be >= 1")
        self.max_slabs_per_move = max_slabs_per_move
        self.min_donor_slabs = min_donor_slabs

    def _cheapest_class(self, exclude: SlabClass) -> Optional[SlabClass]:
        """Live class with the lowest average cost per byte and spare slabs.

        The paper maintains this incrementally; with memcached's fixed,
        small class count a scan is equally constant-time and simpler.
        """
        best: Optional[SlabClass] = None
        best_cost = float("inf")
        for cls in self._store.allocator.classes:
            if cls is exclude or cls.num_slabs < self.min_donor_slabs:
                continue
            if cls.live_items == 0:
                continue
            cost = cls.average_cost_per_byte()
            if cost < best_cost:
                best, best_cost = cls, cost
        return best

    def on_eviction(self, slab_class: SlabClass, victim: "Item") -> None:
        store = self._store
        assert store is not None, "rebalancer not attached"
        donor = self._cheapest_class(exclude=slab_class)
        if donor is None:
            return
        if donor.average_cost_per_byte() >= slab_class.average_cost_per_byte():
            return  # the evicting class is not more valuable than the donor
        # "More slabs will be moved if the evicted key-value pair is large":
        # scale with how many donor chunks the victim's footprint spans.
        wanted = max(1, -(-victim.footprint // donor.chunk_size))
        wanted = min(wanted, self.max_slabs_per_move)
        for _ in range(wanted):
            if donor.num_slabs < self.min_donor_slabs:
                break
            slab = donor.least_recently_used_slab()
            if slab is None:
                break
            store.move_slab(slab, slab_class)

    def on_request(self) -> None:
        pass  # purely reactive
