"""Store-level error types."""

from __future__ import annotations

from repro.kvstore.slab import ObjectTooLargeError, SlabError


class StoreError(Exception):
    """Base class for key-value store failures."""


class OutOfMemoryError(StoreError):
    """No chunk could be found or freed for the item being stored.

    This mirrors memcached's ``SERVER_ERROR out of memory storing object``:
    it only happens when the item's slab class owns no slabs and the global
    memory limit prevents allocating one.
    """


class NotStoredError(StoreError):
    """ADD/REPLACE semantics were violated (memcached's NOT_STORED)."""


class CasMismatchError(StoreError):
    """CAS token was stale — the item changed underneath (memcached's EXISTS)."""


__all__ = [
    "CasMismatchError",
    "NotStoredError",
    "ObjectTooLargeError",
    "OutOfMemoryError",
    "SlabError",
    "StoreError",
]
