"""Slab-based memory allocator — the model of memcached's ``slabs.c``.

Memory is carved into fixed-size *slabs* (1 MB in memcached; configurable
here so simulations can scale down).  Each *slab class* owns some slabs and
divides them into equal *chunks*; chunk sizes grow geometrically by a factor
(memcached default 1.25).  An item is stored in the smallest class whose
chunk fits the item's footprint, which is why key-value pairs of different
sizes never compete for the same chunks — and why the paper needs a
*rebalancing* policy to move whole slabs between classes (Section 5).

Slab reassignment evicts every live item in the victim slab (as memcached's
``slab_rebalance`` does), returns the slab to the destination class, and
re-chunks it with the destination's geometry.

The allocator knows nothing about replacement policies; the store wires a
policy to each class and runs the eviction loop.  The allocator does track
the per-class *average cost per byte* that the cost-aware rebalancer needs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.kvstore.item import Item

DEFAULT_SLAB_SIZE = 1024 * 1024
DEFAULT_GROWTH_FACTOR = 1.25
DEFAULT_MIN_CHUNK = 96


class SlabError(Exception):
    """Base class for allocator failures."""


class ObjectTooLargeError(SlabError):
    """Item footprint exceeds the slab size (memcached's SERVER_ERROR)."""


class Slab:
    """One contiguous slab, chunked for its current owner class."""

    __slots__ = ("slab_id", "owner", "chunk_size", "num_chunks", "free_indices",
                 "items", "last_access", "noted_free")

    def __init__(self, slab_id: int) -> None:
        self.slab_id = slab_id
        self.owner: Optional[SlabClass] = None
        self.chunk_size = 0
        self.num_chunks = 0
        self.free_indices: List[int] = []
        #: chunk index -> live Item
        self.items: dict = {}
        #: simulated time of the last access to any item in this slab
        self.last_access = 0.0
        #: whether the slab sits on its class's free stack (dedupe flag)
        self.noted_free = False

    @property
    def used_chunks(self) -> int:
        return len(self.items)

    def rechunk(self, owner: "SlabClass", slab_size: int) -> None:
        """Give this slab to ``owner`` and re-carve it into owner's chunks."""
        if self.items:
            raise SlabError("cannot re-chunk a slab with live items")
        self.owner = owner
        self.chunk_size = owner.chunk_size
        self.num_chunks = slab_size // owner.chunk_size
        self.free_indices = list(range(self.num_chunks))
        self.last_access = 0.0
        # the previous owner's free-stack entry (if any) is now stale
        self.noted_free = False


class SlabClass:
    """A size class: its slabs, free chunks, and cost accounting."""

    __slots__ = ("class_id", "chunk_size", "slabs", "_free_slabs",
                 "live_items", "live_bytes", "live_cost",
                 "evictions", "rebalance_evictions", "total_sets",
                 "policy")

    def __init__(self, class_id: int, chunk_size: int) -> None:
        self.class_id = class_id
        self.chunk_size = chunk_size
        #: replacement policy cached by the owning store (None until bound);
        #: the allocator itself never touches it
        self.policy = None
        self.slabs: List[Slab] = []
        # Stack of slabs that may have free chunks; entries may be stale
        # (validated on pop) so slab moves never pay an O(free-list) scan.
        self._free_slabs: List[Slab] = []
        self.live_items = 0
        self.live_bytes = 0
        #: sum of live item costs (for average cost per byte)
        self.live_cost = 0
        #: items evicted by the replacement policy (capacity pressure)
        self.evictions = 0
        #: items dropped because their slab was reassigned elsewhere
        self.rebalance_evictions = 0
        self.total_sets = 0

    @property
    def num_slabs(self) -> int:
        return len(self.slabs)

    @property
    def total_chunks(self) -> int:
        return sum(s.num_chunks for s in self.slabs)

    def average_cost_per_byte(self) -> float:
        """The metric the cost-aware rebalancer compares (Section 5.2)."""
        if self.live_bytes == 0:
            return 0.0
        return self.live_cost / self.live_bytes

    # -- chunk management ---------------------------------------------------------

    def _note_free(self, slab: Slab) -> None:
        if not slab.noted_free:
            slab.noted_free = True
            self._free_slabs.append(slab)

    def try_alloc(self) -> Optional[Tuple[Slab, int]]:
        """Pop a free chunk, or None if the class is saturated."""
        while self._free_slabs:
            slab = self._free_slabs[-1]
            if slab.owner is not self or not slab.free_indices:
                slab.noted_free = False
                self._free_slabs.pop()
                continue
            index = slab.free_indices.pop()
            if not slab.free_indices:
                slab.noted_free = False
                self._free_slabs.pop()
            return slab, index
        return None

    def adopt_slab(self, slab: Slab, slab_size: int) -> None:
        slab.rechunk(self, slab_size)
        self.slabs.append(slab)
        self._note_free(slab)

    def release_slab(self, slab: Slab) -> None:
        if slab.items:
            raise SlabError("release_slab requires an empty slab")
        self.slabs.remove(slab)
        slab.owner = None
        # stale _free_slabs entries are filtered lazily by try_alloc

    def store_item(self, item: Item, slab: Slab, index: int) -> None:
        slab.items[index] = item
        item.slab = slab
        item.chunk_index = index
        self.live_items += 1
        self.live_bytes += item.footprint
        self.live_cost += item.cost
        self.total_sets += 1

    def free_item(self, item: Item) -> None:
        slab: Slab = item.slab
        if slab is None or slab.owner is not self:
            raise SlabError("item does not belong to this class")
        del slab.items[item.chunk_index]
        slab.free_indices.append(item.chunk_index)
        self._note_free(slab)
        item.slab = None
        item.chunk_index = None
        self.live_items -= 1
        self.live_bytes -= item.footprint
        self.live_cost -= item.cost

    def least_recently_used_slab(self) -> Optional[Slab]:
        """The slab with the oldest access time — the rebalancers' pick."""
        if not self.slabs:
            return None
        return min(self.slabs, key=lambda s: s.last_access)


class SlabAllocator:
    """The full allocator: class sizing, slab growth, and reassignment."""

    def __init__(
        self,
        memory_limit: int,
        slab_size: int = DEFAULT_SLAB_SIZE,
        growth_factor: float = DEFAULT_GROWTH_FACTOR,
        min_chunk_size: int = DEFAULT_MIN_CHUNK,
    ) -> None:
        if memory_limit < slab_size:
            raise ValueError("memory_limit must hold at least one slab")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must be > 1")
        self.memory_limit = memory_limit
        self.slab_size = slab_size
        self.growth_factor = growth_factor
        self.classes: List[SlabClass] = []
        size = min_chunk_size
        class_id = 0
        while size < slab_size:
            self.classes.append(SlabClass(class_id, size))
            class_id += 1
            nxt = int(size * growth_factor)
            # memcached rounds chunk sizes to 8-byte alignment
            nxt = (nxt + 7) & ~7
            size = max(nxt, size + 8)
        self.classes.append(SlabClass(class_id, slab_size))
        self._next_slab_id = 0
        self.allocated_slabs = 0
        #: total slab-to-slab moves performed (observability)
        self.reassignments = 0

    # -- sizing ------------------------------------------------------------------

    def class_for_size(self, footprint: int) -> SlabClass:
        """Smallest class whose chunk fits ``footprint`` (binary search)."""
        if footprint > self.slab_size:
            raise ObjectTooLargeError(
                f"object of {footprint} bytes exceeds slab size {self.slab_size}"
            )
        lo, hi = 0, len(self.classes) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.classes[mid].chunk_size >= footprint:
                hi = mid
            else:
                lo = mid + 1
        return self.classes[lo]

    # -- growth --------------------------------------------------------------------

    @property
    def memory_used(self) -> int:
        return self.allocated_slabs * self.slab_size

    def can_grow(self) -> bool:
        return self.memory_used + self.slab_size <= self.memory_limit

    def grow(self, slab_class: SlabClass) -> Optional[Slab]:
        """Allocate a fresh slab to ``slab_class`` if under the memory limit."""
        if not self.can_grow():
            return None
        slab = Slab(self._next_slab_id)
        self._next_slab_id += 1
        self.allocated_slabs += 1
        slab_class.adopt_slab(slab, self.slab_size)
        return slab

    # -- reassignment ----------------------------------------------------------------

    def reassign_slab(
        self,
        slab: Slab,
        dest: SlabClass,
        evict_item: Callable[[Item], None],
    ) -> int:
        """Move ``slab`` from its owner to ``dest``.

        Every live item in the slab is handed to ``evict_item`` (the store
        removes it from the hash table and replacement policy and updates
        class accounting) before the slab is re-chunked.  Returns the number
        of items dropped.
        """
        src = slab.owner
        if src is None:
            raise SlabError("slab has no owner")
        if src is dest:
            raise SlabError("source and destination classes are identical")
        if src.num_slabs <= 1:
            raise SlabError("cannot take a class's last slab")
        dropped = 0
        for item in list(slab.items.values()):
            evict_item(item)
            dropped += 1
        src.rebalance_evictions += dropped
        src.release_slab(slab)
        dest.adopt_slab(slab, self.slab_size)
        self.reassignments += 1
        return dropped

    # -- introspection ------------------------------------------------------------------

    def used_classes(self) -> List[SlabClass]:
        """Classes that currently own at least one slab."""
        return [cls for cls in self.classes if cls.num_slabs > 0]

    def check_invariants(self) -> None:
        """Assert allocator-wide accounting consistency (property tests)."""
        total_slabs = 0
        for cls in self.classes:
            items = bytes_ = cost = 0
            for slab in cls.slabs:
                if slab.owner is not cls:
                    raise AssertionError("slab owner out of sync")
                if slab.num_chunks != self.slab_size // cls.chunk_size:
                    raise AssertionError("slab chunk geometry out of sync")
                if len(slab.free_indices) + len(slab.items) != slab.num_chunks:
                    raise AssertionError("chunk accounting mismatch")
                overlap = set(slab.free_indices) & set(slab.items)
                if overlap:
                    raise AssertionError(f"chunk both free and used: {overlap}")
                for item in slab.items.values():
                    items += 1
                    bytes_ += item.footprint
                    cost += item.cost
                    if item.footprint > cls.chunk_size:
                        raise AssertionError("item larger than its chunk")
            if (items, bytes_, cost) != (cls.live_items, cls.live_bytes, cls.live_cost):
                raise AssertionError(
                    f"class {cls.class_id} accounting mismatch: "
                    f"{(items, bytes_, cost)} != "
                    f"{(cls.live_items, cls.live_bytes, cls.live_cost)}"
                )
            total_slabs += cls.num_slabs
        if total_slabs != self.allocated_slabs:
            raise AssertionError("allocated slab count mismatch")
        if self.memory_used > self.memory_limit:
            raise AssertionError("memory limit exceeded")
