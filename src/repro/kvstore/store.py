"""The key-value store facade — a memcached work-alike in simulation.

Wires together the chained hash table (the index), the slab allocator (the
memory), one replacement policy instance per slab class (the paper replaces
each class's LRU with GD-Wheel, Section 4.3), and a slab rebalancer
(Section 5).  The public operations mirror memcached's command set: GET,
SET, ADD, REPLACE, DELETE, TOUCH, FLUSH_ALL — with the paper's protocol
extension that SET may carry a recomputation **cost**.

Eviction flow on SET (Figure 6): find the item's slab class; take a free
chunk; failing that, allocate a new slab while under the memory limit;
failing that, ask the class's replacement policy for victims until a chunk
frees up.  Before evicting an unexpired victim, up to
``RECLAIM_SCAN_DEPTH`` entries near the eviction end are checked for
expired items to reclaim instead (memcached's behaviour for LRU; policies
without an ordered tail skip the scan).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.core.policy import ReplacementPolicy
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import EventTrace, EvictionEvent, SlabMoveEvent, key_fingerprint
from repro.obs.tracing import child_span, finish_span
from repro.kvstore.clock import SimClock
from repro.kvstore.errors import (
    NotStoredError,
    ObjectTooLargeError,
    OutOfMemoryError,
)
from repro.kvstore.hashtable import HashTable, fnv1a_64
from repro.kvstore.item import Item, NEVER_EXPIRES
from repro.kvstore.rebalance import NullRebalancer, Rebalancer
from repro.kvstore.slab import (
    DEFAULT_GROWTH_FACTOR,
    DEFAULT_MIN_CHUNK,
    DEFAULT_SLAB_SIZE,
    SlabAllocator,
    SlabClass,
)
from repro.kvstore.stats import ClassStats, StoreStats


class KVStore:
    """A slab-allocated, policy-pluggable, memcached-like cache."""

    #: how many eviction-end entries to check for expired items first
    RECLAIM_SCAN_DEPTH = 5

    def __init__(
        self,
        memory_limit: int,
        policy_factory: Callable[[], ReplacementPolicy],
        rebalancer: Optional[Rebalancer] = None,
        slab_size: int = DEFAULT_SLAB_SIZE,
        growth_factor: float = DEFAULT_GROWTH_FACTOR,
        min_chunk_size: int = DEFAULT_MIN_CHUNK,
        clock: Optional[SimClock] = None,
        hash_power: int = 10,
        hash_func=None,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[EventTrace] = None,
        tier=None,
        on_evict: Optional[Callable] = None,
        hlc=None,
    ) -> None:
        """
        Args:
            memory_limit: cache size in bytes (the paper sweeps 10-25 GB;
                simulations use tens of MB).
            policy_factory: builds one replacement policy per slab class,
                e.g. ``GDWheelPolicy`` or ``LRUPolicy``.
            rebalancer: slab rebalancing policy; default is none.
            slab_size / growth_factor / min_chunk_size: allocator geometry.
            clock: shared simulated clock (created if omitted).
            hash_power: initial hash-table size is ``2**hash_power`` buckets.
            registry: metrics registry for counters/latency histograms; a
                private one is created when omitted (counters always work).
                Pass a :class:`~repro.obs.registry.NullRegistry` to make
                every instrument a no-op and skip op timing entirely.
            trace: optional bounded event trace recording structured
                eviction / cascade / slab-move events.
            tier: optional :class:`~repro.tier.tier.FlashTier`; unexpired
                evictions are offered to it through the eviction hook and
                GET misses fall through to it with promotion back into RAM
                on a hit.  ``None`` (the default) keeps the single-tier
                hot path: one attribute check on the miss/eviction paths.
            on_evict: optional callable ``(item, reason)`` fired for every
                item leaving the store under pressure, with ``reason`` one
                of ``"evicted"``, ``"expired"``, or ``"rebalance"``.  Runs
                after the tier spill when both are configured.
            hlc: optional :class:`~repro.replica.hlc.HybridLogicalClock`.
                When set, unversioned SETs are stamped with a fresh local
                version and versioned SETs feed :meth:`~.HybridLogicalClock.
                observe` — replica members arm this so locally-originated
                writes still participate in last-writer-wins resolution.
                ``None`` (the default) keeps the single-copy hot path: one
                attribute check per SET.
        """
        self.clock = clock if clock is not None else SimClock()
        self.allocator = SlabAllocator(
            memory_limit=memory_limit,
            slab_size=slab_size,
            growth_factor=growth_factor,
            min_chunk_size=min_chunk_size,
        )
        if hash_func is not None:
            self.hashtable = HashTable(initial_power=hash_power, hash_func=hash_func)
        else:
            self.hashtable = HashTable(initial_power=hash_power)
        self._policy_factory = policy_factory
        self._policies: dict = {}  # class_id -> ReplacementPolicy
        self.rebalancer = rebalancer if rebalancer is not None else NullRebalancer()
        self.rebalancer.attach(self)
        # The NullRebalancer's on_request is a no-op; resolving and calling
        # it on every operation is pure overhead, so public ops guard on
        # this prebound reference instead (None = skip the call).
        self._on_request: Optional[Callable[[], None]] = (
            None
            if type(self.rebalancer) is NullRebalancer
            else self.rebalancer.on_request
        )
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.tier = tier
        if tier is not None:
            tier.bind_observability(self.metrics, self.trace, clock=self.clock)
        # The eviction choke point (_evict_item) fires this hook; the tier
        # spill is composed in front of any user hook so both observe the
        # same stream.  None = nothing to call (the common fast path).
        self._on_evict: Optional[Callable] = (
            self._make_tier_hook(tier, on_evict) if tier is not None else on_evict
        )
        self.hlc = hlc
        self.stats = StoreStats(self.metrics)
        # Prebound bumps for the three hottest counters: one call instead
        # of a property fget+fset round trip per event.  Equally valid for
        # a NullRegistry (its shared no-op counter ignores inc()).
        counters = self.stats._counters
        self._count_get_hit = counters["get_hits"].inc
        self._count_get_miss = counters["get_misses"].inc
        self._count_set = counters["sets"].inc
        self._cas_counter = 0
        # Per-op wall-clock histograms are opt-in: only when a registry was
        # explicitly attached (and is live) do we pay two perf_counter reads
        # per operation.  Simulations that never asked for telemetry keep
        # the seed's hot path byte-for-byte.
        if registry is not None and registry.enabled:
            self._instrument_ops()

    #: public operations wrapped with latency histograms when instrumented
    _TIMED_OPS = (
        "get", "set", "add", "replace", "append", "prepend", "cas",
        "incr", "delete", "touch_ttl",
    )

    def _instrument_ops(self) -> None:
        """Shadow each public op with a timed wrapper (instance attributes).

        ``decr`` is left alone — it delegates to ``incr``, which is already
        timed.  Composition wrappers (:class:`ThreadSafeStore`, the protocol
        servers) call through the instance attribute and are timed too.
        """
        for op in self._TIMED_OPS:
            hist = self.metrics.histogram(
                "store_op_latency_us",
                help="store operation latency in microseconds",
                op=op,
            )
            setattr(self, op, self._timed(getattr(self, op), hist))

    @staticmethod
    def _timed(fn, hist):
        perf_counter = time.perf_counter
        # bind the buffer append directly (the list identity is stable);
        # batches fold into the histogram via flush, and any read flushes
        pending = hist._pending
        append = pending.append
        flush = hist.flush
        flush_at = hist.FLUSH_AT

        def timed(*args, **kwargs):
            started = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                append((perf_counter() - started) * 1e6)
                if len(pending) >= flush_at:
                    flush()

        timed.__wrapped__ = fn
        return timed

    # -- plumbing -----------------------------------------------------------------

    def policy_for(self, slab_class: SlabClass) -> ReplacementPolicy:
        """The replacement policy instance owning ``slab_class``'s items.

        The resolved policy is cached on the slab class itself
        (``slab_class.policy``), so steady-state GET/SET hits pay one
        attribute load instead of a method call plus dict lookup.
        """
        policy = slab_class.policy
        if policy is None:
            policy = self._policies.get(slab_class.class_id)
            if policy is None:
                policy = self._policy_factory()
                policy.bind_observability(
                    self.metrics, self.trace, class_id=slab_class.class_id
                )
                self._policies[slab_class.class_id] = policy
            slab_class.policy = policy
        return policy

    def _unlink_item(self, item: Item, slab_class: SlabClass) -> None:
        """Remove ``item`` from hash, policy, and allocator accounting."""
        self.hashtable.delete(item.key)
        policy = slab_class.policy
        if policy is None:
            policy = self.policy_for(slab_class)
        policy.remove(item)
        slab_class.free_item(item)

    def _make_tier_hook(self, tier, user_hook: Optional[Callable]) -> Callable:
        """The eviction hook installed when a tier is attached.

        Unexpired pressure victims are offered to the tier's admission
        filter; ``"expired"`` reclaims carry no recomputation value and
        are never spilled.  A user-supplied hook still sees every event.
        """

        def tier_on_evict(item: Item, reason: str) -> None:
            if reason != "expired":
                span = child_span("tier.spill")
                admitted = tier.spill(
                    item.key, item.value, item.cost, item.flags, item.exptime
                )
                if span is not None:
                    finish_span(
                        span, key_fp=key_fingerprint(item.key),
                        nbytes=len(item.value), reason=reason,
                        admitted=admitted,
                    )
                if admitted:
                    self.stats.tier_spills += 1
            if user_hook is not None:
                user_hook(item, reason)

        return tier_on_evict

    def _evict_item(
        self,
        item: Item,
        slab_class: SlabClass,
        policy: ReplacementPolicy,
        reason: str,
        detached: bool = False,
    ) -> None:
        """The single eviction choke point.

        Every item that leaves the store under pressure — policy eviction
        (``"evicted"``), expiry reclaim at the eviction end
        (``"expired"``), or a slab move (``"rebalance"``) — is unlinked
        here, and the ``on_evict`` hook (tier spill and/or user callback)
        fires exactly once per departure.  ``detached=True`` means the
        policy already dropped the item (``select_victim`` does), so only
        the hash table and allocator need unlinking.
        """
        self.hashtable.delete(item.key)
        if not detached:
            policy.remove(item)
        slab_class.free_item(item)
        on_evict = self._on_evict
        if on_evict is not None:
            on_evict(item, reason)

    def _drop_for_rebalance(self, item: Item) -> None:
        """Eviction callback used during slab reassignment."""
        slab_class = item.slab.owner
        self._evict_item(
            item, slab_class, self.policy_for(slab_class), "rebalance"
        )
        self.stats.rebalance_evictions += 1

    def move_slab(self, slab, dest: SlabClass) -> int:
        """Reassign ``slab`` to ``dest``; returns items dropped."""
        src = slab.owner
        src_id = src.class_id if src is not None else -1
        src_cpb = src.average_cost_per_byte() if src is not None else 0.0
        dest_cpb = dest.average_cost_per_byte()
        dropped = self.allocator.reassign_slab(slab, dest, self._drop_for_rebalance)
        self.stats.slab_moves += 1
        if self.trace is not None:
            self.trace.record(
                SlabMoveEvent(
                    src_class=src_id,
                    dest_class=dest.class_id,
                    dropped_items=dropped,
                    reclaimed_bytes=self.allocator.slab_size,
                    src_cost_per_byte=round(src_cpb, 6),
                    dest_cost_per_byte=round(dest_cpb, 6),
                )
            )
        return dropped

    def _evict_one(self, slab_class: SlabClass) -> Item:
        """Free one chunk in ``slab_class`` via expiry reclaim or eviction."""
        policy = self.policy_for(slab_class)
        now = self.clock.now
        # Memcached first scans a few entries at the eviction end for an
        # expired item to reclaim; only list-ordered policies support this.
        iter_tail = getattr(policy, "iter_tail", None)
        if iter_tail is not None:
            scanned = 0
            for entry in iter_tail():
                if scanned >= self.RECLAIM_SCAN_DEPTH:
                    break
                scanned += 1
                item: Item = entry  # type: ignore[assignment]
                if item.expired(now):
                    self._evict_item(item, slab_class, policy, "expired")
                    self.stats.reclaims += 1
                    if self.trace is not None:
                        self._trace_eviction(policy, slab_class, item, expired=True)
                    return item
        victim: Item = policy.select_victim()  # type: ignore[assignment]
        expired = victim.expired(now)
        self._evict_item(
            victim, slab_class, policy,
            "expired" if expired else "evicted", detached=True,
        )
        if expired:
            self.stats.reclaims += 1
        else:
            self.stats.evictions += 1
            self.stats.evicted_cost += victim.cost
            slab_class.evictions += 1
        if self.trace is not None:
            self._trace_eviction(policy, slab_class, victim, expired=expired)
        if not expired:
            self.rebalancer.on_eviction(slab_class, victim)
        return victim

    def _trace_eviction(
        self, policy: ReplacementPolicy, slab_class: SlabClass,
        victim: Item, expired: bool,
    ) -> None:
        """Record one structured eviction/reclaim event (trace enabled only)."""
        inflation = getattr(policy, "inflation", None)
        hand = getattr(policy, "hand", None)
        self.trace.record(
            EvictionEvent(
                class_id=slab_class.class_id,
                key_hash=key_fingerprint(victim.key),
                cost=victim.cost,
                h_value=getattr(victim, "policy_h", 0),
                inflation=inflation if inflation is not None else -1,
                queue_index=hand(0) if hand is not None else -1,
                expired=expired,
            )
        )

    def _allocate_chunk(self, slab_class: SlabClass):
        """A (slab, index) chunk in ``slab_class``, evicting as needed."""
        chunk = slab_class.try_alloc()
        if chunk is not None:
            return chunk
        if self.allocator.grow(slab_class) is not None:
            return slab_class.try_alloc()
        if slab_class.num_slabs == 0:
            raise OutOfMemoryError(
                f"slab class {slab_class.class_id} owns no slabs and the "
                f"memory limit is reached"
            )
        while chunk is None:
            self._evict_one(slab_class)
            chunk = slab_class.try_alloc()
        return chunk

    # -- public operations ---------------------------------------------------------

    def get(self, key: bytes) -> Optional[Item]:
        """GET: the live item for ``key``, or ``None`` on a miss.

        Expired items are lazily deleted and count as misses; hits update the
        replacement policy (after "responding", as memcached does — which is
        why the paper's Figure 7 shows GET latency independent of policy).

        The hit path is deliberately flat: one hash probe, an inlined
        expiry check, and a policy touch through the reference cached on
        the slab class — no ``policy_for`` resolution, no rebalancer
        virtual call when the NullRebalancer is installed.
        """
        on_request = self._on_request
        if on_request is not None:
            on_request()
        item = self.hashtable.find(key)
        if item is None:
            if self.tier is not None:
                item = self._promote_from_tier(key)
                if item is not None:
                    self._count_get_hit()
                    return item
            self._count_get_miss()
            return None
        now = self.clock._now
        exptime = item.exptime
        if exptime != NEVER_EXPIRES and now >= exptime:
            self._unlink_item(item, item.slab.owner)
            stats = self.stats
            stats.get_expired += 1
            stats.get_misses += 1
            return None
        self._count_get_hit()
        item.last_access = now
        slab = item.slab
        slab.last_access = now
        slab_class = slab.owner
        policy = slab_class.policy
        if policy is None:
            policy = self.policy_for(slab_class)
        policy.touch(item)
        return item

    def get_many(self, keys) -> List[Optional[Item]]:
        """Vectored GET: one item (or ``None``) per key, in key order.

        The per-key semantics are exactly :meth:`get` (expiry, policy
        touch, tier promotion, stats); the vectored form exists so the
        serving layer can dispatch a whole MGET frame in one store call —
        one lock acquisition on a :class:`ThreadSafeStore`, one dispatch
        entry on the protocol engine.
        """
        get = self.get
        return [get(key) for key in keys]

    def set_many(self, entries) -> List[object]:
        """Vectored SET of ``(key, value, cost, exptime, flags[, version])``.

        Returns one result per entry, in order: the stored :class:`Item`
        on success, or the raised storage error instance
        (:class:`ObjectTooLargeError` / :class:`OutOfMemoryError` /
        :class:`NotStoredError` for a last-writer-wins reject) on
        failure — errors are per-entry data, never aborts, so one
        oversized value cannot void the rest of an MSET batch.
        """
        results: List[object] = []
        set_ = self.set
        # entry order matches set()'s positional signature, so 5-tuples
        # (legacy) and 6-tuples (with version) both splat straight through
        for entry in entries:
            try:
                results.append(set_(*entry))
            except (ObjectTooLargeError, OutOfMemoryError, NotStoredError) as exc:
                results.append(exc)
        return results

    def contains(self, key: bytes) -> bool:
        """Presence check without stats or policy side effects."""
        item = self.hashtable.find(key)
        return item is not None and not item.expired(self.clock.now)

    def set(
        self,
        key: bytes,
        value: bytes,
        cost: int = 0,
        exptime: float = NEVER_EXPIRES,
        flags: int = 0,
        version: int = 0,
    ) -> Item:
        """SET: unconditionally store, with the paper's optional cost.

        A nonzero ``version`` makes the store conditional on last-writer-
        wins: if the live item carries a strictly newer version the write
        raises :class:`NotStoredError` (answered ``NOT_STORED`` on the
        wire) and the newer value survives.  Version 0 (the default)
        keeps unconditional memcached semantics.
        """
        if self._on_request is not None:
            self._on_request()
        return self._store_item(key, value, cost, exptime, flags,
                                version=version)

    def add(self, key: bytes, value: bytes, cost: int = 0,
            exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        """ADD: store only if the key is absent (else NOT_STORED)."""
        if self._on_request is not None:
            self._on_request()
        if self.contains(key):
            raise NotStoredError(f"key {key!r} already stored")
        return self._store_item(key, value, cost, exptime, flags)

    def replace(self, key: bytes, value: bytes, cost: int = 0,
                exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        """REPLACE: store only if the key is present (else NOT_STORED)."""
        if self._on_request is not None:
            self._on_request()
        if not self.contains(key):
            raise NotStoredError(f"key {key!r} not stored")
        return self._store_item(key, value, cost, exptime, flags)

    def _promote_from_tier(self, key: bytes) -> Optional[Item]:
        """RAM-miss fallthrough: promote a live tier record back into RAM.

        The record is re-inserted with its original cost (so the
        replacement policy values it exactly as the client's SET did) and
        counted as a ``tier_promotion``, not a client SET; the flash copy
        is invalidated because the RAM copy is authoritative again.
        """
        tier = self.tier
        span = child_span("tier.read")
        record = tier.lookup(key)
        if span is not None:
            # attrs are computed only when the span exists, so the
            # untraced fallthrough pays one ContextVar read and nothing else
            finish_span(
                span, key_fp=key_fingerprint(key), hit=record is not None,
                reads=getattr(tier, "last_lookup_reads", 0),
            )
        if record is None:
            return None
        stats = self.stats
        stats.tier_hits += 1
        promote = child_span("tier.promote")
        item = self._store_item(
            key, record.value, record.cost, record.exptime, record.flags, False
        )
        if promote is not None:
            finish_span(
                promote, key_fp=key_fingerprint(key),
                nbytes=len(record.value),
            )
        stats.tier_promotions += 1
        return item

    def _store_item(self, key: bytes, value: bytes, cost: int,
                    exptime: float, flags: int, count_set: bool = True,
                    version: int = 0) -> Item:
        old = self.hashtable.find(key)
        if version:
            hlc = self.hlc
            if hlc is not None:
                hlc.observe(version)
            # last-writer-wins: a strictly newer stored version survives;
            # an equal version re-stores (idempotent anti-entropy repair)
            if old is not None and old.version > version:
                self.stats.lww_rejects += 1
                raise NotStoredError(
                    f"key {key!r} holds newer version {old.version}"
                )
        elif self.hlc is not None:
            # replica member: stamp locally-originated unversioned writes
            # so they still participate in LWW between replicas
            version = self.hlc.tick()
        if old is not None:
            self._unlink_item(old, old.slab.owner)
        tier = self.tier
        if tier is not None:
            # any flash copy is stale the moment RAM stores a new value
            tier.invalidate(key)
        item = Item(key=key, value=value, cost=cost, flags=flags,
                    exptime=exptime, version=version)
        slab_class = self.allocator.class_for_size(item.footprint)
        slab, index = self._allocate_chunk(slab_class)
        slab_class.store_item(item, slab, index)
        self.hashtable.insert(item)
        now = self.clock._now
        item.last_access = now
        slab.last_access = now
        self._cas_counter += 1
        item.cas_unique = self._cas_counter
        policy = slab_class.policy
        if policy is None:
            policy = self.policy_for(slab_class)
        policy.insert(item, cost)
        if count_set:
            self._count_set()
        return item

    def append(self, key: bytes, suffix: bytes) -> Item:
        """APPEND: add ``suffix`` after an existing value (else NOT_STORED).

        As in memcached, the item is reallocated (its size class may
        change); flags, expiry, and cost are preserved.
        """
        if self._on_request is not None:
            self._on_request()
        item = self.hashtable.find(key)
        if item is None or item.expired(self.clock.now):
            raise NotStoredError(f"key {key!r} not stored")
        return self._store_item(
            key, item.value + suffix, item.cost, item.exptime, item.flags
        )

    def prepend(self, key: bytes, prefix: bytes) -> Item:
        """PREPEND: add ``prefix`` before an existing value (else NOT_STORED)."""
        if self._on_request is not None:
            self._on_request()
        item = self.hashtable.find(key)
        if item is None or item.expired(self.clock.now):
            raise NotStoredError(f"key {key!r} not stored")
        return self._store_item(
            key, prefix + item.value, item.cost, item.exptime, item.flags
        )

    def cas(self, key: bytes, value: bytes, cas_unique: int, cost: int = 0,
            exptime: float = NEVER_EXPIRES, flags: int = 0) -> Item:
        """CAS: store only if the item is unchanged since ``cas_unique``.

        Raises :class:`CasMismatchError` when the token is stale (memcached's
        EXISTS) and :class:`NotStoredError` when the key vanished (NOT_FOUND).
        """
        if self._on_request is not None:
            self._on_request()
        item = self.hashtable.find(key)
        if item is None or item.expired(self.clock.now):
            raise NotStoredError(f"key {key!r} not stored")
        if item.cas_unique != cas_unique:
            from repro.kvstore.errors import CasMismatchError

            raise CasMismatchError(
                f"key {key!r} modified since cas token {cas_unique}"
            )
        return self._store_item(key, value, cost, exptime, flags)

    def incr(self, key: bytes, delta: int = 1) -> int:
        """INCR: add ``delta`` to a decimal-ASCII value; returns the result.

        Like memcached: the key must exist (NOT_FOUND -> NotStoredError) and
        hold an unsigned decimal number (else ValueError); underflow clamps
        at zero on DECR.
        """
        if self._on_request is not None:
            self._on_request()
        item = self.hashtable.find(key)
        if item is None or item.expired(self.clock.now):
            raise NotStoredError(f"key {key!r} not stored")
        try:
            current = int(item.value)
        except ValueError:
            raise ValueError(
                "cannot increment or decrement non-numeric value"
            ) from None
        if current < 0:
            raise ValueError("cannot increment or decrement non-numeric value")
        fresh = max(current + delta, 0)
        self._store_item(
            key, b"%d" % fresh, item.cost, item.exptime, item.flags
        )
        return fresh

    def decr(self, key: bytes, delta: int = 1) -> int:
        """DECR: subtract ``delta``, clamping at zero (memcached semantics)."""
        return self.incr(key, -delta)

    def delete(self, key: bytes) -> bool:
        """DELETE: returns True if the key was present and removed.

        With a tier attached the flash copy is dropped too — a delete
        must never be undone by a later tier fallthrough.
        """
        if self._on_request is not None:
            self._on_request()
        tier = self.tier
        item = self.hashtable.find(key)
        if item is None:
            if tier is not None and tier.invalidate(key):
                self.stats.deletes += 1
                return True
            self.stats.delete_misses += 1
            return False
        if tier is not None:
            tier.invalidate(key)
        self._unlink_item(item, item.slab.owner)
        self.stats.deletes += 1
        return True

    def touch_ttl(self, key: bytes, exptime: float) -> bool:
        """TOUCH: update an item's expiry without fetching it."""
        if self._on_request is not None:
            self._on_request()
        item = self.hashtable.find(key)
        if item is None or item.expired(self.clock.now):
            return False
        item.exptime = exptime
        return True

    def flush_all(self) -> int:
        """Drop every cached item (both tiers); returns the number removed."""
        if self._on_request is not None:
            self._on_request()
        removed = 0
        for item in list(self.hashtable.items()):
            self._unlink_item(item, item.slab.owner)
            removed += 1
        if self.tier is not None:
            removed += self.tier.flush()
        return removed

    # -- anti-entropy ----------------------------------------------------------------

    def digest(self, nslots: int) -> List[tuple]:
        """Per-slot (count, hash) summary of live keys for anti-entropy.

        Keys are bucketed by ``fnv1a_64(key) % nslots``; each slot's hash
        is the XOR of per-item ``fnv1a_64(key \\x00 version)`` values, so
        it is order-independent and two stores holding the same key/version
        sets produce identical digests.  Expired items are skipped (not
        deleted — digests must be read-only).  Returns a sorted list of
        ``(slot, count, hash)`` for non-empty slots only.
        """
        now = self.clock.now
        counts: dict = {}
        hashes: dict = {}
        for item in self.hashtable.items():
            if item.expired(now):
                continue
            key = item.key
            slot = fnv1a_64(key) % nslots
            counts[slot] = counts.get(slot, 0) + 1
            acc = fnv1a_64(b"%s\x00%d" % (key, item.version))
            hashes[slot] = hashes.get(slot, 0) ^ acc
        return sorted((slot, counts[slot], hashes[slot]) for slot in counts)

    def key_entries(self, slot: int, nslots: int) -> List[tuple]:
        """Metadata for live keys in one digest slot, for repair/bootstrap.

        Returns ``(key, version, cost, flags, exptime)`` per item —
        everything but the value (values travel over MGET so large
        payloads ride the batched path).  Read-only, like :meth:`digest`.
        """
        now = self.clock.now
        out = []
        for item in self.hashtable.items():
            if item.expired(now) or fnv1a_64(item.key) % nslots != slot:
                continue
            out.append(
                (item.key, item.version, item.cost, item.flags, item.exptime)
            )
        out.sort()
        return out

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.hashtable)

    @property
    def live_bytes(self) -> int:
        return sum(cls.live_bytes for cls in self.allocator.classes)

    def class_stats(self) -> List[ClassStats]:
        """Per-class snapshots for live classes (reports, rebalancer tests)."""
        out = []
        for cls in self.allocator.classes:
            if cls.num_slabs == 0 and cls.live_items == 0:
                continue
            out.append(
                ClassStats(
                    class_id=cls.class_id,
                    chunk_size=cls.chunk_size,
                    num_slabs=cls.num_slabs,
                    live_items=cls.live_items,
                    live_bytes=cls.live_bytes,
                    evictions=cls.evictions,
                    rebalance_evictions=cls.rebalance_evictions,
                    average_cost_per_byte=cls.average_cost_per_byte(),
                )
            )
        return out

    def publish_metrics(self) -> None:
        """Refresh pull-style gauges in :attr:`metrics` from live state.

        Called right before exposition (``stats metrics`` / a Prometheus
        scrape) so per-class cost-per-byte and occupancy gauges agree with
        :meth:`class_stats` at the instant of the read, without paying any
        per-operation bookkeeping.
        """
        registry = self.metrics
        registry.gauge("store_curr_items", help="live items in the store").set(
            len(self)
        )
        registry.gauge("store_live_bytes", help="live value bytes stored").set(
            self.live_bytes
        )
        registry.gauge(
            "store_memory_used_bytes", help="bytes of slab memory allocated"
        ).set(self.allocator.memory_used)
        registry.gauge(
            "store_memory_limit_bytes", help="configured memory limit"
        ).set(self.allocator.memory_limit)
        for snapshot in self.class_stats():
            snapshot.publish(registry)
        if self.tier is not None:
            self.tier.publish_metrics()

    def check_invariants(self) -> None:
        """Cross-structure consistency (used by property/integration tests)."""
        self.allocator.check_invariants()
        hash_count = len(self.hashtable)
        policy_count = sum(len(p) for p in self._policies.values())
        alloc_count = sum(cls.live_items for cls in self.allocator.classes)
        if not (hash_count == policy_count == alloc_count):
            raise AssertionError(
                f"item counts diverge: hash={hash_count} "
                f"policy={policy_count} alloc={alloc_count}"
            )
        for item in self.hashtable.items():
            if item.slab is None or item.slab.owner is None:
                raise AssertionError(f"indexed item has no slab: {item!r}")
            if item.slab.items.get(item.chunk_index) is not item:
                raise AssertionError(f"slab chunk mapping broken for {item!r}")
