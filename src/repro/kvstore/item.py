"""Cached item metadata — the analogue of memcached's ``item`` struct.

Each cached key-value pair carries (Section 4.1 of the paper):

* the key and value (here kept as ``bytes``),
* sizes, an expiration time, and flags,
* hash-chain linkage (``h_next``) for the chained hash table,
* replacement-policy linkage (inherited from :class:`PolicyEntry` — the
  intrusive list node plus the policy's bookkeeping fields), and
* the paper's addition: a **cost** field.  The paper uses 2 bytes; because
  memcached rounds item headers to an 8-byte boundary the field is free.
  We model the same header size either way.

``ITEM_HEADER_SIZE`` mirrors the 64-bit memcached header: 48 bytes of
pointers/sizes/times plus suffix bookkeeping, rounded to 56.  An item's
*footprint* (what the slab allocator charges) is header + key + value.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import PolicyEntry

#: Simulated per-item metadata overhead in bytes (memcached's rounded header,
#: including the paper's 2-byte cost field which fits in the rounding slack).
ITEM_HEADER_SIZE = 56

#: Sentinel meaning "never expires".
NEVER_EXPIRES = 0


class Item(PolicyEntry):
    """A cached key-value pair plus all store metadata."""

    __slots__ = (
        "value",
        "flags",
        "exptime",
        "h_next",
        "slab",
        "chunk_index",
        "last_access",
        "cas_unique",
        "version",
    )

    def __init__(
        self,
        key: bytes,
        value: bytes,
        cost: int = 0,
        flags: int = 0,
        exptime: float = NEVER_EXPIRES,
        version: int = 0,
    ) -> None:
        if not isinstance(key, bytes):
            raise TypeError("key must be bytes")
        if not isinstance(value, bytes):
            raise TypeError("value must be bytes")
        # Base-class field setup is flattened inline: an Item is built on
        # every SET, and the two super().__init__ frames (PolicyEntry ->
        # IntrusiveNode) are measurable in the simulation driver.  Keep in
        # sync with those classes' __init__ bodies.
        self._prev = None
        self._next = None
        self._list = None
        self.cost = cost
        self.size = ITEM_HEADER_SIZE + len(key) + len(value)
        self.key = key
        self.policy_h = 0
        self.policy_seq = 0
        self.policy_slot = None
        self.policy_ref = None
        self.value = value
        self.flags = flags
        #: absolute expiry time on the simulated clock; 0 = never
        self.exptime = exptime
        #: next item in the hash-table chain
        self.h_next: Optional[Item] = None
        #: the slab currently housing this item (set by the allocator)
        self.slab = None
        #: chunk index within the slab (set by the allocator)
        self.chunk_index: Optional[int] = None
        #: last access time on the simulated clock (for slab LRU picks)
        self.last_access = 0.0
        #: compare-and-swap token (bumped on every mutation)
        self.cas_unique = 0
        #: hybrid-logical-clock replication version (0 = unversioned);
        #: last-writer-wins resolution compares these across replicas
        self.version = version

    @property
    def footprint(self) -> int:
        """Bytes the allocator must provide: header + key + value."""
        return self.size

    def expired(self, now: float) -> bool:
        """Whether the item is past its expiry at simulated time ``now``."""
        return self.exptime != NEVER_EXPIRES and now >= self.exptime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Item(key={self.key!r}, {len(self.value)}B value, "
            f"cost={self.cost}, exptime={self.exptime})"
        )
