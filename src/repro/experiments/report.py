"""Plain-text rendering of experiment tables and series.

The benchmarks print the same rows/series the paper's figures show; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """A fixed-width ASCII table; numbers are formatted compactly."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            return f"{cell:.2f}"
        return str(cell)

    materialized: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def render_series(
    series: Sequence[Tuple[float, float]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 25,
) -> str:
    """A (x, y) series as aligned columns, subsampled for readability."""
    points = list(series)
    if len(points) > max_points:
        step = len(points) / max_points
        points = [points[int(i * step)] for i in range(max_points)] + [points[-1]]
    rows = [(f"{x:.1f}", f"{y:.4f}") for x, y in points]
    return render_table([x_label, y_label], rows, title=title)


def percent(value: float) -> str:
    return f"{value:.1f}%"
