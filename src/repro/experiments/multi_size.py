"""The multiple-size workload study (Figures 13-15).

Table 3's three workloads give each cost group its own value size so each
lands in its own slab class; the study compares three configurations
(Section 6.4.2):

* ``LRU+Orig`` — LRU with memcached's original rebalancer (the baseline),
* ``GD-Wheel+Orig`` — cost-aware replacement, original rebalancer,
* ``GD-Wheel+New`` — cost-aware replacement plus the cost-aware rebalancer.

(The paper notes LRU cannot pair with the cost-aware rebalancer, which
needs per-item costs.)  A faithful detail to watch in reports: the original
rebalancer should move **zero** slabs — no class has a zero-eviction window.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.cache import run_cached
from repro.experiments.report import render_table
from repro.experiments.scales import ExperimentScale, active_scale
from repro.sim.driver import SimConfig
from repro.sim.metrics import normalized, reduction_percent
from repro.sim.results import SimResult
from repro.workloads.ycsb import MULTI_SIZE_WORKLOADS

#: (label, policy, rebalancer) — the paper's three configurations.
CONFIGURATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("LRU+Orig", "lru", "original"),
    ("GD-Wheel+Orig", "gd-wheel", "original"),
    ("GD-Wheel+New", "gd-wheel", "cost-aware"),
)

ResultKey = Tuple[str, str]  # (workload_id, configuration label)


def multi_size_configs(
    scale: Optional[ExperimentScale] = None,
    configurations: Sequence[Tuple[str, str, str]] = CONFIGURATIONS,
    workload_ids: Optional[Iterable[str]] = None,
) -> List[Tuple[ResultKey, SimConfig]]:
    """The study's cells as ((workload_id, label), config) pairs, in suite
    order; seeds are a pure function of the cell (see single_size)."""
    scale = scale or active_scale()
    ids = list(workload_ids) if workload_ids is not None else list(
        MULTI_SIZE_WORKLOADS
    )
    cells: List[Tuple[ResultKey, SimConfig]] = []
    for wid in ids:
        spec = MULTI_SIZE_WORKLOADS[wid]
        for label, policy, rebalancer in configurations:
            config = SimConfig(
                spec=spec,
                policy=policy,
                rebalancer=rebalancer,
                memory_limit=scale.memory_limit,
                slab_size=scale.slab_size,
                num_requests=scale.num_requests,
                seed=scale.seed,
            )
            cells.append(((wid, label), config))
    return cells


def run_multi_size_suite(
    scale: Optional[ExperimentScale] = None,
    configurations: Sequence[Tuple[str, str, str]] = CONFIGURATIONS,
    workload_ids: Optional[Iterable[str]] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
) -> Dict[ResultKey, SimResult]:
    cells = multi_size_configs(
        scale=scale, configurations=configurations, workload_ids=workload_ids
    )
    if jobs is not None and jobs > 1:
        from repro.experiments.parallel import run_grid

        values = run_grid(
            [config for _, config in cells], jobs=jobs, use_cache=use_cache
        )
    else:
        values = [run_cached(config, use_cache=use_cache) for _, config in cells]
    return {key: result for (key, _), result in zip(cells, values)}


def _baseline(results: Dict[ResultKey, SimResult], wid: str) -> SimResult:
    return results[(wid, "LRU+Orig")]


def fig13_rows(results: Dict[ResultKey, SimResult]) -> List[list]:
    rows = []
    for wid in sorted({k[0] for k in results}):
        base = _baseline(results, wid)
        row = [wid, base.workload_name]
        for label, _, _ in CONFIGURATIONS:
            row.append(results[(wid, label)].average_latency_us)
        row.append(
            reduction_percent(
                base.average_latency_us,
                results[(wid, "GD-Wheel+New")].average_latency_us,
            )
        )
        rows.append(row)
    return rows


def fig13_report(results: Dict[ResultKey, SimResult]) -> str:
    return render_table(
        ["wl", "name"]
        + [f"{label} avg (us)" for label, _, _ in CONFIGURATIONS]
        + ["New vs LRU %"],
        fig13_rows(results),
        title="Figure 13: average read access latency (multiple size)",
    )


def fig14_rows(results: Dict[ResultKey, SimResult]) -> List[list]:
    rows = []
    for wid in sorted({k[0] for k in results}):
        base = _baseline(results, wid)
        row = [wid, base.workload_name]
        for label, _, _ in CONFIGURATIONS:
            row.append(
                normalized(
                    base.total_recomputation_cost,
                    results[(wid, label)].total_recomputation_cost,
                )
            )
        row.append(
            reduction_percent(
                base.total_recomputation_cost,
                results[(wid, "GD-Wheel+New")].total_recomputation_cost,
            )
        )
        rows.append(row)
    return rows


def fig14_report(results: Dict[ResultKey, SimResult]) -> str:
    return render_table(
        ["wl", "name"]
        + [f"{label} (norm)" for label, _, _ in CONFIGURATIONS]
        + ["New vs LRU %"],
        fig14_rows(results),
        title="Figure 14: normalized total recomputation cost (multiple size)",
    )


def fig15_rows(results: Dict[ResultKey, SimResult]) -> List[list]:
    rows = []
    for wid in sorted({k[0] for k in results}):
        base = _baseline(results, wid)
        row = [wid, base.workload_name]
        for label, _, _ in CONFIGURATIONS:
            row.append(results[(wid, label)].p99_latency_us)
        row.append(
            reduction_percent(
                base.p99_latency_us,
                results[(wid, "GD-Wheel+New")].p99_latency_us,
            )
        )
        rows.append(row)
    return rows


def fig15_report(results: Dict[ResultKey, SimResult]) -> str:
    return render_table(
        ["wl", "name"]
        + [f"{label} p99 (us)" for label, _, _ in CONFIGURATIONS]
        + ["New vs LRU %"],
        fig15_rows(results),
        title="Figure 15: 99th percentile read access latency (multiple size)",
    )


def slab_moves_report(results: Dict[ResultKey, SimResult]) -> str:
    """The Section 6.4.2 detail: the original rebalancer never fires."""
    rows = []
    for (wid, label), result in sorted(results.items()):
        rows.append([wid, label, result.store_stats.get("slab_moves", 0)])
    return render_table(
        ["wl", "configuration", "slab moves"],
        rows,
        title="Slab moves per configuration (original should be 0)",
    )
