"""Parallel experiment engine — fan simulation cells across processes.

The figure suites are embarrassingly parallel: every (workload, policy,
rebalancer) cell is an independent :class:`SimConfig` whose seed is a pure
function of the cell's configuration — never of execution order, worker
identity, or wall time — so a grid run under ``--jobs N`` produces results
byte-identical to the serial loop (``tests/experiments/test_parallel.py``
asserts this).  The runner:

* consults the ``.repro-results`` fingerprint cache in the parent before
  dispatching, so already-computed cells never cost a worker;
* fans the remaining cells over a :mod:`multiprocessing` pool (fork when
  available, spawn otherwise), each worker writing its cell back through
  the crash-safe :func:`~repro.experiments.cache.save_result`;
* streams per-cell progress and an ETA through a
  :class:`~repro.obs.registry.MetricsRegistry` (the repo's one metrics
  spine) plus an optional line emitter; and
* merges results in input order, exactly as serial execution would.

``prefill_suites`` is the one-call warm-up used by ``experiments.cli
--jobs`` and ``benchmarks/conftest.py``: it computes the union of the
single-size and multi-size grids so that figures 9-15 and Table 4 all hit
the cache afterwards.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.experiments.cache import load_result, run_cached
from repro.experiments.scales import ExperimentScale, active_scale
from repro.obs.registry import MetricsRegistry
from repro.sim.driver import SimConfig
from repro.sim.results import SimResult


def default_jobs() -> int:
    """Usable CPUs for worker processes (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Validate a ``jobs`` argument; ``None`` means :func:`default_jobs`.

    ``0`` and negative values used to be silently clamped to 1, which made
    a mistyped ``--jobs 0`` look like a deliberate serial run; now they are
    rejected loudly everywhere a job count enters the engine.
    """
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ValueError(
            f"jobs must be a positive integer, got {jobs} "
            "(pass jobs=1 for serial execution or jobs=None for all CPUs)"
        )
    return jobs


def _mp_context():
    """Fork when the platform offers it (cheap, inherits env); else default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


class GridProgress:
    """Per-cell progress/ETA for a grid run, backed by registry counters.

    The counters (``experiment_cells_total`` / ``_done_total`` /
    ``_cached_total``) live in a :class:`MetricsRegistry` so any exposition
    path can watch a long grid; ``emit`` (when given) receives one
    human-readable line per finished cell, with an ETA extrapolated from
    the mean wall time of the cells actually computed so far.
    """

    def __init__(
        self,
        total: int,
        registry: Optional[MetricsRegistry] = None,
        emit: Optional[Callable[[str], None]] = None,
        jobs: int = 1,
        label: str = "grid",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.emit = emit
        self.label = label
        self.jobs = max(1, jobs)
        self.total = total
        self.done = 0
        self.cached = 0
        self._computed_seconds = 0.0
        self._counter_total = self.registry.counter(
            "experiment_cells_total", help="cells submitted to the grid runner"
        )
        self._counter_done = self.registry.counter(
            "experiment_cells_done_total", help="cells finished (any source)"
        )
        self._counter_cached = self.registry.counter(
            "experiment_cells_cached_total", help="cells served from the cache"
        )
        self._counter_total.inc(total)

    def cell_done(self, config: SimConfig, result: SimResult, cached: bool) -> None:
        self.done += 1
        self._counter_done.inc()
        if cached:
            self.cached += 1
            self._counter_cached.inc()
        else:
            self._computed_seconds += result.wall_seconds
        if self.emit is not None:
            self.emit(self._line(config, cached))

    def eta_seconds(self) -> Optional[float]:
        """Remaining-work estimate; None until a cell has been computed."""
        computed = self.done - self.cached
        if computed <= 0:
            return None
        mean = self._computed_seconds / computed
        remaining = self.total - self.done
        return mean * remaining / self.jobs

    def _line(self, config: SimConfig, cached: bool) -> str:
        cell = f"{config.spec.workload_id}/{config.policy}"
        if config.rebalancer != "none":
            cell += f"+{config.rebalancer}"
        source = "cache" if cached else "run"
        line = (
            f"[{self.label}] {self.done}/{self.total} cells "
            f"({self.cached} cached) {source}: {cell}"
        )
        eta = self.eta_seconds()
        if eta is not None and self.done < self.total:
            line += f" eta ~{eta:.0f}s"
        return line


def _run_cell(args: Tuple[int, SimConfig, bool]) -> Tuple[int, SimResult]:
    """Worker body: run one cell (through the cache) and ship it back."""
    index, config, use_cache = args
    return index, run_cached(config, use_cache=use_cache)


def run_grid(
    configs: Iterable[SimConfig],
    jobs: Optional[int] = None,
    use_cache: bool = True,
    progress: Optional[GridProgress] = None,
    registry: Optional[MetricsRegistry] = None,
    emit: Optional[Callable[[str], None]] = None,
) -> List[SimResult]:
    """Run every cell, fanning cache misses across ``jobs`` processes.

    Results come back in input order regardless of completion order, and
    each cell is bit-identical to what a serial ``run_cached`` loop would
    produce (deterministic per-cell seeding; no shared mutable state).
    ``jobs=None`` means :func:`default_jobs`; ``jobs<=1`` runs inline with
    no pool at all.
    """
    cells: List[SimConfig] = list(configs)
    jobs = resolve_jobs(jobs)
    if progress is None:
        progress = GridProgress(
            len(cells), registry=registry, emit=emit, jobs=jobs
        )
    results: List[Optional[SimResult]] = [None] * len(cells)

    pending: List[Tuple[int, SimConfig]] = []
    for index, config in enumerate(cells):
        cached = load_result(config) if use_cache else None
        if cached is not None:
            results[index] = cached
            progress.cell_done(config, cached, cached=True)
        else:
            pending.append((index, config))

    if pending and (jobs <= 1 or len(pending) == 1):
        for index, config in pending:
            result = run_cached(config, use_cache=use_cache)
            results[index] = result
            progress.cell_done(config, result, cached=False)
    elif pending:
        ctx = _mp_context()
        workers = min(jobs, len(pending))
        payload = [(index, config, use_cache) for index, config in pending]
        with ctx.Pool(processes=workers) as pool:
            for index, result in pool.imap_unordered(_run_cell, payload, chunksize=1):
                results[index] = result
                progress.cell_done(cells[index], result, cached=False)
    return results  # type: ignore[return-value]


def prefill_suites(
    scale: Optional[ExperimentScale] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    single: bool = True,
    multi: bool = True,
    registry: Optional[MetricsRegistry] = None,
    emit: Optional[Callable[[str], None]] = None,
) -> Dict[str, int]:
    """One parallel pass over the union of the figure suites' grids.

    After this returns, ``run_single_size_suite`` / ``run_multi_size_suite``
    / ``table4_measured`` (figures 9-15 and Table 4) are pure cache reads.
    Returns ``{"cells": total, "cached": served_from_cache}``.
    """
    from repro.experiments.multi_size import multi_size_configs
    from repro.experiments.single_size import single_size_configs

    scale = scale or active_scale()
    cells: List[SimConfig] = []
    if single:
        cells.extend(config for _, config in single_size_configs(scale=scale))
    if multi:
        cells.extend(config for _, config in multi_size_configs(scale=scale))
    jobs = resolve_jobs(jobs)
    progress = GridProgress(
        len(cells), registry=registry, emit=emit, jobs=jobs, label="prefill"
    )
    run_grid(
        cells, jobs=jobs, use_cache=use_cache, progress=progress
    )
    return {"cells": progress.total, "cached": progress.cached}
