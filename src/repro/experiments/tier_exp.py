"""The tiered-storage ablation: miss cost vs RAM:flash ratio per policy.

The question the tier answers is "how much recomputation does a flash
second tier save, and does a cost-aware RAM policy make the tier more or
less useful?".  One suite run sweeps the tier-capacity-to-RAM ratio over a
set of replacement policies on the baseline single-size workload; ratio 0
is the plain single-tier store every other cell is normalized against.

The suite rides the same fingerprint cache and parallel grid runner as the
figure suites (tier cells add ``tier_bytes`` to the fingerprint, so they
never collide with the single-tier studies).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.cache import run_cached
from repro.experiments.report import render_table
from repro.experiments.scales import ExperimentScale, active_scale
from repro.sim.driver import SimConfig
from repro.sim.results import SimResult
from repro.workloads.ycsb import SINGLE_SIZE_WORKLOADS

TierKey = Tuple[str, float]  # (policy, tier_ratio)

#: tier capacity as a multiple of RAM capacity; 0.0 = tier disabled
DEFAULT_RATIOS = (0.0, 0.5, 1.0, 2.0, 4.0)

DEFAULT_TIER_POLICIES = ("lru", "gd-wheel", "gd-pq")


def tier_ratio_configs(
    scale: Optional[ExperimentScale] = None,
    policies: Sequence[str] = DEFAULT_TIER_POLICIES,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    workload_id: str = "1",
) -> List[Tuple[TierKey, SimConfig]]:
    """The ablation's cells as ((policy, ratio), config) pairs.

    Every cell shares the workload, universe, and request stream; only the
    RAM policy and the flash budget vary, so differences are attributable
    to the tier alone.
    """
    scale = scale or active_scale()
    spec = SINGLE_SIZE_WORKLOADS[workload_id]
    cells: List[Tuple[TierKey, SimConfig]] = []
    for policy in policies:
        for ratio in ratios:
            config = SimConfig(
                spec=spec,
                policy=policy,
                rebalancer="none",
                memory_limit=scale.memory_limit,
                slab_size=scale.slab_size,
                num_requests=scale.num_requests,
                seed=scale.seed,
                tier_bytes=int(scale.memory_limit * ratio),
            )
            cells.append(((policy, ratio), config))
    return cells


def run_tier_ratio_suite(
    scale: Optional[ExperimentScale] = None,
    policies: Sequence[str] = DEFAULT_TIER_POLICIES,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    workload_id: str = "1",
    use_cache: bool = True,
    jobs: Optional[int] = None,
) -> Dict[TierKey, SimResult]:
    """Run (or load) every (policy, ratio) cell of the tier ablation."""
    cells = tier_ratio_configs(
        scale=scale, policies=policies, ratios=ratios, workload_id=workload_id
    )
    if jobs is not None and jobs > 1:
        from repro.experiments.parallel import run_grid

        values = run_grid(
            [config for _, config in cells], jobs=jobs, use_cache=use_cache
        )
    else:
        values = [run_cached(config, use_cache=use_cache) for _, config in cells]
    return {key: result for (key, _), result in zip(cells, values)}


def tier_ratio_rows(results: Dict[TierKey, SimResult]) -> List[list]:
    """One row per cell: cost saved vs the same policy's ratio-0 run."""
    rows: List[list] = []
    for (policy, ratio), result in sorted(results.items()):
        base = results.get((policy, 0.0))
        base_cost = base.total_recomputation_cost if base else 0
        cost = result.total_recomputation_cost
        saved_pct = (
            100.0 * (base_cost - cost) / base_cost if base_cost else 0.0
        )
        tier = result.tier_stats
        rows.append(
            [
                policy,
                f"{ratio:g}x",
                result.hit_rate * 100,
                tier.get("hits", 0),
                tier.get("spills", 0),
                cost,
                saved_pct,
            ]
        )
    return rows


def tier_ratio_report(results: Dict[TierKey, SimResult]) -> str:
    return render_table(
        [
            "policy",
            "tier:RAM",
            "hit %",
            "tier hits",
            "spills",
            "total cost",
            "cost saved %",
        ],
        tier_ratio_rows(results),
        title=(
            "Tier ablation: recomputation cost vs flash:RAM ratio "
            "(baseline workload; saved % vs the policy's own ratio-0 run)"
        ),
    )
