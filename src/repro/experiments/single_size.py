"""The single-size workload study (Figures 9-12 and the hit-rate claim).

One suite run covers Table 2's ten workloads under LRU and GD-Wheel (plus
any extra policies requested); Figures 9, 10, 11, and 12 are different
projections of the same runs, so the suite is cached on disk and shared.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.cache import run_cached
from repro.experiments.report import render_series, render_table
from repro.experiments.scales import ExperimentScale, active_scale
from repro.sim.driver import SimConfig
from repro.sim.metrics import GroupShares, cost_cdf
from repro.sim.results import Comparison, SimResult
from repro.workloads.ycsb import SINGLE_SIZE_WORKLOADS

ResultKey = Tuple[str, str]  # (workload_id, policy)

DEFAULT_POLICIES = ("lru", "gd-wheel")


def single_size_configs(
    scale: Optional[ExperimentScale] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    workload_ids: Optional[Iterable[str]] = None,
) -> List[Tuple[ResultKey, SimConfig]]:
    """The study's cells as ((workload_id, policy), config) pairs, in suite
    order.  Seeds come from the scale preset, so a cell's configuration
    fully determines its result — the parallel runner relies on this."""
    scale = scale or active_scale()
    ids = list(workload_ids) if workload_ids is not None else list(
        SINGLE_SIZE_WORKLOADS
    )
    cells: List[Tuple[ResultKey, SimConfig]] = []
    for wid in ids:
        spec = SINGLE_SIZE_WORKLOADS[wid]
        for policy in policies:
            config = SimConfig(
                spec=spec,
                policy=policy,
                rebalancer="none",
                memory_limit=scale.memory_limit,
                slab_size=scale.slab_size,
                num_requests=scale.num_requests,
                seed=scale.seed,
            )
            cells.append(((wid, policy), config))
    return cells


def run_single_size_suite(
    scale: Optional[ExperimentScale] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    workload_ids: Optional[Iterable[str]] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
) -> Dict[ResultKey, SimResult]:
    """Run (or load) every (workload, policy) cell of the single-size study.

    ``jobs`` > 1 fans cache misses across worker processes (identical
    results, see :mod:`repro.experiments.parallel`); the default runs the
    cells serially in this process.
    """
    cells = single_size_configs(
        scale=scale, policies=policies, workload_ids=workload_ids
    )
    if jobs is not None and jobs > 1:
        from repro.experiments.parallel import run_grid

        values = run_grid(
            [config for _, config in cells], jobs=jobs, use_cache=use_cache
        )
    else:
        values = [run_cached(config, use_cache=use_cache) for _, config in cells]
    return {key: result for (key, _), result in zip(cells, values)}


def comparisons(
    results: Dict[ResultKey, SimResult],
    baseline: str = "lru",
    candidate: str = "gd-wheel",
) -> List[Comparison]:
    out = []
    for (wid, policy), result in sorted(results.items(), key=lambda kv: int(kv[0][0])):
        if policy != baseline:
            continue
        other = results.get((wid, candidate))
        if other is None:
            continue
        out.append(
            Comparison(
                workload_id=wid,
                workload_name=result.workload_name,
                baseline=result,
                candidate=other,
            )
        )
    return out


# -- Figure 9: average application read access latency -----------------------------


def fig9_rows(comps: List[Comparison]) -> List[list]:
    return [
        [
            c.workload_id,
            c.workload_name,
            c.baseline.average_latency_us,
            c.candidate.average_latency_us,
            c.latency_reduction_pct,
        ]
        for c in comps
    ]


def fig9_report(comps: List[Comparison]) -> str:
    return render_table(
        ["wl", "name", "LRU avg (us)", "GD-Wheel avg (us)", "reduction %"],
        fig9_rows(comps),
        title="Figure 9: average application read access latency (single size)",
    )


# -- Figure 10: normalized total recomputation cost ---------------------------------


def fig10_rows(comps: List[Comparison]) -> List[list]:
    return [
        [
            c.workload_id,
            c.workload_name,
            100.0,
            c.normalized_cost,
            c.cost_reduction_pct,
        ]
        for c in comps
    ]


def fig10_report(comps: List[Comparison]) -> str:
    return render_table(
        ["wl", "name", "LRU (norm)", "GD-Wheel (norm)", "reduction %"],
        fig10_rows(comps),
        title="Figure 10: normalized total recomputation cost (single size)",
    )


# -- Figure 11: 99th percentile read access latency ---------------------------------


def fig11_rows(comps: List[Comparison]) -> List[list]:
    return [
        [
            c.workload_id,
            c.workload_name,
            c.baseline.p99_latency_us,
            c.candidate.p99_latency_us,
            c.tail_reduction_pct,
        ]
        for c in comps
    ]


def fig11_report(comps: List[Comparison]) -> str:
    return render_table(
        ["wl", "name", "LRU p99 (us)", "GD-Wheel p99 (us)", "reduction %"],
        fig11_rows(comps),
        title="Figure 11: 99th percentile read access latency (single size)",
    )


# -- Figure 12: CDF of miss recomputation costs (baseline workload) ------------------

BASELINE_BANDS = ((10, 30), (120, 180), (350, 450))


def fig12_cdfs(results: Dict[ResultKey, SimResult], workload_id: str = "1"):
    """(policy -> CDF series) for the baseline workload's miss costs."""
    out = {}
    for (wid, policy), result in results.items():
        if wid == workload_id:
            out[policy] = cost_cdf(result.miss_costs)
    return out


def fig12_group_shares(
    results: Dict[ResultKey, SimResult], workload_id: str = "1"
) -> Dict[str, GroupShares]:
    out = {}
    for (wid, policy), result in results.items():
        if wid == workload_id:
            out[policy] = GroupShares.from_misses(result.miss_costs, BASELINE_BANDS)
    return out


def fig12_report(results: Dict[ResultKey, SimResult], workload_id: str = "1") -> str:
    blocks = []
    for policy, series in sorted(fig12_cdfs(results, workload_id).items()):
        blocks.append(
            render_series(
                series,
                title=f"Figure 12: CDF of miss recomputation costs - {policy}",
                x_label="cost",
                y_label="CDF",
            )
        )
    shares = fig12_group_shares(results, workload_id)
    rows = [
        [policy, *[f"{s * 100:.1f}%" for s in gs.shares]]
        for policy, gs in sorted(shares.items())
    ]
    blocks.append(
        render_table(
            ["policy", "low band", "mid band", "high band"],
            rows,
            title="miss share per cost band",
        )
    )
    return "\n\n".join(blocks)


# -- the Section 6.4.1 hit-rate parity claim ---------------------------------------


def hit_rate_rows(comps: List[Comparison]) -> List[list]:
    return [
        [
            c.workload_id,
            c.workload_name,
            c.baseline.hit_rate * 100,
            c.candidate.hit_rate * 100,
            c.hit_rate_delta_pct,
        ]
        for c in comps
    ]


def hit_rate_report(comps: List[Comparison]) -> str:
    return render_table(
        ["wl", "name", "LRU hit %", "GD-Wheel hit %", "|delta| pp"],
        hit_rate_rows(comps),
        title="GET hit rate parity (paper: differs by no more than 0.18%)",
    )
