"""Figures 7 and 8 — request latency and server throughput vs cache size.

The paper's effect is CPU-side: GD-PQ's O(log n) priority queue makes SET
latency grow with the cache size and depresses throughput by 9.5-12.5%,
while LRU and GD-Wheel stay flat (GD-Wheel pays a roughly constant ~2%).

The reproduction measures real wall-clock per-operation times of the three
replacement structures at resident sizes standing in for the paper's
10/15/20/25 GB sweep, then maps them through
:class:`repro.sim.opcost.RequestLatencyModel` to produce the same rows:
average GET latency (flat by construction — the policy update happens after
the response), average SET latency, and attainable throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import GDPQPolicy, GDWheelPolicy, LRUPolicy
from repro.experiments.report import render_table
from repro.sim.opcost import OpCostSample, RequestLatencyModel, sweep_opcost

#: Resident item counts standing in for the paper's cache-size sweep.
#: (25 GB of 300-byte items is ~80M; Python timing needs smaller, but the
#: log-vs-constant scaling shape is driven by the size *ratio*, so a wide
#: 64x span makes GD-PQ's log-n growth visible above timing noise.)
DEFAULT_SIZES: Tuple[int, ...] = (10_000, 40_000, 160_000, 640_000)

#: labels mirroring the paper's x axis
SIZE_LABELS = ("10GB", "15GB", "20GB", "25GB")

POLICY_FACTORIES = (
    ("lru", LRUPolicy),
    ("gd-wheel", lambda: GDWheelPolicy(num_queues=256, num_wheels=2)),
    ("gd-pq", GDPQPolicy),
)


def run_opcost_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    ops: int = 20_000,
    seed: int = 0,
) -> List[OpCostSample]:
    return sweep_opcost(POLICY_FACTORIES, sizes, ops=ops, seed=seed)


def _by_cell(samples: List[OpCostSample]) -> Dict[Tuple[str, int], OpCostSample]:
    return {(s.policy, s.resident_items): s for s in samples}


def fig7_rows(
    samples: List[OpCostSample],
    model: Optional[RequestLatencyModel] = None,
) -> List[list]:
    model = model or RequestLatencyModel()
    cells = _by_cell(samples)
    sizes = sorted({s.resident_items for s in samples})
    rows = []
    for policy, _ in POLICY_FACTORIES:
        for idx, size in enumerate(sizes):
            sample = cells[(policy, size)]
            label = SIZE_LABELS[idx] if idx < len(SIZE_LABELS) else str(size)
            rows.append(
                [
                    policy,
                    label,
                    size,
                    model.get_latency_us(sample),
                    model.set_latency_us(sample),
                    sample.evict_insert_seconds * 1e6,
                ]
            )
    return rows


def fig7_report(samples: List[OpCostSample]) -> str:
    return render_table(
        ["policy", "cache", "items", "GET (us)", "SET (us)", "policy work (us)"],
        fig7_rows(samples),
        title="Figure 7: average GET/SET request latencies vs cache size",
    )


def fig8_rows(
    samples: List[OpCostSample],
    model: Optional[RequestLatencyModel] = None,
) -> List[list]:
    model = model or RequestLatencyModel()
    cells = _by_cell(samples)
    sizes = sorted({s.resident_items for s in samples})
    lru_tp = {
        size: model.throughput_ops(cells[("lru", size)]) for size in sizes
    }
    rows = []
    for policy, _ in POLICY_FACTORIES:
        for idx, size in enumerate(sizes):
            sample = cells[(policy, size)]
            tp = model.throughput_ops(sample)
            label = SIZE_LABELS[idx] if idx < len(SIZE_LABELS) else str(size)
            rows.append(
                [
                    policy,
                    label,
                    size,
                    tp,
                    100.0 * (1.0 - tp / lru_tp[size]),
                ]
            )
    return rows


def fig8_report(samples: List[OpCostSample]) -> str:
    return render_table(
        ["policy", "cache", "items", "throughput (ops/s)", "loss vs LRU %"],
        fig8_rows(samples),
        title="Figure 8: overall throughput vs cache size",
    )
