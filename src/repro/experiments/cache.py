"""On-disk memoization of simulation runs.

Figures 9, 10, 11, and 12 all read the same 20 single-size runs, and the
Table 4 summary reads everything; caching by configuration fingerprint lets
each benchmark module regenerate its own figure without re-simulating the
shared suite.  Results live under ``.repro-results/`` next to the working
directory (override with ``REPRO_CACHE_DIR``); delete the directory to force
fresh runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Optional

import numpy as np

from repro.sim.driver import SimConfig
from repro.sim.results import SimResult


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-results"))


def config_fingerprint(config: SimConfig) -> str:
    """A stable hash of everything that affects a run's outcome."""
    payload = {
        "workload_id": config.spec.workload_id,
        "workload_name": config.spec.name,
        "multi_size": config.spec.multi_size,
        "costs": config.spec.costs.name,
        "sizes": config.spec.sizes.name,
        "key_size": config.spec.key_size,
        "theta": config.spec.theta,
        "policy": config.policy,
        "rebalancer": config.rebalancer,
        "memory_limit": config.memory_limit,
        "slab_size": config.slab_size,
        "num_requests": config.num_requests,
        "num_keys": config.num_keys,
        "target_hit_rate": config.target_hit_rate,
        "seed": config.seed,
        "request_interval_s": config.request_interval_s,
        "policy_kwargs": sorted(config.policy_kwargs.items()),
        "rebalancer_kwargs": sorted(config.rebalancer_kwargs.items()),
        "version": 2,  # bump to invalidate after semantic changes
    }
    if config.tier_bytes:
        # added only when enabled so pre-tier cache entries stay valid
        payload["tier_bytes"] = config.tier_bytes
        payload["tier_segment_bytes"] = config.tier_segment_bytes
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


def _write_npz_atomic(path: Path, miss_costs) -> None:
    """Write the npz half to a temp file, then rename into place."""
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        # open() first so numpy can't append a second suffix to the temp name
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, miss_costs=miss_costs)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Write the json half to a temp file, then rename into place."""
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def save_result(config: SimConfig, result: SimResult) -> None:
    """Persist one result as a json + npz pair, crash/concurrency-safely.

    Both halves are written to process-unique temp files and renamed into
    place with :func:`os.replace`, so a reader (e.g. a parallel worker
    sharing ``REPRO_CACHE_DIR``) never observes a partially written file.
    The npz half lands first: :func:`load_result` keys its existence check
    on the json half, so a crash between the two renames leaves a pair
    that is simply treated as absent and rewritten on the next run.
    """
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    stem = directory / config_fingerprint(config)
    _write_npz_atomic(stem.with_suffix(".npz"), result.miss_costs)
    _write_json_atomic(stem.with_suffix(".json"), result.to_dict())


def load_result(config: SimConfig) -> Optional[SimResult]:
    """Read back a cached result, or ``None`` if absent or unreadable.

    Tolerant of torn state left by a crashed writer (missing halves,
    truncated json, corrupt npz): any such pair reads as a cache miss and
    will be overwritten by the next :func:`save_result`.
    """
    stem = cache_dir() / config_fingerprint(config)
    json_path = stem.with_suffix(".json")
    npz_path = stem.with_suffix(".npz")
    if not json_path.exists() or not npz_path.exists():
        return None
    try:
        with open(json_path) as fh:
            data = json.load(fh)
        with np.load(npz_path) as arrays:
            miss_costs = arrays["miss_costs"]
    except (OSError, ValueError, KeyError, json.JSONDecodeError, zipfile.BadZipFile):
        return None
    return SimResult(
        workload_id=data["workload_id"],
        workload_name=data["workload_name"],
        policy=data["policy"],
        rebalancer=data["rebalancer"],
        num_keys=data["num_keys"],
        num_requests=data["num_requests"],
        capacity_items=data["capacity_items"],
        hit_rate=data["hit_rate"],
        total_recomputation_cost=data["total_recomputation_cost"],
        average_latency_us=data["average_latency_us"],
        p99_latency_us=data["p99_latency_us"],
        miss_costs=miss_costs,
        store_stats=data["store_stats"],
        wall_seconds=data["wall_seconds"],
        tier_stats=data.get("tier_stats", {}),
    )


def run_cached(config: SimConfig, use_cache: bool = True) -> SimResult:
    """Run a simulation, reading/writing the on-disk cache."""
    from repro.sim.driver import run_simulation

    if use_cache:
        cached = load_result(config)
        if cached is not None:
            return cached
    result = run_simulation(config)
    if use_cache:
        save_result(config, result)
    return result
