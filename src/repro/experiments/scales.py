"""Experiment scale presets.

The paper runs a 25 GB Memcached fed 100 M requests over a real network; the
reproduction runs a discrete simulation, so the scale is configurable.  The
``DEFAULT`` preset keeps a full figure suite within a few minutes on a
laptop while leaving enough resident items (~40k) for the policies'
differences to express; ``SMALL`` is for the test suite; ``LARGE`` is a
closer-to-paper overnight setting.

Set ``REPRO_SCALE=small|default|large`` to steer the benchmark harness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    name: str
    memory_limit: int
    slab_size: int
    num_requests: int
    seed: int = 0


SMALL = ExperimentScale(
    name="small",
    memory_limit=4 * 1024 * 1024,
    slab_size=64 * 1024,
    num_requests=30_000,
)

DEFAULT = ExperimentScale(
    name="default",
    memory_limit=16 * 1024 * 1024,
    slab_size=64 * 1024,
    num_requests=200_000,
)

LARGE = ExperimentScale(
    name="large",
    memory_limit=64 * 1024 * 1024,
    slab_size=256 * 1024,
    num_requests=1_000_000,
)

_SCALES = {"small": SMALL, "default": DEFAULT, "large": LARGE}


def active_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (default: ``default``)."""
    name = os.environ.get("REPRO_SCALE", "default").lower()
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r} unknown; choose from {sorted(_SCALES)}"
        ) from None
