"""Command-line entry point: regenerate any paper table or figure.

Usage (installed as ``gdwheel-repro`` or via ``python -m repro.experiments.cli``)::

    gdwheel-repro table1           # motivation table
    gdwheel-repro fig7 fig8        # policy op-cost sweep
    gdwheel-repro fig9 fig10 fig11 fig12 hitrate
    gdwheel-repro fig13 fig14 fig15
    gdwheel-repro table4           # the summary
    gdwheel-repro tier             # tiered-storage ratio ablation
    gdwheel-repro all              # everything

Operational views (PR 7 observability) ride the same entry point::

    gdwheel-repro trace show DIR [--trace HEX]   # one trace, hop by hop
    gdwheel-repro trace top DIR [--count N]      # slowest traces table
    gdwheel-repro top HOST:PORT [...] [--seconds S]  # live cluster health

Scale is taken from ``REPRO_SCALE`` (small / default / large); results are
cached under ``.repro-results/``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from repro.experiments import motivation, multi_size, opcost_exp, single_size, summary
from repro.experiments.scales import active_scale

SINGLE_TARGETS = {"fig9", "fig10", "fig11", "fig12", "hitrate"}
MULTI_TARGETS = {"fig13", "fig14", "fig15", "slabmoves"}
OPCOST_TARGETS = {"fig7", "fig8"}
ALL_TARGETS = (
    ["table1"]
    + sorted(OPCOST_TARGETS)
    + sorted(SINGLE_TARGETS)
    + sorted(MULTI_TARGETS)
    + ["table4", "pooling", "tier"]
)


def _trace_main(argv: List[str]) -> int:
    """``gdwheel-repro trace show|top DIR`` — offline span-file views."""
    from repro.obs.tracecollect import (
        TraceTree,
        group_traces,
        load_span_dir,
        render_trace,
        render_trace_top,
        slowest_traces,
    )

    parser = argparse.ArgumentParser(
        prog="gdwheel-repro trace",
        description="Inspect exported trace spans (*.jsonl span files).",
    )
    parser.add_argument("action", choices=["show", "top"],
                        help="show one trace, or rank the slowest")
    parser.add_argument("directory",
                        help="directory of span exports (trace_dir)")
    parser.add_argument("--trace", metavar="HEX",
                        help="show: a specific 16-hex-digit trace id "
                             "(default: the slowest trace)")
    parser.add_argument("--count", type=int, default=10, metavar="N",
                        help="top: how many traces to rank (default 10)")
    args = parser.parse_args(argv)
    spans = load_span_dir(args.directory)
    if not spans:
        print(f"no spans under {args.directory}")
        return 1
    traces = group_traces(spans)
    if args.action == "top":
        print(render_trace_top(traces, count=args.count))
        return 0
    if args.trace is not None:
        trace_id = int(args.trace, 16)
        if trace_id not in traces:
            print(f"trace {args.trace} not found "
                  f"({len(traces)} traces available)")
            return 1
        tree = TraceTree(traces[trace_id])
    else:
        tree = slowest_traces(traces, count=1)[0]
    print(render_trace(tree))
    return 0


def _top_main(argv: List[str]) -> int:
    """``gdwheel-repro top HOST:PORT [...]`` — one live cluster frame."""
    from repro.obs.top import top_table
    from repro.protocol.client import CostAwareClient

    parser = argparse.ArgumentParser(
        prog="gdwheel-repro top",
        description="Live cluster health table over running servers.",
    )
    parser.add_argument("endpoints", nargs="+", metavar="HOST:PORT",
                        help="one text-protocol server endpoint per shard")
    parser.add_argument("--seconds", type=float, default=1.0,
                        help="sampling window for rates (default 1.0)")
    args = parser.parse_args(argv)
    endpoints = []
    for endpoint in args.endpoints:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            parser.error(f"malformed endpoint {endpoint!r} (want HOST:PORT)")
        endpoints.append((endpoint, host, int(port)))

    def stats_fetch(subcommand: str):
        out = {}
        for name, host, port in endpoints:
            client = CostAwareClient.tcp(host, port)
            try:
                out[name] = client.stats(subcommand)
            finally:
                client.close()
        return out

    print(top_table(stats_fetch, seconds=args.seconds))
    return 0


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # operational subcommands dispatch before the figure/table argparse so
    # `trace`/`top` never collide with (or bloat) the artefact choices
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="gdwheel-repro",
        description="Regenerate the GD-Wheel paper's tables and figures.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=ALL_TARGETS + ["all"],
        help="which artefacts to regenerate",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also export machine-readable CSV tables into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=os.cpu_count() or 1,
        help="worker processes for simulation cells (default: all CPUs)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(
            f"--jobs must be a positive integer, got {args.jobs} "
            "(use --jobs 1 for serial execution)"
        )
    targets = set(args.targets)
    if "all" in targets:
        targets = set(ALL_TARGETS)
    use_cache = not args.no_cache
    jobs = args.jobs
    scale = active_scale()
    print(f"scale: {scale.name} ({scale.memory_limit // (1024 * 1024)} MB cache, "
          f"{scale.num_requests:,} requests, jobs={jobs})\n")

    # One parallel prefill covers every simulation-backed target (fig9-15,
    # table4); the suite calls below then read pure cache hits.  Progress
    # goes to stderr so piped table output stays clean.
    sim_targets = targets & (SINGLE_TARGETS | MULTI_TARGETS | {"table4"})
    if sim_targets and jobs > 1 and use_cache:
        from repro.experiments.parallel import prefill_suites

        filled = prefill_suites(
            scale=scale,
            jobs=jobs,
            single=bool(targets & (SINGLE_TARGETS | {"table4"})),
            multi=bool(targets & (MULTI_TARGETS | {"table4"})),
            emit=lambda line: print(line, file=sys.stderr),
        )
        print(
            f"prefill: {filled['cells']} cells "
            f"({filled['cached']} already cached, jobs={jobs})",
            file=sys.stderr,
        )

    if "table1" in targets:
        print(motivation.table1_report())
        print()
        print(motivation.band_ratio_report())
        print()

    if targets & OPCOST_TARGETS:
        samples = opcost_exp.run_opcost_sweep()
        if "fig7" in targets:
            print(opcost_exp.fig7_report(samples))
            print()
        if "fig8" in targets:
            print(opcost_exp.fig8_report(samples))
            print()

    if targets & SINGLE_TARGETS:
        results = single_size.run_single_size_suite(
            scale=scale, use_cache=use_cache, jobs=jobs
        )
        comps = single_size.comparisons(results)
        if args.csv:
            from repro.experiments.export import export_cdf, export_single_size

            export_single_size(results, args.csv)
            export_cdf(results, args.csv)
        if "fig9" in targets:
            print(single_size.fig9_report(comps))
            print()
        if "fig10" in targets:
            print(single_size.fig10_report(comps))
            print()
        if "fig11" in targets:
            print(single_size.fig11_report(comps))
            print()
        if "fig12" in targets:
            print(single_size.fig12_report(results))
            print()
        if "hitrate" in targets:
            print(single_size.hit_rate_report(comps))
            print()

    if targets & MULTI_TARGETS:
        results = multi_size.run_multi_size_suite(
            scale=scale, use_cache=use_cache, jobs=jobs
        )
        if args.csv:
            from repro.experiments.export import export_multi_size

            export_multi_size(results, args.csv)
        if "fig13" in targets:
            print(multi_size.fig13_report(results))
            print()
        if "fig14" in targets:
            print(multi_size.fig14_report(results))
            print()
        if "fig15" in targets:
            print(multi_size.fig15_report(results))
            print()
        if "slabmoves" in targets:
            print(multi_size.slab_moves_report(results))
            print()

    if "table4" in targets:
        measured = summary.table4_measured(
            scale=scale, use_cache=use_cache, jobs=jobs
        )
        print(summary.table4_report(measured))
        print()

    if "pooling" in targets:
        from repro.cluster import pooling_report, run_pooling_comparison

        print(pooling_report(run_pooling_comparison()))
        print()

    if "tier" in targets:
        from repro.experiments import tier_exp

        results = tier_exp.run_tier_ratio_suite(
            scale=scale, use_cache=use_cache, jobs=jobs
        )
        print(tier_exp.tier_ratio_report(results))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
