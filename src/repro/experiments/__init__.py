"""Experiment runners: one module per paper table/figure family.

* :mod:`repro.experiments.motivation` — Table 1
* :mod:`repro.experiments.opcost_exp` — Figures 7 and 8
* :mod:`repro.experiments.single_size` — Figures 9-12 and hit-rate parity
* :mod:`repro.experiments.multi_size` — Figures 13-15
* :mod:`repro.experiments.summary` — Table 4
* :mod:`repro.experiments.tier_exp` — the tiered-storage ratio ablation
* :mod:`repro.experiments.parallel` — multiprocessing grid runner
* :mod:`repro.experiments.cli` — the ``gdwheel-repro`` command
"""

from repro.experiments.parallel import (
    GridProgress,
    default_jobs,
    prefill_suites,
    resolve_jobs,
    run_grid,
)
from repro.experiments.scales import DEFAULT, LARGE, SMALL, ExperimentScale, active_scale

__all__ = [
    "DEFAULT",
    "LARGE",
    "SMALL",
    "ExperimentScale",
    "GridProgress",
    "active_scale",
    "default_jobs",
    "prefill_suites",
    "resolve_jobs",
    "run_grid",
]
