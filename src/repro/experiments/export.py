"""CSV export of experiment tables.

Every figure report can also be written as CSV for plotting outside the
terminal (the paper's figures are bar charts and CDFs; ``gdwheel-repro
--csv`` drops machine-readable rows next to the text reports).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write one table; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def export_single_size(results, directory: Union[str, Path]) -> list:
    """CSV files for Figures 9-11 plus hit rates from one suite run."""
    from repro.experiments.single_size import (
        comparisons,
        fig9_rows,
        fig10_rows,
        fig11_rows,
        hit_rate_rows,
    )

    directory = Path(directory)
    comps = comparisons(results)
    written = []
    for name, headers, rows in (
        ("fig9", ["workload", "name", "lru_avg_us", "gdwheel_avg_us",
                  "reduction_pct"], fig9_rows(comps)),
        ("fig10", ["workload", "name", "lru_norm", "gdwheel_norm",
                   "reduction_pct"], fig10_rows(comps)),
        ("fig11", ["workload", "name", "lru_p99_us", "gdwheel_p99_us",
                   "reduction_pct"], fig11_rows(comps)),
        ("hitrate", ["workload", "name", "lru_hit_pct", "gdwheel_hit_pct",
                     "delta_pp"], hit_rate_rows(comps)),
    ):
        written.append(write_csv(directory / f"{name}.csv", headers, rows))
    return written


def export_cdf(results, directory: Union[str, Path], workload_id: str = "1") -> list:
    """Figure 12's CDF series, one CSV per policy."""
    from repro.experiments.single_size import fig12_cdfs

    directory = Path(directory)
    written = []
    for policy, series in sorted(fig12_cdfs(results, workload_id).items()):
        written.append(
            write_csv(
                directory / f"fig12_{policy}.csv",
                ["cost", "cdf"],
                series,
            )
        )
    return written


def export_multi_size(results, directory: Union[str, Path]) -> list:
    """CSV files for Figures 13-15 from one multi-size suite run."""
    from repro.experiments.multi_size import fig13_rows, fig14_rows, fig15_rows

    directory = Path(directory)
    config_cols = ["lru_orig", "gdwheel_orig", "gdwheel_new"]
    written = []
    for name, metric, rows in (
        ("fig13", "avg_us", fig13_rows(results)),
        ("fig14", "norm_cost", fig14_rows(results)),
        ("fig15", "p99_us", fig15_rows(results)),
    ):
        headers = ["workload", "name"] + [
            f"{c}_{metric}" for c in config_cols
        ] + ["new_vs_lru_pct"]
        written.append(write_csv(directory / f"{name}.csv", headers, rows))
    return written
