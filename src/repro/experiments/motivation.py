"""Table 1 — the motivation: cache-miss cost variation in RUBiS and TPC-W.

The paper's Table 1 categorizes Bouchenak et al.'s measured extra response
times on cache misses into low/mid/high bands with a ~1:7.5:20 cost ratio,
arguing (a) variation is real, and (b) the range is small enough to map
onto limited integer costs.  This module regenerates the table and checks
both claims against the workload definitions used in the experiments.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.report import render_table
from repro.workloads.ycsb import (
    TABLE1_MOTIVATION,
    motivation_cost_ratio,
)


def table1_rows() -> List[list]:
    rows = []
    for benchmark, bands in TABLE1_MOTIVATION.items():
        for band in bands:
            span = (
                f"{band.low_ms} ms"
                if band.low_ms == band.high_ms
                else f"{band.low_ms} - {band.high_ms} ms"
            )
            rows.append([benchmark, band.category, span, f"{band.proportion * 100:.0f}%"])
    return rows


def table1_report() -> str:
    return render_table(
        ["benchmark", "band", "extra response time", "proportion"],
        table1_rows(),
        title="Table 1: extra response times on cache misses",
    )


def cost_ratios() -> Dict[str, float]:
    """max/min miss-cost ratio per benchmark (the paper cites ~20x)."""
    return {
        name: motivation_cost_ratio(bands)
        for name, bands in TABLE1_MOTIVATION.items()
    }


def band_ratio_report() -> str:
    rows = [[name, f"{ratio:.1f}x"] for name, ratio in cost_ratios().items()]
    return render_table(
        ["benchmark", "max/min miss cost"],
        rows,
        title="Cost spread (paper: 'maximum difference is only about a factor of twenty')",
    )
