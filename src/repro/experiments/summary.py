"""Table 4 — summary of avg/max reductions across both studies."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.experiments.multi_size import CONFIGURATIONS, run_multi_size_suite
from repro.experiments.report import render_table
from repro.experiments.scales import ExperimentScale
from repro.experiments.single_size import comparisons, run_single_size_suite
from repro.sim.metrics import reduction_percent

#: The paper's Table 4, for side-by-side comparison in reports.
PAPER_TABLE4 = {
    ("single", "avg"): {"avg_lat": 33, "tail_lat": 69, "cost": 74},
    ("single", "max"): {"avg_lat": 53, "tail_lat": 85, "cost": 90},
    ("multiple", "avg"): {"avg_lat": 37, "tail_lat": 73, "cost": 68},
    ("multiple", "max"): {"avg_lat": 56, "tail_lat": 83, "cost": 79},
}


def table4_measured(
    scale: Optional[ExperimentScale] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
) -> Dict:
    """Compute the reproduction's Table 4 from both suites.

    ``jobs`` > 1 parallelizes any cells not already cached (one
    ``prefill_suites`` call makes this a pure cache read).
    """
    single = run_single_size_suite(scale=scale, use_cache=use_cache, jobs=jobs)
    multi = run_multi_size_suite(scale=scale, use_cache=use_cache, jobs=jobs)

    single_comps = comparisons(single)
    s_lat = [c.latency_reduction_pct for c in single_comps]
    s_tail = [c.tail_reduction_pct for c in single_comps]
    s_cost = [c.cost_reduction_pct for c in single_comps]

    m_lat: List[float] = []
    m_tail: List[float] = []
    m_cost: List[float] = []
    for wid in sorted({k[0] for k in multi}):
        base = multi[(wid, CONFIGURATIONS[0][0])]
        best = multi[(wid, "GD-Wheel+New")]
        m_lat.append(
            reduction_percent(base.average_latency_us, best.average_latency_us)
        )
        m_tail.append(reduction_percent(base.p99_latency_us, best.p99_latency_us))
        m_cost.append(
            reduction_percent(
                base.total_recomputation_cost, best.total_recomputation_cost
            )
        )

    def agg(values: List[float]) -> Dict[str, float]:
        return {"avg": float(np.mean(values)), "max": float(np.max(values))}

    return {
        "single": {"avg_lat": agg(s_lat), "tail_lat": agg(s_tail), "cost": agg(s_cost)},
        "multiple": {"avg_lat": agg(m_lat), "tail_lat": agg(m_tail), "cost": agg(m_cost)},
    }


def table4_report(measured: Dict) -> str:
    rows = []
    for study in ("single", "multiple"):
        for stat in ("avg", "max"):
            paper = PAPER_TABLE4[(study, stat)]
            got = measured[study]
            rows.append(
                [
                    f"{study} {stat}",
                    f"{got['avg_lat'][stat]:.0f}% (paper {paper['avg_lat']}%)",
                    f"{got['tail_lat'][stat]:.0f}% (paper {paper['tail_lat']}%)",
                    f"{got['cost'][stat]:.0f}% (paper {paper['cost']}%)",
                ]
            )
    return render_table(
        ["reduction", "avg read latency", "tail read latency", "recomputation cost"],
        rows,
        title="Table 4: results summary, measured vs paper",
    )
