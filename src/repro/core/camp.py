"""CAMP — Cost Adaptive Multi-queue eviction Policy (Ghandeharizadeh et al.).

CAMP (Middleware'14) is the closest related work the paper compares against
conceptually (Section 7): it *approximates* GreedyDual-Size for key-value
stores.  Key-value pairs are grouped into LRU queues by their cost-to-size
ratio *rounded to a fixed precision*, so the number of distinct queues is
bounded; a small heap over the queue heads finds the global minimum-priority
item in O(log #queues).

Rounding keeps the top ``precision`` significant bits of the integer ratio:
``round_ratio(r) = (r >> s) << s`` where ``s = bit_length(r) - precision``
(0 when the ratio is already short).  Because the priority of successive
entries in one queue is non-decreasing (the global inflation value L only
grows and the rounded ratio is fixed per queue), only queue heads can be the
global minimum — that is CAMP's core observation.

Unlike GD-Wheel, CAMP's decisions only approximate GreedyDual; the ablation
bench shows where the approximation costs it.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional

from repro.core.intrusive import IntrusiveList
from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy


def round_ratio(ratio: int, precision: int) -> int:
    """Keep the top ``precision`` significant bits of ``ratio``."""
    if ratio <= 0:
        return 0
    shift = max(ratio.bit_length() - precision, 0)
    return (ratio >> shift) << shift


class _CampQueue:
    """One LRU queue of entries sharing a rounded cost/size ratio."""

    __slots__ = ("ratio", "items", "heap_slot")

    def __init__(self, ratio: int) -> None:
        self.ratio = ratio
        self.items = IntrusiveList()
        # Lazy heap slot: [head_priority, tiebreak_seq, queue-or-None]
        self.heap_slot: Optional[list] = None

    def head_priority(self) -> Optional[int]:
        tail = self.items.tail  # oldest entry = candidate
        if tail is None:
            return None
        entry: PolicyEntry = tail  # type: ignore[assignment]
        return entry.policy_h


class CAMPPolicy(ReplacementPolicy):
    """CAMP: rounded cost/size ratio queues + heap of queue candidates."""

    name = "camp"
    cost_aware = True

    def __init__(self, precision: int = 4, use_size: bool = True) -> None:
        """
        Args:
            precision: significant bits kept when rounding ratios; CAMP's
                paper shows small values (3-5) suffice.
            use_size: divide cost by entry size (CAMP's default).  With
                False, CAMP approximates plain GreedyDual, which makes it
                directly comparable to GD-Wheel in single-slab-class setups.
        """
        if precision < 1:
            raise ValueError("precision must be >= 1")
        self.precision = precision
        self.use_size = use_size
        self._queues: Dict[int, _CampQueue] = {}
        self._heap: List[list] = []
        self._count = 0
        self._inflation = 0
        self._seq = 0  # heap tie-break so queue objects are never compared

    @property
    def inflation(self) -> int:
        return self._inflation

    def _ratio(self, entry: PolicyEntry) -> int:
        raw = entry.cost
        if self.use_size:
            raw = (raw * 1024) // max(entry.size, 1)  # fixed-point cost/size
        return round_ratio(raw, self.precision)

    def _enqueue(self, entry: PolicyEntry) -> None:
        ratio = self._ratio(entry)
        entry.policy_h = self._inflation + ratio
        queue = self._queues.get(ratio)
        if queue is None:
            queue = _CampQueue(ratio)
            self._queues[ratio] = queue
        queue.items.push_head(entry)
        entry.policy_ref = queue
        self._schedule(queue)

    def _schedule(self, queue: _CampQueue) -> None:
        """(Re)insert the queue into the candidate heap keyed by its head."""
        priority = queue.head_priority()
        if priority is None:
            if queue.heap_slot is not None:
                queue.heap_slot[2] = None
                queue.heap_slot = None
            return
        slot = queue.heap_slot
        if slot is not None and slot[0] == priority:
            return  # candidate unchanged
        if slot is not None:
            slot[2] = None  # lazy-delete the stale slot
        self._seq += 1
        fresh = [priority, self._seq, queue]
        queue.heap_slot = fresh
        heapq.heappush(self._heap, fresh)

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        self._enqueue(entry)
        self._count += 1

    def _queue_of(self, entry: PolicyEntry) -> _CampQueue:
        queue = entry.policy_ref
        if not isinstance(queue, _CampQueue):
            raise ValueError("entry is not tracked by this policy")
        return queue

    def touch(self, entry: PolicyEntry) -> None:
        queue = self._queue_of(entry)
        queue.items.remove(entry)
        self._schedule(queue)
        self._enqueue(entry)

    def remove(self, entry: PolicyEntry) -> None:
        queue = self._queue_of(entry)
        queue.items.remove(entry)
        entry.policy_ref = None
        self._count -= 1
        self._schedule(queue)

    def select_victim(self) -> PolicyEntry:
        while self._heap:
            slot = heapq.heappop(self._heap)
            queue = slot[2]
            if queue is None:
                continue
            queue.heap_slot = None
            priority = queue.head_priority()
            if priority is None:
                continue
            if priority != slot[0]:
                # Head changed since scheduling; re-schedule and retry.
                self._schedule(queue)
                continue
            victim: PolicyEntry = queue.items.pop_tail()  # type: ignore[assignment]
            victim.policy_ref = None
            self._count -= 1
            self._inflation = victim.policy_h
            self._schedule(queue)
            return victim
        raise EvictionError("CAMP tracks no entries")

    def __len__(self) -> int:
        return self._count

    def entries(self) -> Iterator[PolicyEntry]:
        for queue in self._queues.values():
            for node in queue.items:
                yield node  # type: ignore[misc]

    def num_queues(self) -> int:
        """Number of live (non-empty) ratio queues."""
        return sum(1 for q in self._queues.values() if q.items)
