"""GD-Wheel — GreedyDual in amortized O(1) via Hierarchical Cost Wheels.

This is the paper's contribution (Section 3.2).  The structure is ``NW``
*cost wheels*, each an array of ``NQ`` queues, arranged like the digits of a
hierarchical timing wheel (Varghese & Lauck).  A wheel at level ``i``
(0-based here) spans ``NQ**i`` priority units per slot.

We track the global inflation value ``L`` of Cao & Irani's formulation
*explicitly* as an absolute integer (``self._inflation``); the clock-hand
positions of the paper are simply its base-``NQ`` digits.  An entry's
priority is ``H = L + cost``; it is stored at

* level  = the number of base-``NQ`` digits of ``H − L`` minus one, and
* slot   = the level-th base-``NQ`` digit of the *absolute* ``H``.

Using absolute digits (rather than ``(cost + hand) mod NQ`` as in the
paper's Algorithm 2) handles digit carries exactly, which is what makes
GD-Wheel's eviction sequence identical to GD-PQ's — the property the paper
asserts ("the replacement decisions made by GD-PQ were exactly the same as
GD-Wheel") and which ``tests/core/test_equivalence.py`` verifies.

Costs must lie in ``0 … NQ**NW − 1``.  The memcached default from Section
4.3 (two wheels of 256 queues) gives 65 535 expressible costs, far beyond
the ~1:20 spread observed in RUBiS/TPC-W.

Complexity: insert and touch are O(NW) = O(1).  An eviction advances the
level-0 hand to the next non-empty queue; hand movement across the whole
structure is bounded by O(NQ·NW) per eviction thanks to the empty-level
skip, and each entry is migrated at most ``NW − 1`` times between touches,
so the amortized per-operation cost is constant for fixed geometry — the
paper's Section 3.2.2 argument.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.intrusive import IntrusiveList
from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy
from repro.obs.trace import CascadeEvent


class CostOutOfRangeError(ValueError):
    """Cost exceeds the range representable by the configured wheels."""


class GDWheelPolicy(ReplacementPolicy):
    """GreedyDual via Hierarchical Cost Wheels (amortized O(1))."""

    name = "gd-wheel"
    cost_aware = True

    def __init__(
        self,
        num_queues: int = 256,
        num_wheels: int = 2,
        clamp_costs: bool = False,
    ) -> None:
        """
        Args:
            num_queues: queues per wheel (``NQ``; paper default 256).
            num_wheels: wheels in the hierarchy (``NW``; paper default 2).
            clamp_costs: if True, costs above the representable maximum are
                clamped to it (and counted in :attr:`clamped_costs`) instead
                of raising :class:`CostOutOfRangeError`.
        """
        if num_queues < 2:
            raise ValueError("num_queues must be >= 2")
        if num_wheels < 1:
            raise ValueError("num_wheels must be >= 1")
        self.num_queues = num_queues
        self.num_wheels = num_wheels
        self.clamp_costs = clamp_costs
        self._pow = [num_queues**i for i in range(num_wheels + 1)]
        #: maximum representable cost
        self.max_cost = self._pow[num_wheels] - 1
        # Precomputed digit table: the wheel level for every expressible
        # cost (the level of H depends only on H - L, which at insert/touch
        # time is exactly the effective cost).  Gated on table size so
        # exotic wide geometries don't allocate gigabytes.
        if self.max_cost < (1 << 20):
            table = []
            level = 0
            for delta in range(self.max_cost + 1):
                while level + 1 < num_wheels and delta >= self._pow[level + 1]:
                    level += 1
                table.append(level)
            self._cost_level: Optional[List[int]] = table
        else:
            self._cost_level = None
        self._wheels: List[List[IntrusiveList]] = [
            [IntrusiveList() for _ in range(num_queues)] for _ in range(num_wheels)
        ]
        self._level_counts = [0] * num_wheels
        self._count = 0
        self._inflation = 0  # absolute position of the level-0 hand == L
        #: observability counters
        self.total_migrations = 0
        self.clamped_costs = 0
        # registry/trace hooks (bound by the store via bind_observability)
        self._trace = None
        self._class_id = None
        self._cascades_counter = None
        self._migrations_counter = None
        self._inflation_gauge = None

    def bind_observability(self, registry, trace, class_id=None) -> None:
        """Register cascade/migration counters and an inflation gauge."""
        if registry is None or not registry.enabled:
            self._trace = trace
            self._class_id = class_id
            return
        labels = {} if class_id is None else {"class_id": class_id}
        self._trace = trace
        self._class_id = class_id
        self._cascades_counter = registry.counter(
            "gdwheel_cascades_total",
            help="hand cascades (higher-level slots migrated down)",
            **labels,
        )
        self._migrations_counter = registry.counter(
            "gdwheel_migrations_total",
            help="entries migrated down a wheel level",
            **labels,
        )
        self._inflation_gauge = registry.gauge(
            "gdwheel_inflation",
            help="current global inflation value L",
            **labels,
        )

    # -- geometry helpers -------------------------------------------------------

    @property
    def inflation(self) -> int:
        """Current global inflation value L (absolute level-0 hand position)."""
        return self._inflation

    def hand(self, level: int) -> int:
        """The paper's clock-hand position for ``level`` (0-based)."""
        return (self._inflation // self._pow[level]) % self.num_queues

    def _effective_cost(self, cost: int) -> int:
        self.check_cost(cost)
        if cost > self.max_cost:
            if not self.clamp_costs:
                raise CostOutOfRangeError(
                    f"cost {cost} exceeds wheel capacity {self.max_cost} "
                    f"(NQ={self.num_queues}, NW={self.num_wheels})"
                )
            self.clamped_costs += 1
            return self.max_cost
        return cost

    def _level_for(self, delta: int) -> int:
        """Wheel level for a priority ``delta`` above the inflation value."""
        table = self._cost_level
        if table is not None:
            return table[delta]
        level = 0
        while level + 1 < self.num_wheels and delta >= self._pow[level + 1]:
            level += 1
        return level

    def _unlink(self, entry: PolicyEntry) -> None:
        owner = entry.owner
        if owner is None or not isinstance(entry.policy_slot, int):
            raise ValueError("entry is not tracked by this policy")
        owner.remove(entry)
        self._level_counts[entry.policy_slot] -= 1
        entry.policy_slot = None

    # -- policy interface -------------------------------------------------------

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        cost = self._effective_cost(cost)
        entry.cost = cost
        h = entry.policy_h = self._inflation + cost
        entry.policy_seq = 0  # migrations since last insert/touch
        level = self._level_for(cost)
        self._wheels[level][(h // self._pow[level]) % self.num_queues].push_head(
            entry
        )
        self._level_counts[level] += 1
        entry.policy_slot = level
        self._count += 1

    def touch(self, entry: PolicyEntry) -> None:
        # The GET-hit hot path: unlink + re-place inlined.  ``entry.cost``
        # was validated (and, if configured, clamped) by insert(), so it is
        # a non-negative int <= max_cost and needs no re-validation here.
        owner = entry._list
        level = entry.policy_slot
        if owner is None or not isinstance(level, int):
            raise ValueError("entry is not tracked by this policy")
        owner.remove(entry)
        counts = self._level_counts
        counts[level] -= 1
        cost = entry.cost
        h = entry.policy_h = self._inflation + cost
        entry.policy_seq = 0
        level = self._level_for(cost)
        self._wheels[level][(h // self._pow[level]) % self.num_queues].push_head(
            entry
        )
        counts[level] += 1
        entry.policy_slot = level

    def remove(self, entry: PolicyEntry) -> None:
        self._unlink(entry)
        self._count -= 1

    def select_victim(self) -> PolicyEntry:
        if self._count == 0:
            raise EvictionError("GD-Wheel tracks no entries")
        nq = self.num_queues
        wheel0 = self._wheels[0]
        counts = self._level_counts
        # The hand position lives in a local while scanning; it is synced
        # back to self._inflation before anything that reads it (_cascade)
        # and before returning.
        inflation = self._inflation
        while True:
            if counts[0]:
                queue = wheel0[inflation % nq]
                if queue:
                    self._inflation = inflation
                    victim: PolicyEntry = queue.pop_tail()  # type: ignore[assignment]
                    counts[0] -= 1
                    victim.policy_slot = None
                    self._count -= 1
                    if self._inflation_gauge is not None:
                        self._inflation_gauge.set(inflation)
                    return victim
                inflation += 1
                if inflation % nq == 0:
                    self._inflation = inflation
                    self._cascade()
            else:
                # Level 0 is empty: jump the hand straight to the next
                # boundary of the lowest populated level and cascade there.
                lowest = min(
                    i for i in range(self.num_wheels) if counts[i]
                )
                step = self._pow[lowest]
                inflation = (inflation // step + 1) * step
                self._inflation = inflation
                self._cascade()

    def _cascade(self) -> None:
        """Migrate wrapped higher-level slots down after the hand advanced.

        Called whenever ``L`` lands on a multiple of ``NQ``.  The highest
        level whose digit changed is migrated first so entries trickle all
        the way down in one pass (the paper's Figure 4, generalized).
        """
        inflation = self._inflation
        highest = 0
        while (
            highest + 1 < self.num_wheels
            and inflation % self._pow[highest + 1] == 0
        ):
            highest += 1
        for level in range(highest, 0, -1):
            slot = (inflation // self._pow[level]) % self.num_queues
            queue = self._wheels[level][slot]
            if not queue:
                continue
            below = self._pow[level - 1]
            moved = 0
            # Queues are MRU-at-head / evict-at-tail.  Entries arriving by
            # migration were last touched strictly earlier than any entry the
            # destination queue already holds with the same H (an entry sits
            # at a higher level precisely because L was smaller when it was
            # touched), so migrants must be *appended at the tail*, oldest
            # last, to keep the least-recently-used tie-break exact.  The
            # paper's Algorithm 2 inserts migrants at the head, which breaks
            # LRU ordering among equal-H entries in rare interleavings; the
            # tail insertion is what makes GD-Wheel's eviction sequence
            # identical to GD-PQ's (Section 6.4.1's claim), and the
            # equivalence property test depends on it.
            for node in list(queue):
                entry: PolicyEntry = node  # type: ignore[assignment]
                queue.remove(entry)
                dest = (entry.policy_h // below) % self.num_queues
                self._wheels[level - 1][dest].push_tail(entry)
                entry.policy_slot = level - 1
                entry.policy_seq += 1
                moved += 1
            self._level_counts[level] -= moved
            self._level_counts[level - 1] += moved
            self.total_migrations += moved
            if self._cascades_counter is not None:
                self._cascades_counter.inc()
                self._migrations_counter.inc(moved)
            if self._trace is not None:
                self._trace.record(
                    CascadeEvent(
                        class_id=self._class_id if self._class_id is not None else -1,
                        level=level,
                        slot=slot,
                        moved=moved,
                        inflation=inflation,
                    )
                )

    # -- introspection ------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def entries(self) -> Iterator[PolicyEntry]:
        for wheel in self._wheels:
            for queue in wheel:
                for node in queue:
                    yield node  # type: ignore[misc]

    def peek_victim(self) -> Optional[PolicyEntry]:
        """The entry with minimal (H, recency); non-destructive, O(structure)."""
        best: Optional[PolicyEntry] = None
        for entry in self.entries():
            if best is None or entry.policy_h < best.policy_h:
                best = entry
        if best is None:
            return None
        # Among minimal-H entries the victim is the tail of their queue.
        owner = best.owner
        assert owner is not None
        tail: PolicyEntry = owner.tail  # type: ignore[assignment]
        while tail is not None and tail.policy_h != best.policy_h:
            tail = tail._prev  # type: ignore[assignment]
        return tail

    def level_counts(self) -> List[int]:
        """Entries per wheel level (observability; copies)."""
        return list(self._level_counts)

    def check_invariants(self) -> None:
        """Assert internal consistency; used by property tests."""
        total = 0
        for level, wheel in enumerate(self._wheels):
            level_total = 0
            for slot, queue in enumerate(wheel):
                for node in queue:
                    entry: PolicyEntry = node  # type: ignore[assignment]
                    level_total += 1
                    if entry.policy_h < self._inflation:
                        raise AssertionError(
                            f"entry H={entry.policy_h} below inflation "
                            f"{self._inflation}"
                        )
                    expect_slot = (
                        entry.policy_h // self._pow[level]
                    ) % self.num_queues
                    if slot != expect_slot:
                        raise AssertionError(
                            f"entry H={entry.policy_h} in level {level} slot "
                            f"{slot}, expected slot {expect_slot}"
                        )
                    if entry.policy_slot != level:
                        raise AssertionError("policy_slot out of sync")
                    if entry.policy_seq > self.num_wheels - 1:
                        raise AssertionError(
                            f"entry migrated {entry.policy_seq} times "
                            f"(> NW-1 = {self.num_wheels - 1})"
                        )
            if level_total != self._level_counts[level]:
                raise AssertionError(
                    f"level {level} count {self._level_counts[level]} != "
                    f"actual {level_total}"
                )
            total += level_total
        if total != self._count:
            raise AssertionError(f"count {self._count} != actual {total}")
