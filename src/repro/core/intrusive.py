"""Intrusive doubly-linked list used by every replacement policy.

Replacement policies need O(1) removal of an arbitrary element given a
reference to it (e.g. when a cached item is reused or deleted).  A normal
``collections.deque`` or ``list`` cannot do that, so — exactly like memcached's
``item`` struct with its ``prev``/``next`` pointers — list membership is
*intrusive*: the links live on the node itself.

``IntrusiveNode`` is intended to be embedded (by inheritance or composition)
in whatever object a policy tracks.  A node may belong to at most one
``IntrusiveList`` at a time; the owning list is recorded on the node so that
misuse (double-insertion, removing from the wrong list) raises instead of
silently corrupting the structure.
"""

from __future__ import annotations

from typing import Iterator, Optional


class IntrusiveNode:
    """A node that can be linked into exactly one :class:`IntrusiveList`."""

    __slots__ = ("_prev", "_next", "_list")

    def __init__(self) -> None:
        self._prev: Optional[IntrusiveNode] = None
        self._next: Optional[IntrusiveNode] = None
        self._list: Optional[IntrusiveList] = None

    @property
    def linked(self) -> bool:
        """Whether this node currently belongs to a list."""
        return self._list is not None

    @property
    def owner(self) -> Optional["IntrusiveList"]:
        """The list this node belongs to, or ``None``."""
        return self._list


class IntrusiveList:
    """A doubly-linked list of :class:`IntrusiveNode` with O(1) unlink.

    The list keeps an explicit length so ``len()`` is O(1).  Head is the most
    recently pushed side (``push_head``); tail is the eviction side for the
    LRU-flavoured uses throughout this package.
    """

    __slots__ = ("_head", "_tail", "_size")

    def __init__(self) -> None:
        self._head: Optional[IntrusiveNode] = None
        self._tail: Optional[IntrusiveNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def head(self) -> Optional[IntrusiveNode]:
        return self._head

    @property
    def tail(self) -> Optional[IntrusiveNode]:
        return self._tail

    def push_head(self, node: IntrusiveNode) -> None:
        """Insert ``node`` at the head (most-recent end)."""
        if node._list is not None:
            raise ValueError("node is already linked into a list")
        node._list = self
        node._prev = None
        node._next = self._head
        if self._head is not None:
            self._head._prev = node
        self._head = node
        if self._tail is None:
            self._tail = node
        self._size += 1

    def push_tail(self, node: IntrusiveNode) -> None:
        """Insert ``node`` at the tail (least-recent end)."""
        if node._list is not None:
            raise ValueError("node is already linked into a list")
        node._list = self
        node._next = None
        node._prev = self._tail
        if self._tail is not None:
            self._tail._next = node
        self._tail = node
        if self._head is None:
            self._head = node
        self._size += 1

    def remove(self, node: IntrusiveNode) -> None:
        """Unlink ``node`` from this list in O(1)."""
        if node._list is not self:
            raise ValueError("node does not belong to this list")
        if node._prev is not None:
            node._prev._next = node._next
        else:
            self._head = node._next
        if node._next is not None:
            node._next._prev = node._prev
        else:
            self._tail = node._prev
        node._prev = None
        node._next = None
        node._list = None
        self._size -= 1

    def pop_tail(self) -> Optional[IntrusiveNode]:
        """Remove and return the tail node, or ``None`` if empty."""
        node = self._tail
        if node is not None:
            self.remove(node)
        return node

    def pop_head(self) -> Optional[IntrusiveNode]:
        """Remove and return the head node, or ``None`` if empty."""
        node = self._head
        if node is not None:
            self.remove(node)
        return node

    def move_to_head(self, node: IntrusiveNode) -> None:
        """Move an already-linked node to the head of this list.

        Unlink + relink are fused in place (LRU's touch path runs this once
        per GET hit): no membership churn, no size update, and a no-op when
        the node already heads the list.
        """
        if node._list is not self:
            raise ValueError("node does not belong to this list")
        head = self._head
        if head is node:
            return
        # node is linked and not the head, so node._prev exists
        node._prev._next = node._next
        if node._next is not None:
            node._next._prev = node._prev
        else:
            self._tail = node._prev
        node._prev = None
        node._next = head
        head._prev = node  # type: ignore[union-attr]
        self._head = node

    def __iter__(self) -> Iterator[IntrusiveNode]:
        """Iterate head → tail.  Do not mutate the list while iterating."""
        node = self._head
        while node is not None:
            nxt = node._next
            yield node
            node = nxt

    def iter_tail(self) -> Iterator[IntrusiveNode]:
        """Iterate tail → head.  Do not mutate the list while iterating."""
        node = self._tail
        while node is not None:
            prv = node._prev
            yield node
            node = prv

    def drain(self) -> Iterator[IntrusiveNode]:
        """Pop nodes head-first until empty, yielding each.

        Safe to use while relinking the yielded nodes into other lists
        (the node is already unlinked when yielded).
        """
        while self._head is not None:
            node = self._head
            self.remove(node)
            yield node
