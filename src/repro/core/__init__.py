"""Replacement policies: the paper's GD-Wheel plus every comparator.

The cost-aware GreedyDual family:

* :class:`~repro.core.gdwheel.GDWheelPolicy` — the paper's contribution,
  amortized O(1) via Hierarchical Cost Wheels.
* :class:`~repro.core.gdpq.GDPQPolicy` — Cao & Irani's O(log n)
  priority-queue implementation (the paper's GD-PQ comparator).
* :class:`~repro.core.greedydual.NaiveGreedyDual` — Young's original O(n)
  formulation, kept as the equivalence-test oracle.
* :class:`~repro.core.gds.GDSPolicy` / :class:`~repro.core.gds.GDSFPolicy` —
  the size-aware variants from related work.
* :class:`~repro.core.camp.CAMPPolicy` — the approximate multi-queue
  GreedyDual-Size of Ghandeharizadeh et al.

The cost-oblivious baselines: LRU (memcached default), CLOCK (MemC3),
random (Redis), 2Q, ARC, and LRU-K; plus offline clairvoyant bounds in
:mod:`repro.core.offline`.
"""

from repro.core.arc import ARCPolicy
from repro.core.camp import CAMPPolicy, round_ratio
from repro.core.clock import ClockPolicy
from repro.core.gdpq import GDPQPolicy
from repro.core.gds import GDSFPolicy, GDSPolicy
from repro.core.gdwheel import CostOutOfRangeError, GDWheelPolicy
from repro.core.greedydual import NaiveGreedyDual
from repro.core.intrusive import IntrusiveList, IntrusiveNode
from repro.core.lru import LRUPolicy
from repro.core.lruk import LRUKPolicy
from repro.core.offline import (
    OfflineResult,
    simulate_belady,
    simulate_cost_aware_offline,
)
from repro.core.policy import (
    EvictionError,
    PolicyEntry,
    ReplacementPolicy,
)
from repro.core.random_policy import RandomPolicy
from repro.core.twoq import TwoQPolicy

#: Registry of constructable-without-arguments policies, keyed by name.
POLICY_REGISTRY = {
    "lru": LRUPolicy,
    "clock": ClockPolicy,
    "random": RandomPolicy,
    "gd-wheel": GDWheelPolicy,
    "gd-pq": GDPQPolicy,
    "gd-naive": NaiveGreedyDual,
    "gds": GDSPolicy,
    "gdsf": GDSFPolicy,
    "camp": CAMPPolicy,
    "lru-k": LRUKPolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Construct a policy by registry name (see :data:`POLICY_REGISTRY`)."""
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(POLICY_REGISTRY)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "ARCPolicy",
    "CAMPPolicy",
    "ClockPolicy",
    "CostOutOfRangeError",
    "EvictionError",
    "GDPQPolicy",
    "GDSFPolicy",
    "GDSPolicy",
    "GDWheelPolicy",
    "IntrusiveList",
    "IntrusiveNode",
    "LRUKPolicy",
    "LRUPolicy",
    "NaiveGreedyDual",
    "OfflineResult",
    "POLICY_REGISTRY",
    "PolicyEntry",
    "RandomPolicy",
    "ReplacementPolicy",
    "TwoQPolicy",
    "make_policy",
    "round_ratio",
    "simulate_belady",
    "simulate_cost_aware_offline",
]
