"""Replacement-policy interface shared by every policy in this package.

A policy tracks opaque *entries* (anything hashable-by-identity that carries
an :class:`~repro.core.intrusive.IntrusiveNode`) and answers one question:
*which entry should be evicted next?*  The key-value store
(:mod:`repro.kvstore.store`) drives the policy with four events:

``insert(entry, cost)``
    A new entry was cached with the given recomputation cost.
``touch(entry)``
    A cached entry was reused (GET hit) — for GreedyDual-family policies this
    restores the entry's priority to ``L + cost``.
``remove(entry)``
    The entry left the cache for a reason other than eviction (DELETE,
    expiry, slab reassignment).
``select_victim()``
    Choose, unlink, and return the entry the policy wants evicted.

Costs are non-negative integers (the paper maps recomputation times onto a
limited integer range; see Section 2.2).  Cost-oblivious policies ignore the
argument.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional

from repro.core.intrusive import IntrusiveNode


class PolicyEntry(IntrusiveNode):
    """Base class for objects trackable by a replacement policy.

    Policies annotate entries with their own bookkeeping via the generously
    slotted attributes below; embedding them here (rather than in per-policy
    wrapper objects) mirrors how memcached keeps replacement metadata inside
    the item header and keeps the hot paths allocation-free.
    """

    __slots__ = (
        "cost",
        "size",
        "key",
        "policy_h",
        "policy_seq",
        "policy_slot",
        "policy_ref",
    )

    def __init__(self, cost: int = 0, size: int = 1, key=None) -> None:
        super().__init__()
        self.cost = cost
        #: Footprint in bytes; used by size-aware policies (GDS/GDSF/CAMP).
        self.size = size
        #: Stable identity; used by ghost-list policies (ARC, 2Q, LRU-K).
        self.key = key
        #: GreedyDual priority (H value) under GD-PQ / GD-Wheel / naive GD.
        self.policy_h = 0
        #: Monotonic sequence number; used for LRU tie-breaks in GD-PQ.
        self.policy_seq = 0
        #: Wheel coordinates (level, slot) under GD-Wheel, or CLOCK ref bit.
        self.policy_slot = None
        #: Scratch reference (heap entry, queue object, ...) for policies.
        self.policy_ref = None


class EvictionError(RuntimeError):
    """Raised when a victim is requested but the policy tracks no entries."""


class ReplacementPolicy(ABC):
    """Abstract replacement policy.

    Concrete policies must keep ``len(policy)`` equal to the number of
    currently tracked entries and must never return an entry from
    :meth:`select_victim` that is still linked into internal structures.
    """

    #: Human-readable identifier used in experiment reports.
    name: str = "abstract"

    #: Whether the policy makes use of the ``cost`` argument.
    cost_aware: bool = False

    @abstractmethod
    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        """Start tracking a newly cached entry."""

    @abstractmethod
    def touch(self, entry: PolicyEntry) -> None:
        """Record a reuse (GET hit) of a tracked entry."""

    @abstractmethod
    def remove(self, entry: PolicyEntry) -> None:
        """Stop tracking an entry (delete/expiry), without counting an eviction."""

    @abstractmethod
    def select_victim(self) -> PolicyEntry:
        """Unlink and return the next eviction victim.

        Raises :class:`EvictionError` when empty.
        """

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked entries."""

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- Optional observability -------------------------------------------------

    def bind_observability(self, registry, trace, class_id=None) -> None:
        """Attach a metrics registry / event trace to this policy instance.

        Called once by the store when the policy is created for a slab
        class.  The default is a no-op; policies with interesting internal
        dynamics (GD-Wheel cascades, GD-PQ deflations) override it to
        register counters and emit trace events.  ``registry`` is a
        :class:`repro.obs.registry.MetricsRegistry`, ``trace`` an
        :class:`repro.obs.trace.EventTrace` or ``None``.
        """

    # -- Optional introspection -------------------------------------------------

    def entries(self) -> Iterator[PolicyEntry]:
        """Iterate over tracked entries in an unspecified order.

        Intended for tests and debugging; O(n).  Policies that can do better
        than the default (which raises) should override.
        """
        raise NotImplementedError(f"{self.name} does not support iteration")

    def peek_victim(self) -> Optional[PolicyEntry]:
        """Return (without removing) the entry that would be evicted next.

        Optional; used by diagnostics.  Policies with destructive victim
        search may leave this unimplemented.
        """
        raise NotImplementedError(f"{self.name} does not support peeking")

    @staticmethod
    def check_cost(cost: int) -> int:
        """Validate a cost value: non-negative integer."""
        if not isinstance(cost, int) or isinstance(cost, bool):
            raise TypeError(f"cost must be an int, got {type(cost).__name__}")
        if cost < 0:
            raise ValueError(f"cost must be non-negative, got {cost}")
        return cost
