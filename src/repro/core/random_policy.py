"""Random replacement — one of Redis's ``maxmemory`` eviction options.

The paper cites Redis's random eviction as the other constant-time,
cost-oblivious policy in production key-value stores.  We keep a dense array
of tracked entries plus each entry's index (in ``policy_slot``) so that
insert, touch, remove, and victim selection are all O(1) (removal uses the
swap-with-last trick).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Uniform-random eviction with O(1) operations."""

    name = "random"
    cost_aware = False

    def __init__(self, seed: Optional[int] = None) -> None:
        self._entries: List[PolicyEntry] = []
        self._rng = random.Random(seed)

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        entry.policy_slot = len(self._entries)
        self._entries.append(entry)

    def touch(self, entry: PolicyEntry) -> None:
        # Random replacement is recency-oblivious; nothing to do.
        pass

    def remove(self, entry: PolicyEntry) -> None:
        idx = entry.policy_slot
        if not isinstance(idx, int) or idx >= len(self._entries) or self._entries[idx] is not entry:
            raise ValueError("entry is not tracked by this policy")
        last = self._entries.pop()
        if last is not entry:
            self._entries[idx] = last
            last.policy_slot = idx
        entry.policy_slot = None

    def select_victim(self) -> PolicyEntry:
        if not self._entries:
            raise EvictionError("random policy tracks no entries")
        victim = self._entries[self._rng.randrange(len(self._entries))]
        self.remove(victim)
        return victim

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[PolicyEntry]:
        return iter(list(self._entries))
