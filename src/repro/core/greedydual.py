"""Young's original GreedyDual algorithm with O(n) evictions.

This is the textbook formulation (Section 3.1 of the paper): on insertion or
reuse of ``p``, set ``H(p) = c(p)``; on eviction, evict the entry with the
minimum ``H`` (breaking ties toward the least recently used) and subtract
that minimum from every remaining entry's ``H``.

It is hopeless as a production policy — an eviction walks every cached entry
— but it is the cleanest possible *oracle*: GD-PQ and GD-Wheel must make
exactly the same eviction decisions, and the equivalence tests in
``tests/core/test_equivalence.py`` check all three against each other.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy


class NaiveGreedyDual(ReplacementPolicy):
    """Reference GreedyDual with explicit per-eviction H deflation."""

    name = "gd-naive"
    cost_aware = True

    def __init__(self) -> None:
        self._entries: List[PolicyEntry] = []
        self._seq = 0  # recency stamp for tie-breaking

    def _stamp(self, entry: PolicyEntry) -> None:
        self._seq += 1
        entry.policy_seq = self._seq

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        entry.policy_h = cost
        self._stamp(entry)
        entry.policy_slot = len(self._entries)
        self._entries.append(entry)

    def touch(self, entry: PolicyEntry) -> None:
        entry.policy_h = entry.cost
        self._stamp(entry)

    def remove(self, entry: PolicyEntry) -> None:
        idx = entry.policy_slot
        if not isinstance(idx, int) or idx >= len(self._entries) or self._entries[idx] is not entry:
            raise ValueError("entry is not tracked by this policy")
        last = self._entries.pop()
        if last is not entry:
            self._entries[idx] = last
            last.policy_slot = idx
        entry.policy_slot = None

    def select_victim(self) -> PolicyEntry:
        if not self._entries:
            raise EvictionError("GreedyDual tracks no entries")
        # Minimum H; ties broken by *oldest* recency stamp (LRU), matching
        # Algorithm 1's "evict the least recently used object in M".
        victim = min(self._entries, key=lambda e: (e.policy_h, e.policy_seq))
        h_min = victim.policy_h
        self.remove(victim)
        if h_min:
            for entry in self._entries:
                entry.policy_h -= h_min
        return victim

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[PolicyEntry]:
        return iter(list(self._entries))

    def peek_victim(self) -> Optional[PolicyEntry]:
        if not self._entries:
            return None
        return min(self._entries, key=lambda e: (e.policy_h, e.policy_seq))
