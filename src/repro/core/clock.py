"""CLOCK — the one-bit approximation of LRU used by MemC3.

Fan et al. (NSDI'13) replaced memcached's LRU lists with a CLOCK policy to
improve space efficiency and concurrency; the paper cites it as one of the
constant-time, cost-oblivious policies GD-Wheel competes with.

Entries sit in a circular list.  Each entry carries a reference bit (stored
in ``policy_slot``).  A reuse sets the bit; the victim search sweeps a hand
around the circle, clearing set bits and evicting the first entry whose bit
is already clear.  A single sweep step is O(1); a full victim search is
amortized O(1) because each cleared bit was paid for by the touch that set
it.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.intrusive import IntrusiveList, IntrusiveNode
from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK over an intrusive list treated as a ring.

    The intrusive list's head is "just behind the hand": the hand examines
    the tail, and surviving entries are rotated to the head with their bit
    cleared.
    """

    name = "clock"
    cost_aware = False

    def __init__(self) -> None:
        self._ring = IntrusiveList()

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        entry.policy_slot = 1  # new entries get one free pass, like MemC3
        self._ring.push_head(entry)

    def touch(self, entry: PolicyEntry) -> None:
        # CLOCK's whole point: a reuse only flips a bit, no list surgery.
        entry.policy_slot = 1

    def remove(self, entry: PolicyEntry) -> None:
        self._ring.remove(entry)

    def select_victim(self) -> PolicyEntry:
        if not self._ring:
            raise EvictionError("CLOCK ring is empty")
        # Bounded by 2n sweeps in the worst case; amortized O(1) per evict.
        while True:
            node = self._ring.tail
            assert node is not None
            entry: PolicyEntry = node  # type: ignore[assignment]
            if entry.policy_slot:
                entry.policy_slot = 0
                self._ring.move_to_head(entry)
            else:
                self._ring.remove(entry)
                return entry

    def __len__(self) -> int:
        return len(self._ring)

    def entries(self) -> Iterator[PolicyEntry]:
        return iter(self._ring)  # type: ignore[return-value]

    def peek_victim(self) -> Optional[PolicyEntry]:
        """First clear-bit entry scanning from the hand; non-destructive."""
        node: Optional[IntrusiveNode] = self._ring.tail
        while node is not None:
            entry: PolicyEntry = node  # type: ignore[assignment]
            if not entry.policy_slot:
                return entry
            node = node._prev
        # Everyone referenced: the current tail will be the eventual victim
        # only after a full clearing sweep; report the tail.
        return self._ring.tail  # type: ignore[return-value]
