"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

Another hit-ratio-oriented, cost-oblivious baseline from the paper's related
work (Section 7), used in the policy-zoo ablation.  ARC splits the cache
into a recency list T1 and a frequency list T2, with ghost key lists B1/B2
remembering what was recently evicted from each; hits in the ghost lists
adaptively move the target size ``p`` of T1.

ARC needs the cache capacity (in entries) to size its ghost lists and run
its adaptation rule; replacement decisions otherwise plug into the standard
policy interface (``select_victim`` implements ARC's REPLACE subroutine).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.core.intrusive import IntrusiveList
from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy

_T1 = 1
_T2 = 2


class ARCPolicy(ReplacementPolicy):
    """Adaptive Replacement Cache over intrusive lists + ghost key dicts."""

    name = "arc"
    cost_aware = False

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._t1 = IntrusiveList()
        self._t2 = IntrusiveList()
        self._b1: "OrderedDict[object, None]" = OrderedDict()
        self._b2: "OrderedDict[object, None]" = OrderedDict()
        self._p = 0.0  # adaptive target size of T1

    @property
    def p(self) -> float:
        """Current adaptive target for |T1| (observability)."""
        return self._p

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        key = entry.key
        if key is not None and key in self._b1:
            # Case II: ghost hit in B1 — grow p, promote to T2.
            delta = max(len(self._b2) / max(len(self._b1), 1), 1.0)
            self._p = min(self._p + delta, float(self.capacity))
            del self._b1[key]
            entry.policy_slot = _T2
            self._t2.push_head(entry)
        elif key is not None and key in self._b2:
            # Case III: ghost hit in B2 — shrink p, promote to T2.
            delta = max(len(self._b1) / max(len(self._b2), 1), 1.0)
            self._p = max(self._p - delta, 0.0)
            del self._b2[key]
            entry.policy_slot = _T2
            self._t2.push_head(entry)
        else:
            # Case IV: brand-new key goes to T1; trim ghost lists to ARC's
            # bounds (|T1|+|B1| <= c, total directory <= 2c).
            if len(self._t1) + len(self._b1) >= self.capacity:
                if self._b1:
                    self._b1.popitem(last=False)
            elif (
                len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
                >= 2 * self.capacity
            ):
                if self._b2:
                    self._b2.popitem(last=False)
            entry.policy_slot = _T1
            self._t1.push_head(entry)

    def touch(self, entry: PolicyEntry) -> None:
        # Case I: real hit — move to MRU of T2.
        if entry.policy_slot == _T1:
            self._t1.remove(entry)
        else:
            self._t2.remove(entry)
        entry.policy_slot = _T2
        self._t2.push_head(entry)

    def remove(self, entry: PolicyEntry) -> None:
        if entry.policy_slot == _T1:
            self._t1.remove(entry)
        else:
            self._t2.remove(entry)
        entry.policy_slot = None

    def select_victim(self) -> PolicyEntry:
        """ARC's REPLACE: evict from T1 if it exceeds its target, else T2."""
        if not self._t1 and not self._t2:
            raise EvictionError("ARC tracks no entries")
        from_t1 = bool(self._t1) and (
            len(self._t1) > self._p or not self._t2
        )
        if from_t1:
            victim: PolicyEntry = self._t1.pop_tail()  # type: ignore[assignment]
            ghosts = self._b1
        else:
            victim = self._t2.pop_tail()  # type: ignore[assignment]
            ghosts = self._b2
        victim.policy_slot = None
        if victim.key is not None:
            ghosts[victim.key] = None
            ghosts.move_to_end(victim.key)
        return victim

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def entries(self) -> Iterator[PolicyEntry]:
        for node in self._t1:
            yield node  # type: ignore[misc]
        for node in self._t2:
            yield node  # type: ignore[misc]
