"""GD-PQ — Cao & Irani's O(log n) GreedyDual implementation.

This reproduces the comparator the paper calls GD-PQ (Section 6): a single
priority queue over all cached entries plus a global *inflation value* ``L``.
On insertion or reuse, ``H(p) = L + c(p)``; on eviction the minimum-``H``
entry goes (ties broken least-recently-used first) and ``L`` is advanced to
its ``H``.

The priority queue is a binary heap with *lazy deletion*: a touch or remove
marks the entry's current heap slot stale and (for touches) pushes a fresh
one.  Stale slots are discarded when they surface at the top.  To keep the
heap from growing without bound under touch-heavy workloads, the heap is
compacted once the stale fraction passes a threshold — the amortized cost
stays O(log n) per operation.

Cao & Irani note that a real implementation must occasionally rescan the
queue to deflate ``L`` before it overflows its integer type; Python integers
never overflow, but the paper's complexity argument (and our Figure-7 bench)
depends on that machinery existing, so an optional ``inflation_limit``
triggers the same O(n) deflation rescan.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Iterator, List, Optional

from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy

# A heap slot: [H, recency sequence, entry-or-None].  Slot is "stale" when the
# entry field is None or no longer points back at this slot.
_SlotType = list


class GDPQPolicy(ReplacementPolicy):
    """GreedyDual via a lazy-deletion binary heap and inflation value L."""

    name = "gd-pq"
    cost_aware = True

    def __init__(
        self,
        inflation_limit: Optional[int] = None,
        compact_ratio: float = 2.0,
    ) -> None:
        """
        Args:
            inflation_limit: if set, deflate priorities with an O(n) rescan
                whenever ``L`` reaches this value (models integer overflow
                handling in the C implementation).
            compact_ratio: rebuild the heap when it holds more than
                ``compact_ratio`` times as many slots as live entries.
        """
        if compact_ratio < 1.0:
            raise ValueError("compact_ratio must be >= 1.0")
        self._heap: List[_SlotType] = []
        self._live = 0
        self._seq = 0
        self._inflation = 0  # the global L
        self._inflation_limit = inflation_limit
        self._compact_ratio = compact_ratio
        #: number of O(n) deflation rescans performed (observable in tests)
        self.deflation_count = 0
        # registry hooks (bound by the store via bind_observability)
        self._deflations_counter = None
        self._inflation_gauge = None

    def bind_observability(self, registry, trace, class_id=None) -> None:
        """Register a deflation counter and an inflation gauge."""
        if registry is None or not registry.enabled:
            return
        labels = {} if class_id is None else {"class_id": class_id}
        self._deflations_counter = registry.counter(
            "gdpq_deflations_total",
            help="O(n) priority deflation rescans",
            **labels,
        )
        self._inflation_gauge = registry.gauge(
            "gdpq_inflation", help="current global inflation value L", **labels
        )

    @property
    def inflation(self) -> int:
        """Current global inflation value L."""
        return self._inflation

    def _push(self, entry: PolicyEntry) -> None:
        self._seq += 1
        entry.policy_seq = self._seq
        slot: _SlotType = [entry.policy_h, self._seq, entry]
        entry.policy_ref = slot
        heappush(self._heap, slot)

    def _invalidate(self, entry: PolicyEntry) -> None:
        slot = entry.policy_ref
        if slot is None or slot[2] is not entry:
            raise ValueError("entry is not tracked by this policy")
        slot[2] = None
        entry.policy_ref = None

    def _maybe_compact(self) -> None:
        if len(self._heap) > self._compact_ratio * max(self._live, 16):
            self._heap = [slot for slot in self._heap if slot[2] is not None]
            heapify(self._heap)

    def _maybe_deflate(self) -> None:
        if self._inflation_limit is None or self._inflation < self._inflation_limit:
            return
        # The O(n) rescan Cao & Irani describe: subtract L from every live
        # priority and rebuild the queue.
        delta = self._inflation
        self._inflation = 0
        self.deflation_count += 1
        if self._deflations_counter is not None:
            self._deflations_counter.inc()
        fresh: List[_SlotType] = []
        for slot in self._heap:
            entry = slot[2]
            if entry is None:
                continue
            entry.policy_h = max(0, entry.policy_h - delta)
            slot[0] = entry.policy_h
            fresh.append(slot)
        heapify(fresh)
        self._heap = fresh

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        entry.policy_h = self._inflation + cost
        self._push(entry)
        self._live += 1

    def touch(self, entry: PolicyEntry) -> None:
        # The GET-hit hot path: invalidate + push inlined (one heappush,
        # no intermediate method calls), then the usual compaction check.
        stale = entry.policy_ref
        if stale is None or stale[2] is not entry:
            raise ValueError("entry is not tracked by this policy")
        stale[2] = None
        seq = self._seq = self._seq + 1
        entry.policy_seq = seq
        slot: _SlotType = [self._inflation + entry.cost, seq, entry]
        entry.policy_h = slot[0]
        entry.policy_ref = slot
        heappush(self._heap, slot)
        if len(self._heap) > self._compact_ratio * max(self._live, 16):
            self._heap = [s for s in self._heap if s[2] is not None]
            heapify(self._heap)

    def remove(self, entry: PolicyEntry) -> None:
        self._invalidate(entry)
        self._live -= 1
        self._maybe_compact()

    def select_victim(self) -> PolicyEntry:
        heap = self._heap
        while heap:
            slot = heappop(heap)
            entry = slot[2]
            if entry is None:
                continue
            entry.policy_ref = None
            self._live -= 1
            self._inflation = entry.policy_h
            self._maybe_deflate()
            if self._inflation_gauge is not None:
                self._inflation_gauge.set(self._inflation)
            return entry
        raise EvictionError("GD-PQ tracks no entries")

    def __len__(self) -> int:
        return self._live

    def entries(self) -> Iterator[PolicyEntry]:
        return iter([slot[2] for slot in self._heap if slot[2] is not None])

    def peek_victim(self) -> Optional[PolicyEntry]:
        while self._heap and self._heap[0][2] is None:
            heappop(self._heap)
        return self._heap[0][2] if self._heap else None
