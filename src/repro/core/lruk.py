"""LRU-K (O'Neil, O'Neil & Weikum, SIGMOD'93).

The last of the hit-ratio-oriented related-work baselines (Section 7).
LRU-K evicts the entry whose K-th most recent reference is furthest in the
past; entries referenced fewer than K times are the first to go (their K-th
reference time is treated as minus infinity), ordered among themselves by
their most recent reference.

Implemented with a lazy-deletion heap keyed by
``(kth_recent_time, last_time)`` — the same technique as GD-PQ, so an
operation is O(log n).  The per-entry reference history (a bounded tuple of
the last K access times) lives in ``policy_slot``.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy

_NEVER = -1  # earlier than any real timestamp


class LRUKPolicy(ReplacementPolicy):
    """LRU-K via a lazy-deletion heap over (K-th recent, most recent) times."""

    name = "lru-k"
    cost_aware = False

    def __init__(self, k: int = 2, compact_ratio: float = 2.0) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._heap: List[list] = []
        self._live = 0
        self._clock = 0
        self._compact_ratio = compact_ratio

    def _key(self, history: Tuple[int, ...]) -> Tuple[int, int]:
        kth = history[0] if len(history) == self.k else _NEVER
        return (kth, history[-1])

    def _push(self, entry: PolicyEntry) -> None:
        kth, last = self._key(entry.policy_slot)
        slot = [kth, last, entry]
        entry.policy_ref = slot
        heapq.heappush(self._heap, slot)

    def _invalidate(self, entry: PolicyEntry) -> None:
        slot = entry.policy_ref
        if slot is None or slot[2] is not entry:
            raise ValueError("entry is not tracked by this policy")
        slot[2] = None
        entry.policy_ref = None

    def _maybe_compact(self) -> None:
        if len(self._heap) > self._compact_ratio * max(self._live, 16):
            self._heap = [s for s in self._heap if s[2] is not None]
            heapq.heapify(self._heap)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        entry.policy_slot = (self._tick(),)
        self._push(entry)
        self._live += 1

    def touch(self, entry: PolicyEntry) -> None:
        self._invalidate(entry)
        history: Tuple[int, ...] = entry.policy_slot
        history = (history + (self._tick(),))[-self.k :]
        entry.policy_slot = history
        self._push(entry)
        self._maybe_compact()

    def remove(self, entry: PolicyEntry) -> None:
        self._invalidate(entry)
        entry.policy_slot = None
        self._live -= 1
        self._maybe_compact()

    def select_victim(self) -> PolicyEntry:
        while self._heap:
            slot = heapq.heappop(self._heap)
            entry = slot[2]
            if entry is None:
                continue
            entry.policy_ref = None
            entry.policy_slot = None
            self._live -= 1
            return entry
        raise EvictionError("LRU-K tracks no entries")

    def __len__(self) -> int:
        return self._live

    def entries(self) -> Iterator[PolicyEntry]:
        return iter([s[2] for s in self._heap if s[2] is not None])

    def peek_victim(self) -> Optional[PolicyEntry]:
        while self._heap and self._heap[0][2] is None:
            heapq.heappop(self._heap)
        return self._heap[0][2] if self._heap else None
