"""Offline (clairvoyant) cache simulators used as bounds in ablations.

These are *trace* simulators, not pluggable :class:`ReplacementPolicy`
objects: they need to see the whole request sequence up front.

* :func:`simulate_belady` — Belady's MIN, the optimal policy for the unit
  cost (paging) problem.  Cited by the paper (Section 7) as the classic
  hit-ratio-optimal algorithm; it upper-bounds the hit rate any online,
  cost-oblivious policy can reach.
* :func:`simulate_cost_aware_offline` — a clairvoyant *heuristic* for the
  weighted caching problem: on eviction, drop the cached key maximizing
  ``next_use_distance / cost``.  The true offline optimum for weighted
  caching requires an LP/flow computation; this greedy is a strong,
  cheap stand-in that the ablation bench uses to show how close GD-Wheel's
  online decisions come to clairvoyant cost-aware behaviour.

Both return a :class:`OfflineResult` with hit/miss counts and the total
recomputation cost incurred (sum of the costs of missed keys).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence


@dataclass(frozen=True)
class OfflineResult:
    """Outcome of an offline trace simulation."""

    hits: int
    misses: int
    total_miss_cost: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


_INFINITY = float("inf")


def _next_use_table(trace: Sequence[object]) -> List[float]:
    """For each position, the index of the next request for the same key."""
    next_use: List[float] = [_INFINITY] * len(trace)
    last_seen: Dict[object, int] = {}
    for i in range(len(trace) - 1, -1, -1):
        key = trace[i]
        next_use[i] = last_seen.get(key, _INFINITY)
        last_seen[key] = i
    return next_use


def simulate_belady(
    trace: Sequence[object],
    capacity: int,
    cost_of: Callable[[object], int] = lambda _key: 1,
) -> OfflineResult:
    """Belady's MIN over a key trace with ``capacity`` cache slots.

    ``cost_of`` is only used for *accounting* the total miss cost; Belady's
    eviction choice ignores it (it optimizes hit rate, not cost).
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    next_use = _next_use_table(trace)
    cached: Dict[object, float] = {}  # key -> next use position
    # Max-heap of (-next_use, key); lazily validated against ``cached``.
    heap: List[tuple] = []
    hits = misses = total_cost = 0
    for i, key in enumerate(trace):
        nxt = next_use[i]
        if key in cached:
            hits += 1
            cached[key] = nxt
            heapq.heappush(heap, (-nxt, i, key))
            continue
        misses += 1
        total_cost += cost_of(key)
        if len(cached) >= capacity:
            while True:
                neg_nxt, _stamp, victim = heapq.heappop(heap)
                if victim in cached and cached[victim] == -neg_nxt:
                    del cached[victim]
                    break
        cached[key] = nxt
        heapq.heappush(heap, (-nxt, i, key))
    return OfflineResult(hits=hits, misses=misses, total_miss_cost=total_cost)


def simulate_cost_aware_offline(
    trace: Sequence[object],
    capacity: int,
    cost_of: Callable[[object], int],
) -> OfflineResult:
    """Clairvoyant greedy for weighted caching: evict max (next_use − now)/cost.

    Keys never used again always evict first (distance is infinite); with
    uniform costs the score ordering equals Belady's (argmax distance ==
    argmax next-use position, regardless of ``now``).

    Because the score shrinks as time advances — and shrinks at different
    rates for different costs — a heap entry's stored score is only an
    **upper bound** on the current score.  Victim selection therefore uses
    lazy re-evaluation: pop the stored maximum, recompute its score at the
    current time, and evict only if it still dominates the next stored
    (upper-bound) score; otherwise re-push with the fresh score and retry.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    next_use = _next_use_table(trace)
    cached: Dict[object, float] = {}
    heap: List[list] = []
    hits = misses = total_cost = 0

    def score(key: object, nxt: float, now: int) -> float:
        if nxt == _INFINITY:
            return _INFINITY
        return (nxt - now) / max(cost_of(key), 1)

    def push(key: object, nxt: float, now: int) -> None:
        heapq.heappush(heap, [-score(key, nxt, now), nxt, key])

    def evict_one(now: int) -> None:
        while True:
            neg_s, recorded_nxt, victim = heapq.heappop(heap)
            if victim not in cached or cached[victim] != recorded_nxt:
                continue  # stale entry from an earlier touch
            current = score(victim, recorded_nxt, now)
            # the next top's stored score is itself an upper bound, so this
            # comparison is conservative: we only evict a certified maximum
            if not heap or current >= -heap[0][0]:
                del cached[victim]
                return
            heapq.heappush(heap, [-current, recorded_nxt, victim])

    for i, key in enumerate(trace):
        nxt = next_use[i]
        if key in cached:
            hits += 1
            cached[key] = nxt
            push(key, nxt, i)
            continue
        misses += 1
        total_cost += cost_of(key)
        if len(cached) >= capacity:
            evict_one(i)
        cached[key] = nxt
        push(key, nxt, i)
    return OfflineResult(hits=hits, misses=misses, total_miss_cost=total_cost)
