"""2Q replacement (Johnson & Shasha, VLDB'94) — a hit-ratio-oriented baseline.

The paper's related work (Section 7) lists 2Q among the policies that chase
hit ratio while ignoring cost; the policy-zoo ablation bench uses it to show
that a better hit ratio does not imply a lower total recomputation cost.

This is the "full" 2Q: a FIFO probation queue *A1in*, a ghost key queue
*A1out* remembering recently evicted probation keys, and a main LRU queue
*Am*.  A reference whose key is remembered in A1out is promoted straight to
Am (it proved itself "hot").  Unlike the GreedyDual family, 2Q needs to know
the cache capacity to size its queues; ``capacity`` is in entries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.core.intrusive import IntrusiveList
from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy

_A1IN = 1
_AM = 2


class TwoQPolicy(ReplacementPolicy):
    """2Q with A1in/A1out/Am; queue membership kept in ``policy_slot``."""

    name = "2q"
    cost_aware = False

    def __init__(self, capacity: int, kin: float = 0.25, kout: float = 0.5) -> None:
        """
        Args:
            capacity: cache capacity in entries (sizes the internal queues).
            kin: A1in target size as a fraction of capacity.
            kout: A1out ghost-key count as a fraction of capacity.
        """
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._kin = max(1, int(capacity * kin))
        self._kout = max(1, int(capacity * kout))
        self._a1in = IntrusiveList()
        self._am = IntrusiveList()
        self._a1out: "OrderedDict[object, None]" = OrderedDict()

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        if entry.key is not None and entry.key in self._a1out:
            del self._a1out[entry.key]
            entry.policy_slot = _AM
            self._am.push_head(entry)
        else:
            entry.policy_slot = _A1IN
            self._a1in.push_head(entry)

    def touch(self, entry: PolicyEntry) -> None:
        if entry.policy_slot == _AM:
            self._am.move_to_head(entry)
        # A1in entries are deliberately not reordered: 2Q uses the FIFO pass
        # through A1in to filter one-hit wonders.

    def remove(self, entry: PolicyEntry) -> None:
        if entry.policy_slot == _AM:
            self._am.remove(entry)
        else:
            self._a1in.remove(entry)
        entry.policy_slot = None

    def _remember_ghost(self, key: object) -> None:
        if key is None:
            return
        self._a1out[key] = None
        self._a1out.move_to_end(key)
        while len(self._a1out) > self._kout:
            self._a1out.popitem(last=False)

    def select_victim(self) -> PolicyEntry:
        if len(self._a1in) > self._kin or not self._am:
            victim = self._a1in.pop_tail()
            if victim is not None:
                entry: PolicyEntry = victim  # type: ignore[assignment]
                entry.policy_slot = None
                self._remember_ghost(entry.key)
                return entry
        victim = self._am.pop_tail()
        if victim is None:
            raise EvictionError("2Q tracks no entries")
        entry = victim  # type: ignore[assignment]
        entry.policy_slot = None
        return entry

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def entries(self) -> Iterator[PolicyEntry]:
        for node in self._a1in:
            yield node  # type: ignore[misc]
        for node in self._am:
            yield node  # type: ignore[misc]
