"""GreedyDual-Size and GDSF — the size-aware GreedyDual variants.

Cao & Irani's *GreedyDual-Size* (GDS) sets ``H = L + cost/size`` so that,
between two equally expensive objects, the larger one is evicted first.
The Squid variant *GDSF* (GreedyDual-Size-Frequency) additionally scales by
an access-frequency count: ``H = L + frequency * cost / size``.

The paper deliberately does *not* use size in GD-Wheel because memcached's
slab classes already segregate sizes (Section 7), but both variants are
implemented here for the related-work ablation bench
(``benchmarks/test_ablation_policy_zoo.py``).

Priorities are floats, so the wheel trick does not apply; like GD-PQ these
use a lazy-deletion binary heap with a global inflation value.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional

from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy

_SlotType = list


class _HeapGreedyDual(ReplacementPolicy):
    """Shared heap machinery for float-priority GreedyDual variants."""

    cost_aware = True

    def __init__(self, compact_ratio: float = 2.0) -> None:
        self._heap: List[_SlotType] = []
        self._live = 0
        self._seq = 0
        self._inflation = 0.0
        self._compact_ratio = compact_ratio

    def _priority(self, entry: PolicyEntry) -> float:
        raise NotImplementedError

    @property
    def inflation(self) -> float:
        return self._inflation

    def _push(self, entry: PolicyEntry) -> None:
        self._seq += 1
        entry.policy_seq = self._seq
        entry.policy_h = self._inflation + self._priority(entry)
        slot: _SlotType = [entry.policy_h, self._seq, entry]
        entry.policy_ref = slot
        heapq.heappush(self._heap, slot)

    def _invalidate(self, entry: PolicyEntry) -> None:
        slot = entry.policy_ref
        if slot is None or slot[2] is not entry:
            raise ValueError("entry is not tracked by this policy")
        slot[2] = None
        entry.policy_ref = None

    def _maybe_compact(self) -> None:
        if len(self._heap) > self._compact_ratio * max(self._live, 16):
            self._heap = [s for s in self._heap if s[2] is not None]
            heapq.heapify(self._heap)

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        self._prepare_insert(entry)
        self._push(entry)
        self._live += 1

    def _prepare_insert(self, entry: PolicyEntry) -> None:
        """Hook for subclasses (e.g. frequency reset)."""

    def touch(self, entry: PolicyEntry) -> None:
        self._invalidate(entry)
        self._prepare_touch(entry)
        self._push(entry)
        self._maybe_compact()

    def _prepare_touch(self, entry: PolicyEntry) -> None:
        """Hook for subclasses (e.g. frequency bump)."""

    def remove(self, entry: PolicyEntry) -> None:
        self._invalidate(entry)
        self._live -= 1
        self._maybe_compact()

    def select_victim(self) -> PolicyEntry:
        while self._heap:
            slot = heapq.heappop(self._heap)
            entry = slot[2]
            if entry is None:
                continue
            entry.policy_ref = None
            self._live -= 1
            self._inflation = entry.policy_h
            return entry
        raise EvictionError(f"{self.name} tracks no entries")

    def __len__(self) -> int:
        return self._live

    def entries(self) -> Iterator[PolicyEntry]:
        return iter([s[2] for s in self._heap if s[2] is not None])

    def peek_victim(self) -> Optional[PolicyEntry]:
        while self._heap and self._heap[0][2] is None:
            heapq.heappop(self._heap)
        return self._heap[0][2] if self._heap else None


class GDSPolicy(_HeapGreedyDual):
    """GreedyDual-Size: ``H = L + cost / size``."""

    name = "gds"

    def _priority(self, entry: PolicyEntry) -> float:
        return entry.cost / max(entry.size, 1)


class GDSFPolicy(_HeapGreedyDual):
    """GDSF (Squid): ``H = L + frequency * cost / size``.

    The access-frequency count is kept in ``policy_slot``.
    """

    name = "gdsf"

    def _prepare_insert(self, entry: PolicyEntry) -> None:
        entry.policy_slot = 1

    def _prepare_touch(self, entry: PolicyEntry) -> None:
        entry.policy_slot = (entry.policy_slot or 1) + 1

    def _priority(self, entry: PolicyEntry) -> float:
        return (entry.policy_slot or 1) * entry.cost / max(entry.size, 1)
