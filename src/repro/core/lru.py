"""Least-Recently-Used replacement — memcached's default policy.

Memcached keeps one LRU queue per slab class and evicts from the tail
(Section 4.2 of the paper).  Insertions and reuses move the entry to the
head; every operation is O(1).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.intrusive import IntrusiveList
from repro.core.policy import EvictionError, PolicyEntry, ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Classic LRU over an intrusive doubly-linked list."""

    name = "lru"
    cost_aware = False

    def __init__(self) -> None:
        self._queue = IntrusiveList()

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        self.check_cost(cost)
        entry.cost = cost
        self._queue.push_head(entry)

    def touch(self, entry: PolicyEntry) -> None:
        self._queue.move_to_head(entry)

    def remove(self, entry: PolicyEntry) -> None:
        self._queue.remove(entry)

    def select_victim(self) -> PolicyEntry:
        victim = self._queue.pop_tail()
        if victim is None:
            raise EvictionError("LRU queue is empty")
        return victim  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._queue)

    def entries(self) -> Iterator[PolicyEntry]:
        return iter(self._queue)  # type: ignore[return-value]

    def peek_victim(self) -> Optional[PolicyEntry]:
        return self._queue.tail  # type: ignore[return-value]

    def iter_tail(self) -> Iterator[PolicyEntry]:
        """Iterate from the eviction end; used by expiry scans."""
        return self._queue.iter_tail()  # type: ignore[return-value]
