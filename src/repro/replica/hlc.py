"""Hybrid logical clock — replication versions that survive clock skew.

Every replicated write carries one 64-bit-ish packed version::

    version = (physical_milliseconds << 20) | logical_counter

Comparison of two versions is plain integer comparison: the physical
component dominates (a write from a wall-clock second later always wins),
and the logical counter breaks ties among writes inside the same
millisecond *and* carries causality when a node's wall clock lags — a
node that has **observed** version ``v`` never issues a version ``<= v``,
even if its own clock reads earlier.  That is the classic HLC guarantee
(Kulkarni et al.): timestamps are close to physical time but never
violate happened-before, which is exactly what last-writer-wins conflict
resolution between replicas needs.

The replicated client pool stamps one version per write and sends the
same version to every replica leg, so converged replicas agree not just
on values but on versions — making the per-slot digests of
:mod:`repro.replica.antientropy` directly comparable.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

#: low bits reserved for the logical counter (2**20 writes per ms before
#: the counter carries into the physical component)
LOGICAL_BITS = 20
LOGICAL_MASK = (1 << LOGICAL_BITS) - 1


def pack_version(physical_ms: int, logical: int) -> int:
    """Pack (physical milliseconds, logical counter) into one int."""
    return (physical_ms << LOGICAL_BITS) | (logical & LOGICAL_MASK)


def physical_ms(version: int) -> int:
    """The physical-milliseconds component of a packed version."""
    return version >> LOGICAL_BITS


def logical_count(version: int) -> int:
    """The logical-counter component of a packed version."""
    return version & LOGICAL_MASK


class HybridLogicalClock:
    """Monotone version source merged with observed remote versions.

    Thread-safe: the supervisor's anti-entropy thread and an event loop's
    write path may share one instance (ticks are rare enough that the
    plain lock never shows up in profiles — only replicated writes pay
    it).

    Args:
        wall: wall-clock source in seconds (injectable for tests).
    """

    __slots__ = ("_wall", "_last", "_lock")

    def __init__(self, wall: Callable[[], float] = time.time) -> None:
        self._wall = wall
        self._last = 0
        self._lock = threading.Lock()

    def tick(self) -> int:
        """A fresh version, strictly greater than any issued or observed."""
        with self._lock:
            now_ms = int(self._wall() * 1000)
            last = self._last
            phys = physical_ms(last)
            if now_ms > phys:
                fresh = pack_version(now_ms, 0)
            else:
                logical = logical_count(last) + 1
                if logical > LOGICAL_MASK:  # counter carry (pathological)
                    phys += 1
                    logical = 0
                fresh = pack_version(phys, logical)
            self._last = fresh
            return fresh

    def observe(self, version: int) -> int:
        """Merge a remote version; later ticks sort after it.

        Returns the clock's current high-water mark.
        """
        with self._lock:
            if version > self._last:
                self._last = version
            return self._last

    @property
    def last(self) -> int:
        """The highest version issued or observed so far (0 = none)."""
        return self._last
