"""Quorum writes and read failover over replicated shard groups.

:class:`ReplicatedStorePool` is the replication-aware sibling of
:class:`repro.aio.pool.AsyncStorePool`.  The ketama ring maps each key to
a *group* name; every member of that group holds the full key range the
group owns, so any member can answer any of the group's keys.  Writes fan
out to every member carrying a hybrid-logical-clock version
(:mod:`repro.replica.hlc`) and return once ``write_quorum`` members have
acknowledged — the remaining legs finish in the background (W=1 is
fire-and-forget async replication, W=R is fully synchronous).  Reads hit
the key's primary member and step along the group's other members when
the primary's breaker is open or its request fails.

Conflict resolution is last-writer-wins on the version: a replica that
already holds a *newer* version answers ``NOT_STORED``, which counts as
a quorum acknowledgement — the write is durably resolved, just not the
winner.  Divergence that slips past quorum (a member down during the
write) is closed by :class:`repro.replica.antientropy.AntiEntropyRepairer`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.aio.client import AsyncStoreClient
from repro.aio.pool import MultiGetResult
from repro.cluster.consistent import ConsistentHashRing
from repro.kvstore.hashtable import fnv1a_64
from repro.obs.aggregate import sum_numeric_stats
from repro.replica.hlc import HybridLogicalClock

#: statuses that durably resolve a write on a replica.  ``NOT_STORED`` is
#: a last-writer-wins reject: the replica already holds something newer,
#: so this write's outcome is decided — it lost.  Counting it as an ack
#: keeps quorum math about *durability*, not about winning.
ACK_STATUSES = (b"STORED", b"NOT_STORED")


class QuorumWriteError(ConnectionError):
    """A write could not reach its quorum of replica acknowledgements.

    Subclasses :class:`ConnectionError` so existing retry policies and
    partial-failure handling treat it like any other node failure.
    """

    def __init__(self, message: str, acks: int = 0, needed: int = 0) -> None:
        super().__init__(message)
        self.acks = acks
        self.needed = needed


class ReplicatedStorePool:
    """One logical cache over replica groups behind a hash ring.

    Args:
        groups: group name -> {member name -> connected client}.  Member
            order matters: it defines the rotation used to spread per-key
            primaries across the group.
        replicas: virtual ring points per *group* (ketama-style; routing
            is by group name, so it agrees with any
            :class:`~repro.shard.router.ShardRouter` built over the same
            group names).
        write_quorum: acknowledgements required before a write returns
            (clamped to group size).  ``None`` = all members (synchronous
            replication); ``1`` = primary-only with async fan-out.
        hlc: the clock stamping write versions.  Share one instance per
            process so versions issued by different pools interleave
            correctly; defaults to a private clock.
        registry: optional :class:`~repro.obs.registry.MetricsRegistry`
            mirroring the pool's counters as ``replica_*`` metrics.
    """

    def __init__(
        self,
        groups: Dict[str, Dict[str, AsyncStoreClient]],
        replicas: int = 100,
        write_quorum: Optional[int] = None,
        hlc: Optional[HybridLogicalClock] = None,
        registry=None,
    ) -> None:
        if not groups:
            raise ValueError("a replicated pool needs at least one group")
        for group, members in groups.items():
            if not members:
                raise ValueError(f"group {group!r} has no members")
        self._groups: Dict[str, Tuple[str, ...]] = {
            group: tuple(members) for group, members in groups.items()
        }
        self._clients: Dict[str, AsyncStoreClient] = {}
        for members in groups.values():
            self._clients.update(members)
        self._ring = ConsistentHashRing(list(self._groups), replicas=replicas)
        sizes = {len(m) for m in self._groups.values()}
        self.replication = max(sizes)
        if write_quorum is not None and write_quorum < 1:
            raise ValueError("write_quorum must be >= 1")
        self.write_quorum = write_quorum
        self.hlc = hlc if hlc is not None else HybridLogicalClock()
        self._registry = registry
        #: reads answered by a non-primary member after the primary was
        #: skipped (breaker open) or failed
        self.replica_failovers = 0
        #: writes that raised :class:`QuorumWriteError`
        self.quorum_failures = 0
        #: replication legs of *acknowledged* writes that failed — whether
        #: before quorum completed or in the background after it.  Each is
        #: known divergence the anti-entropy loop will repair.
        self.async_write_failures = 0
        #: per-member operation counters, for balance diagnostics
        self.member_ops: Dict[str, int] = {name: 0 for name in self._clients}
        #: background replication legs still in flight
        self._pending: Set[asyncio.Task] = set()

    # -- routing ---------------------------------------------------------------

    @property
    def groups(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self._groups)

    @property
    def clients(self) -> Dict[str, AsyncStoreClient]:
        return dict(self._clients)

    def group_for(self, key: bytes) -> str:
        group = self._ring.node_for(key)
        assert group is not None
        return group

    def replica_set(self, key: bytes) -> List[str]:
        """The key's member preference list: primary first, then peers.

        All members hold the group's full key range, so the "primary" is
        purely a load-spreading choice: the group's member tuple rotated
        by ``fnv1a_64(key) % R``, giving every member an equal share of
        primaries without any extra routing state.
        """
        members = self._groups[self.group_for(key)]
        start = fnv1a_64(key) % len(members)
        return [members[(start + i) % len(members)] for i in range(len(members))]

    def _breaker_open(self, member: str) -> bool:
        # .state, never allow(): a routing pre-check must not consume the
        # half-open probe that would have closed the breaker
        breaker = self._clients[member].breaker
        return breaker is not None and breaker.state == "open"

    def _read_order(self, key: bytes) -> List[str]:
        """Members to try for a read: healthy first, open-breaker last."""
        order = self.replica_set(key)
        healthy = [m for m in order if not self._breaker_open(m)]
        condemned = [m for m in order if self._breaker_open(m)]
        return healthy + condemned

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.counter(f"replica_{name}").inc()

    # -- reads -----------------------------------------------------------------

    async def get(self, key: bytes) -> Optional[bytes]:
        """GET with replica failover.

        Tries the primary, then each remaining member; a member whose
        breaker is hard-open is demoted to last resort rather than
        skipped outright, so a fully-condemned group still surfaces a
        real error instead of an invented miss.
        """
        last_error: Optional[BaseException] = None
        for index, member in enumerate(self._read_order(key)):
            self.member_ops[member] += 1
            try:
                value = await self._clients[member].get(key)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_error = exc
                continue
            if index > 0:
                self.replica_failovers += 1
                self._count("failover_total")
            return value
        assert last_error is not None
        raise last_error

    async def multi_get(
        self, keys: Sequence[bytes], partial: bool = False
    ) -> MultiGetResult:
        """Concurrent multi-key GET with per-group member failover.

        Round 1 batches each key to its primary member (one MGET frame
        per member).  Keys on a failed leg are re-batched to their next
        untried member and the rounds repeat until every key is answered
        or has exhausted its group.  The partial-failure contract matches
        :meth:`AsyncStorePool.multi_get`: ``partial=False`` raises the
        first surviving error, ``partial=True`` returns the merged hits
        with ``result.errors`` attributing keys no member could answer.
        """
        merged = MultiGetResult()
        if not keys:
            return merged
        tried: Dict[bytes, Set[str]] = {key: set() for key in keys}
        pending: List[bytes] = list(dict.fromkeys(keys))
        while pending:
            batches: Dict[str, List[bytes]] = {}
            unroutable: List[bytes] = []
            for key in pending:
                member = next(
                    (m for m in self._read_order(key) if m not in tried[key]),
                    None,
                )
                if member is None:
                    unroutable.append(key)
                    continue
                tried[key].add(member)
                batches.setdefault(member, []).append(key)
            if not batches:
                break
            members = list(batches)
            results = await asyncio.gather(
                *(self._clients[m].get_many(batches[m]) for m in members),
                return_exceptions=True,
            )
            pending = list(unroutable)
            for member, found in zip(members, results):
                self.member_ops[member] += 1
                if isinstance(found, BaseException):
                    for key in batches[member]:
                        merged.errors[key] = found
                        pending.append(key)
                    continue
                for key in batches[member]:
                    merged.errors.pop(key, None)
                merged.update(found)
            if unroutable and len(unroutable) == len(pending):
                break  # nothing left to try anywhere
        failovers = sum(
            1 for key, members in tried.items()
            if len(members) > 1 and key not in merged.errors
        )
        if failovers:
            self.replica_failovers += failovers
            for _ in range(failovers):
                self._count("failover_total")
        if merged.errors and not partial:
            raise next(iter(merged.errors.values()))
        return merged

    # -- writes ----------------------------------------------------------------

    def _quorum_for(self, nmembers: int) -> int:
        if self.write_quorum is None:
            return nmembers
        return min(self.write_quorum, nmembers)

    def _track_background(self, tasks: Sequence[asyncio.Task]) -> None:
        """Keep post-quorum legs alive and tally the ones that fail."""
        for task in tasks:
            self._pending.add(task)
            task.add_done_callback(self._background_done)

    def _background_done(self, task: asyncio.Task) -> None:
        self._pending.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.async_write_failures += 1
            self._count("async_write_failures")

    async def set(
        self,
        key: bytes,
        value: bytes,
        cost: int = 0,
        exptime: float = 0,
        flags: int = 0,
    ) -> bool:
        """Quorum SET: stamp a version, fan out, return at W acks.

        Every member receives the same versioned SET concurrently.  The
        call returns as soon as ``write_quorum`` legs resolve (STORED or
        a NOT_STORED last-writer-wins reject both count — see
        :data:`ACK_STATUSES`); the rest continue in the background and
        failures there are tallied in :attr:`async_write_failures` for
        the anti-entropy loop to close.  Raises :class:`QuorumWriteError`
        when too few members can acknowledge.

        Returns True when at least one acknowledging member actually
        stored the value (False = the write lost LWW everywhere).
        """
        members = self.replica_set(key)
        needed = self._quorum_for(len(members))
        version = self.hlc.tick()
        tasks = {
            asyncio.ensure_future(
                self._clients[member].set(
                    key, value, cost=cost, exptime=exptime,
                    flags=flags, version=version,
                )
            ): member
            for member in members
        }
        for member in members:
            self.member_ops[member] += 1
        acks = 0
        stored = False
        failures = 0
        pending = set(tasks)
        try:
            while pending and acks < needed:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    if task.exception() is not None:
                        failures += 1
                    else:
                        acks += 1
                        stored = stored or bool(task.result())
        finally:
            if pending:
                self._track_background(list(pending))
        if acks < needed:
            self.quorum_failures += 1
            self._count("quorum_failures")
            raise QuorumWriteError(
                f"write quorum not met for {key!r}: "
                f"{acks}/{needed} acks ({failures} members failed)",
                acks=acks, needed=needed,
            )
        if failures:
            # the write is acknowledged but some member never took it:
            # that is real divergence, tallied whether the leg failed
            # before quorum resolved or in the background after it
            self.async_write_failures += failures
            for _ in range(failures):
                self._count("async_write_failures")
        return stored

    async def multi_set(
        self,
        items: Sequence[Tuple[bytes, bytes, int]],
        exptime: float = 0,
    ) -> int:
        """Quorum MSET: one versioned frame per member, per-item quorum.

        Items are stamped and grouped per replica group; each member of a
        group receives the full group batch concurrently.  An item is
        acknowledged once ``write_quorum`` members answered STORED or
        NOT_STORED for it.  Returns the number of items that achieved
        quorum; raises :class:`QuorumWriteError` if any item did not
        (after every leg resolved — batch legs are not left running).
        """
        if not items:
            return 0
        grouped: Dict[str, List[Tuple[bytes, bytes, int, int]]] = {}
        for item in items:
            key, value, cost = item[0], item[1], item[2]
            stamped = (key, value, cost, self.hlc.tick())
            grouped.setdefault(self.group_for(key), []).append(stamped)
        legs: List[Tuple[str, str]] = []  # (group, member)
        coros = []
        for group, batch in grouped.items():
            for member in self._groups[group]:
                legs.append((group, member))
                coros.append(
                    self._clients[member].set_many_statuses(
                        batch, exptime=exptime
                    )
                )
        results = await asyncio.gather(*coros, return_exceptions=True)
        acks: Dict[Tuple[str, int], int] = {}
        for (group, member), statuses in zip(legs, results):
            self.member_ops[member] += 1
            if isinstance(statuses, BaseException):
                continue
            for index, status in enumerate(statuses):
                if status in ACK_STATUSES:
                    acks[(group, index)] = acks.get((group, index), 0) + 1
        acked = 0
        short = 0
        for group, batch in grouped.items():
            needed = self._quorum_for(len(self._groups[group]))
            for index in range(len(batch)):
                if acks.get((group, index), 0) >= needed:
                    acked += 1
                else:
                    short += 1
        if short:
            self.quorum_failures += short
            self._count("quorum_failures")
            raise QuorumWriteError(
                f"{short} of {len(items)} items missed their write quorum",
                acks=acked, needed=len(items),
            )
        return acked

    async def delete(self, key: bytes) -> bool:
        """DELETE on every member; True if any member had the key.

        Deletes are unversioned (memcached semantics): a member that was
        down keeps a stale item until anti-entropy or its own expiry
        removes it.
        """
        members = self.replica_set(key)
        results = await asyncio.gather(
            *(self._clients[m].delete(key) for m in members),
            return_exceptions=True,
        )
        for member in members:
            self.member_ops[member] += 1
        deleted = [r for r in results if r is True]
        if not deleted and all(isinstance(r, BaseException) for r in results):
            raise next(r for r in results if isinstance(r, BaseException))
        return bool(deleted)

    # -- lifecycle / fleet -----------------------------------------------------

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Wait for background replication legs to finish (tests, shutdown)."""
        if not self._pending:
            return
        await asyncio.wait(set(self._pending), timeout=timeout)

    async def aggregate_stats(self) -> Dict[str, int]:
        members = list(self._clients)
        snapshots = await asyncio.gather(
            *(self._clients[m].stats() for m in members)
        )
        return sum_numeric_stats(snapshots)

    async def flush_all(self) -> None:
        await asyncio.gather(*(c.flush_all() for c in self._clients.values()))

    async def aclose(self) -> None:
        for task in list(self._pending):
            task.cancel()
        if self._pending:
            await asyncio.gather(*self._pending, return_exceptions=True)
        await asyncio.gather(*(c.aclose() for c in self._clients.values()))

    async def __aenter__(self) -> "ReplicatedStorePool":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
