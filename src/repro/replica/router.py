"""Key→replica-group routing plus the address book for every member.

:class:`ReplicaRouter` generalises :class:`repro.shard.router.ShardRouter`
from one worker per shard to a *group* of workers per shard.  The ketama
ring is keyed by group name — exactly the names a ShardRouter would use
for an unreplicated fleet, so routing agrees byte-for-byte with R=1
deployments — while each group fans out to R member endpoints.  Member
names (``{group}.r{j}``) never enter the ring: a member that dies and
respawns on a new port keeps its name and its group, and no key moves.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.aio.backoff import RetryPolicy
from repro.aio.client import AsyncStoreClient
from repro.cluster.consistent import ConsistentHashRing
from repro.replica.hlc import HybridLogicalClock
from repro.replica.pool import ReplicatedStorePool
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker

Endpoint = Tuple[str, int]


class ReplicaRouter:
    """Key→group assignment plus member address books.

    Args:
        groups: group name -> {member name -> (host, port)}.  Member
            order defines the primary rotation inside each group (see
            :meth:`ReplicatedStorePool.replica_set`).
        replicas: virtual ring points per group.
    """

    def __init__(
        self,
        groups: Dict[str, Dict[str, Endpoint]],
        replicas: int = 100,
    ) -> None:
        if not groups:
            raise ValueError("a replica router needs at least one group")
        member_names = set()
        for group, members in groups.items():
            if not members:
                raise ValueError(f"group {group!r} has no members")
            for name in members:
                if name in member_names:
                    raise ValueError(f"duplicate member name {name!r}")
                member_names.add(name)
        self.replicas = replicas
        self._groups: Dict[str, Dict[str, Endpoint]] = {
            group: dict(members) for group, members in groups.items()
        }
        self._ring = ConsistentHashRing(list(self._groups), replicas=replicas)

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def groups(self) -> Tuple[str, ...]:
        return tuple(self._groups)

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    @property
    def replication(self) -> int:
        """R: the (largest) group size."""
        return max(len(members) for members in self._groups.values())

    def group_for(self, key: bytes) -> str:
        """The replica group owning ``key`` (pure ring lookup)."""
        group = self._ring.node_for(key)
        assert group is not None  # the ring is never empty
        return group

    def members_of(self, group: str) -> Dict[str, Endpoint]:
        """The group's member name -> (host, port) address book."""
        return dict(self._groups[group])

    def endpoints_for(self, key: bytes) -> List[Endpoint]:
        """Member addresses for ``key``'s group, in member order."""
        return list(self._groups[self.group_for(key)].values())

    def update_endpoint(self, member: str, host: str, port: int) -> None:
        """Repoint one member (post-respawn) — routing does not change."""
        for members in self._groups.values():
            if member in members:
                members[member] = (host, port)
                return
        raise KeyError(f"unknown member {member!r}")

    def connect_pool(
        self,
        pool_size: int = 4,
        timeout: Optional[float] = 5.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        registry=None,
        trace=None,
        tracer=None,
        batching: str = "mget",
        write_quorum: Optional[int] = None,
        hlc: Optional[HybridLogicalClock] = None,
    ) -> ReplicatedStorePool:
        """A live :class:`ReplicatedStorePool` over the current endpoints.

        Mirrors :meth:`ShardRouter.connect_pool` — same retry, breaker,
        tracing, and batching plumbing, applied per *member* (each member
        gets its own breaker named after it, so one dead replica opens
        one breaker and its group's reads fail over without penalising
        the healthy members).  ``write_quorum``/``hlc`` configure the
        replication layer; see :class:`ReplicatedStorePool`.
        """
        group_clients: Dict[str, Dict[str, AsyncStoreClient]] = {}
        for group, members in self._groups.items():
            group_clients[group] = {
                member: AsyncStoreClient(
                    host, port, pool_size=pool_size, timeout=timeout,
                    retry=retry, rng=rng,
                    breaker=(
                        CircuitBreaker(
                            breaker_policy, name=member,
                            registry=registry, trace=trace,
                        )
                        if breaker_policy is not None else None
                    ),
                    tracer=tracer,
                    batching=batching,
                )
                for member, (host, port) in members.items()
            }
        return ReplicatedStorePool(
            group_clients, replicas=self.replicas,
            write_quorum=write_quorum, hlc=hlc, registry=registry,
        )
