"""Rebuild a respawned replica's key range from a live peer.

A replica that crashes and respawns comes back *empty* — correct for a
cache, but it would answer misses for every key its group owns until the
workload refills it (and, under replication, it would drag the group's
digests apart until anti-entropy catches up).  :func:`bootstrap_store`
closes that window before the worker opens its port: it streams the
peer's full listing slot-by-slot (``keys``) and pulls values in batched
MGET frames (the PR 8 batched protocol — one round trip per ``batch``
keys), storing each item locally **with its original version and cost**
so last-writer-wins stays correct and GD-Wheel ranks the warmed items
exactly as the peer does.

Bootstrap is best-effort by design: a peer dying mid-stream leaves a
partially-warmed store, which is strictly better than an empty one, and
the anti-entropy loop repairs the remainder.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.kvstore.errors import NotStoredError, OutOfMemoryError
from repro.kvstore.slab import ObjectTooLargeError
from repro.protocol.client import CostAwareClient, TCPTransport

Endpoint = Tuple[str, int]


def bootstrap_store(
    store,
    peers: Sequence[Endpoint],
    nslots: int = 64,
    batch: int = 256,
    timeout: float = 5.0,
) -> int:
    """Warm ``store`` from the first reachable peer; returns keys loaded.

    Args:
        store: the local :class:`~repro.kvstore.store.KVStore` (or
            thread-safe wrapper) — written directly, before any server
            accepts connections.
        peers: (host, port) of same-group members to try, in order.
        nslots: listing granularity (one ``keys`` round trip per slot).
        batch: keys per MGET value pull.
        timeout: per-peer TCP connect/read timeout.

    Items the local store must reject — too large for its limits, or out
    of memory under its GD-Wheel pressure — are skipped, not fatal: the
    respawned member may be configured smaller than its peer, and a cache
    warm-up must never crash the worker it warms.  Every loaded key bumps
    ``stats.bootstrap_keys``.
    """
    for host, port in peers:
        try:
            client = CostAwareClient(TCPTransport(host, port, timeout=timeout))
        except OSError:
            continue
        try:
            loaded = _stream_from_peer(store, client, nslots, batch)
        except (OSError, ConnectionError):
            # peer died mid-stream: keep what we got, let anti-entropy
            # finish the job rather than hunting for another peer and
            # re-pulling everything
            return _loaded_so_far(store)
        finally:
            try:
                client.close()
            except OSError:
                pass
        return loaded
    return 0


def _loaded_so_far(store) -> int:
    stats = getattr(store, "stats", None)
    return getattr(stats, "bootstrap_keys", 0) if stats is not None else 0


def _stream_from_peer(
    store, client: CostAwareClient, nslots: int, batch: int
) -> int:
    loaded = 0
    stats = getattr(store, "stats", None)
    for slot in range(nslots):
        entries = client.key_entries(slot, nslots).entries
        meta = {
            key: (version, cost, flags, exptime)
            for key, version, cost, flags, exptime in entries
        }
        keys = list(meta)
        for start in range(0, len(keys), batch):
            chunk = keys[start:start + batch]
            values = client.get_many(chunk)
            for key in chunk:
                value = values.get(key)
                if value is None:
                    continue  # expired/evicted on the peer mid-pull
                version, cost, flags, exptime = meta[key]
                try:
                    store.set(
                        key, value, cost=cost, exptime=exptime,
                        flags=flags, version=version,
                    )
                except NotStoredError:
                    continue  # already holds something newer
                except (ObjectTooLargeError, OutOfMemoryError):
                    continue  # local limits differ from the peer's
                loaded += 1
                if stats is not None:
                    stats.bootstrap_keys += 1
    return loaded
