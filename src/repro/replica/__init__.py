"""``repro.replica`` — per-shard replica groups over the serving stack.

A single-copy shard that dies loses its keyspace until clients repopulate
it; under GD-Wheel's cost model that is not a uniform tax but a
recomputation storm concentrated on exactly the high-cost working set the
policy was built to protect.  This package layers replication onto the
existing supervisor/router machinery:

* :class:`~repro.replica.hlc.HybridLogicalClock` — per-key versions that
  order writes across processes without clock trust (last-writer-wins).
* :class:`~repro.replica.router.ReplicaRouter` — the ketama ring maps a
  key to a *replica group*; all R members hold the same key subset, so
  digests between members are directly comparable.
* :class:`~repro.replica.pool.ReplicatedStorePool` — quorum writes
  (W=1 fire-and-forget async replication up to W=R synchronous), reads
  that fail over past open breakers and dead members.
* :class:`~repro.replica.antientropy.AntiEntropyRepairer` — per-slot
  key→version digest exchange and repair (re-SET at original cost, so
  GD-Wheel H-values stay honest).
* :func:`~repro.replica.bootstrap.bootstrap_store` — a respawned worker
  copies its key range from a live peer (streamed MGET) before serving.
"""

from repro.replica.antientropy import AntiEntropyRepairer, RepairReport
from repro.replica.bootstrap import bootstrap_store
from repro.replica.hlc import (
    HybridLogicalClock,
    logical_count,
    pack_version,
    physical_ms,
)
from repro.replica.pool import QuorumWriteError, ReplicatedStorePool
from repro.replica.router import ReplicaRouter

__all__ = [
    "AntiEntropyRepairer",
    "HybridLogicalClock",
    "QuorumWriteError",
    "RepairReport",
    "ReplicaRouter",
    "ReplicatedStorePool",
    "bootstrap_store",
    "logical_count",
    "pack_version",
    "physical_ms",
]
