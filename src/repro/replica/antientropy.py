"""Anti-entropy: detect and repair divergence inside replica groups.

Quorum writes keep replicas converged *while every member is up*; a
member that was down (or partitioned) during a write comes back holding
stale or missing keys.  The repairer closes that gap the way Dynamo-style
stores do, but with the cheap flat digest PR 9's wire protocol added
instead of Merkle trees: every member of a group answers one ``digest``
frame — per-slot ``(count, xor-hash)`` over its live ``(key, version)``
pairs — and only slots whose hashes disagree are expanded with ``keys``
and repaired key-by-key.

Repairs re-SET each winning ``(value, version)`` **at its original cost**
(and flags/exptime), carried in the ``keys`` listing precisely so the
receiving GD-Wheel policy computes the same H-value the original write
produced — a repaired replica ranks the item exactly like the primary
does, keeping the paper's cost-aware eviction honest across the group.
Versions make re-SETs idempotent: a member that already holds the winner
answers ``NOT_STORED`` and nothing changes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.protocol.client import CostAwareClient

Endpoint = Tuple[str, int]

#: key -> (version, cost, flags, exptime) as reported by ``keys``
EntryMap = Dict[bytes, Tuple[int, int, int, float]]


class RepairReport:
    """What one anti-entropy sweep saw and did."""

    __slots__ = (
        "groups_checked", "groups_skipped", "slots_diverged",
        "keys_repaired", "keys_failed", "errors",
    )

    def __init__(self) -> None:
        #: groups with >= 2 reachable members that were compared
        self.groups_checked = 0
        #: groups skipped because fewer than 2 members answered
        self.groups_skipped = 0
        #: digest slots whose (count, hash) disagreed across members
        self.slots_diverged = 0
        #: re-SETs that landed (STORED, or NOT_STORED = already newer)
        self.keys_repaired = 0
        #: re-SETs the target refused (object too large / out of memory)
        self.keys_failed = 0
        #: (group, member, error string) for members that dropped mid-sweep
        self.errors: List[Tuple[str, str, str]] = []

    @property
    def clean(self) -> bool:
        """True when the sweep found no divergence and hit no errors."""
        return (
            self.slots_diverged == 0
            and self.groups_skipped == 0
            and not self.errors
        )

    def __repr__(self) -> str:
        return (
            f"RepairReport(checked={self.groups_checked}, "
            f"skipped={self.groups_skipped}, "
            f"diverged={self.slots_diverged}, "
            f"repaired={self.keys_repaired}, failed={self.keys_failed}, "
            f"errors={len(self.errors)})"
        )


class AntiEntropyRepairer:
    """Digest-compare-and-repair over a fleet of replica groups.

    Uses short-lived synchronous connections (one per member per sweep) —
    the sweep runs from a background thread or an operator tool, never on
    the serving path.

    Args:
        group_endpoints: group name -> {member name -> (host, port)}.
        nslots: digest slots per comparison.  More slots = finer
            divergence localisation (fewer keys listed per diverged
            slot), at one ``SLOT`` line each on the wire.
        batch: keys per MGET when pulling winning values.
        timeout: per-member TCP connect/read timeout.
    """

    def __init__(
        self,
        group_endpoints: Dict[str, Dict[str, Endpoint]],
        nslots: int = 64,
        batch: int = 256,
        timeout: float = 5.0,
    ) -> None:
        if nslots < 1:
            raise ValueError("nslots must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.group_endpoints = {
            group: dict(members)
            for group, members in group_endpoints.items()
        }
        self.nslots = nslots
        self.batch = batch
        self.timeout = timeout

    # -- connection plumbing ---------------------------------------------------

    def _connect(self, endpoint: Endpoint) -> CostAwareClient:
        from repro.protocol.client import TCPTransport

        return CostAwareClient(
            TCPTransport(endpoint[0], endpoint[1], timeout=self.timeout)
        )

    def _connect_group(
        self, group: str, report: RepairReport
    ) -> Dict[str, CostAwareClient]:
        clients: Dict[str, CostAwareClient] = {}
        for member, endpoint in self.group_endpoints[group].items():
            try:
                clients[member] = self._connect(endpoint)
            except OSError as exc:
                report.errors.append((group, member, str(exc)))
        return clients

    @staticmethod
    def _close_all(clients: Iterable[CostAwareClient]) -> None:
        for client in clients:
            try:
                client.close()
            except OSError:
                pass

    # -- one sweep -------------------------------------------------------------

    def run_once(self) -> RepairReport:
        """Compare digests in every group and repair what diverged."""
        report = RepairReport()
        for group in self.group_endpoints:
            self._repair_group(group, report)
        return report

    def _repair_group(self, group: str, report: RepairReport) -> None:
        clients = self._connect_group(group, report)
        try:
            if len(clients) < 2:
                # nothing to compare against — a lone survivor is, by
                # definition, the group's truth until a peer returns
                report.groups_skipped += 1
                return
            digests: Dict[str, Dict[int, Tuple[int, int]]] = {}
            for member, client in list(clients.items()):
                try:
                    digests[member] = client.digest(self.nslots).as_map()
                except (OSError, ConnectionError) as exc:
                    report.errors.append((group, member, str(exc)))
                    client.close()
                    del clients[member]
            if len(digests) < 2:
                report.groups_skipped += 1
                return
            report.groups_checked += 1
            diverged = self._diverged_slots(digests.values())
            report.slots_diverged += len(diverged)
            for slot in diverged:
                self._repair_slot(group, clients, slot, report)
        finally:
            self._close_all(clients.values())

    def _diverged_slots(
        self, digests: Iterable[Dict[int, Tuple[int, int]]]
    ) -> List[int]:
        slots: Dict[int, set] = {}
        for digest in digests:
            for slot in range(self.nslots):
                slots.setdefault(slot, set()).add(digest.get(slot, (0, 0)))
        return sorted(slot for slot, seen in slots.items() if len(seen) > 1)

    def _repair_slot(
        self,
        group: str,
        clients: Dict[str, CostAwareClient],
        slot: int,
        report: RepairReport,
    ) -> None:
        # 1. list the slot on every member
        listings: Dict[str, EntryMap] = {}
        for member, client in list(clients.items()):
            try:
                response = client.key_entries(slot, self.nslots)
            except (OSError, ConnectionError) as exc:
                report.errors.append((group, member, str(exc)))
                client.close()
                del clients[member]
                continue
            listings[member] = {
                key: (version, cost, flags, exptime)
                for key, version, cost, flags, exptime in response.entries
            }
        if len(listings) < 2:
            return
        # 2. the winner per key = the highest version anywhere; a member
        #    reporting version 0 (an unversioned local write) never beats
        #    a versioned entry, and version-0 entries only propagate to
        #    members missing the key outright
        winners: Dict[bytes, Tuple[int, str]] = {}  # key -> (version, member)
        for member, entries in listings.items():
            for key, (version, _, _, _) in entries.items():
                best = winners.get(key)
                if best is None or version > best[0]:
                    winners[key] = (version, member)
        # 3. what each member is missing or holding stale
        needs: Dict[str, List[bytes]] = {}
        for key, (version, source) in winners.items():
            for member in listings:
                if member == source:
                    continue
                held = listings[member].get(key)
                if held is None or (version and held[0] < version):
                    needs.setdefault(member, []).append(key)
        if not needs:
            return
        # 4. pull winning values (batched per source), push re-SETs that
        #    carry the original version AND cost so the target's GD-Wheel
        #    H-value matches the origin's
        by_source: Dict[str, List[bytes]] = {}
        for keys in needs.values():
            for key in keys:
                by_source.setdefault(winners[key][1], []).append(key)
        values: Dict[bytes, bytes] = {}
        for source, keys in by_source.items():
            client = clients.get(source)
            if client is None:
                continue
            unique = list(dict.fromkeys(keys))
            for start in range(0, len(unique), self.batch):
                chunk = unique[start:start + self.batch]
                try:
                    values.update(client.get_many(chunk))
                except (OSError, ConnectionError) as exc:
                    report.errors.append((group, source, str(exc)))
                    break
        for member, keys in needs.items():
            client = clients.get(member)
            if client is None:
                continue
            source_listing = listings
            for key in keys:
                value = values.get(key)
                if value is None:
                    continue  # expired/evicted between listing and fetch
                version, source = winners[key]
                _, cost, flags, exptime = source_listing[source][key]
                try:
                    client.set(
                        key, value, cost=cost, exptime=exptime,
                        flags=flags, version=version,
                    )
                except (OSError, ConnectionError) as exc:
                    report.errors.append((group, member, str(exc)))
                    break
                except Exception:
                    # SERVER_ERROR (too large / OOM) — the target simply
                    # cannot hold this item; eviction pressure differs
                    report.keys_failed += 1
                else:
                    # STORED or NOT_STORED both leave the member holding
                    # a version >= the winner: converged either way
                    report.keys_repaired += 1

    # -- convergence probe -----------------------------------------------------

    def converged(self, group: Optional[str] = None) -> bool:
        """Are replica digests identical right now?

        Compares every member's full digest (all ``nslots`` slots) within
        ``group``, or within every group when ``group`` is None.  Any
        unreachable member counts as *not* converged — absence of
        evidence is not convergence.
        """
        groups = [group] if group is not None else list(self.group_endpoints)
        for name in groups:
            clients: Dict[str, CostAwareClient] = {}
            try:
                for member, endpoint in self.group_endpoints[name].items():
                    try:
                        clients[member] = self._connect(endpoint)
                    except OSError:
                        return False
                seen = set()
                for client in clients.values():
                    try:
                        digest = client.digest(self.nslots)
                    except (OSError, ConnectionError):
                        return False
                    seen.add(tuple(sorted(digest.as_map().items())))
                if len(seen) > 1:
                    return False
            finally:
                self._close_all(clients.values())
        return True
