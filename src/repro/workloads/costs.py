"""Recomputation-cost distributions (Table 2's "Cost Distribution" column).

A cost distribution assigns a *fixed* integer cost to each key: the
recomputation cost is a property of the computation behind the key (a
database query, a page render), so the same key always costs the same.
Distributions therefore expose :meth:`assign`, producing one cost per key
id, rather than a per-request sampler.

The paper's distributions:

* grouped — e.g. the baseline ``10-30 (80%); 120-180 (15%); 350-450 (5%)``:
  each key joins a group by the given proportions and draws uniformly
  within the group's range.
* fixed — workload 4 (``10 (100%)``), the control where cost-awareness
  cannot help.
* uniform — workload 5 (``20-400``), a cost for every key with no group
  structure.
* coarse — workload 10, the baseline groups quantized to multiples of 10,
  testing sensitivity to cost precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


class CostDistribution:
    """Assigns integer recomputation costs to key ids."""

    #: short label used in workload tables
    name: str = "abstract"

    def assign(self, num_keys: int, seed: int) -> np.ndarray:
        """One cost per key id; deterministic for a given seed."""
        raise NotImplementedError

    def max_cost(self) -> int:
        """Upper bound on any assigned cost (sizes the wheels)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CostGroup:
    """One cost band: uniform integers in [low, high] with a proportion."""

    low: int
    high: int
    proportion: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError("need 0 <= low <= high")
        if not 0 < self.proportion <= 1:
            raise ValueError("proportion must be in (0, 1]")


class GroupedCosts(CostDistribution):
    """Costs drawn from weighted uniform bands, one band per key."""

    def __init__(self, groups: Sequence[CostGroup], name: str = "grouped",
                 quantum: int = 1) -> None:
        """
        Args:
            groups: the cost bands; proportions must sum to 1.
            quantum: costs are drawn in units of ``quantum`` (workload 10's
                "coarse" distribution uses 10).
        """
        if not groups:
            raise ValueError("at least one group required")
        total = sum(g.proportion for g in groups)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"group proportions sum to {total}, expected 1")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.groups = tuple(groups)
        self.name = name
        self.quantum = quantum

    def assign(self, num_keys: int, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        proportions = np.array([g.proportion for g in self.groups])
        membership = rng.choice(len(self.groups), size=num_keys, p=proportions)
        costs = np.empty(num_keys, dtype=np.int64)
        for idx, group in enumerate(self.groups):
            mask = membership == idx
            costs[mask] = rng.integers(group.low, group.high + 1, size=int(mask.sum()))
        return costs * self.quantum

    def max_cost(self) -> int:
        return max(g.high for g in self.groups) * self.quantum

    def group_of(self, cost: int) -> int:
        """Index of the band containing ``cost`` (for CDF reports)."""
        unit = cost // self.quantum
        for idx, group in enumerate(self.groups):
            if group.low <= unit <= group.high:
                return idx
        raise ValueError(f"cost {cost} falls in no group")


class FixedCost(CostDistribution):
    """Every key has the same cost — workload 4."""

    def __init__(self, cost: int) -> None:
        if cost < 0:
            raise ValueError("cost must be non-negative")
        self.cost = cost
        self.name = f"fixed({cost})"

    def assign(self, num_keys: int, seed: int) -> np.ndarray:
        return np.full(num_keys, self.cost, dtype=np.int64)

    def max_cost(self) -> int:
        return self.cost


class UniformCosts(CostDistribution):
    """Uniform integer costs in [low, high] — workload 5's "Random"."""

    def __init__(self, low: int, high: int) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self.name = f"uniform({low}-{high})"

    def assign(self, num_keys: int, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.integers(self.low, self.high + 1, size=num_keys, dtype=np.int64)

    def max_cost(self) -> int:
        return self.high


def cost_groups(*bands: Tuple[int, int, float]) -> Tuple[CostGroup, ...]:
    """Shorthand: ``cost_groups((10, 30, 0.80), (120, 180, 0.15), ...)``."""
    return tuple(CostGroup(low, high, prop) for low, high, prop in bands)
