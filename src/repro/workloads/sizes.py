"""Value-size assignment (the "Key/Value Size" column of Tables 2 and 3).

Single-size workloads give every value the same size; multiple-size
workloads tie the value size to the key's cost group ("the higher the cost,
the larger the value size", Section 6.3) so each cost group lands in its
own slab class and the rebalancing policies matter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.workloads.costs import GroupedCosts


class SizeDistribution:
    """Assigns a value size (bytes) to each key id."""

    name: str = "abstract"

    def assign(self, num_keys: int, costs: np.ndarray, seed: int) -> np.ndarray:
        raise NotImplementedError

    def max_size(self) -> int:
        raise NotImplementedError


class FixedSize(SizeDistribution):
    """All values are ``size`` bytes — the single-size workloads."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.size = size
        self.name = f"fixed({size})"

    def assign(self, num_keys: int, costs: np.ndarray, seed: int) -> np.ndarray:
        return np.full(num_keys, self.size, dtype=np.int64)

    def max_size(self) -> int:
        return self.size


class ParetoSizes(SizeDistribution):
    """Generalized-Pareto value sizes — Atikoglu et al.'s measurement.

    The SIGMETRICS'12 Facebook workload study (the paper's Section 6.1
    source) models value sizes of the general-purpose pool as a
    generalized Pareto distribution (location 0, scale ~214.5, shape
    ~0.35): most values a few hundred bytes with a long tail.  Sizes are
    clipped to ``[min_size, max_size]`` so the slab allocator's range is
    respected.
    """

    def __init__(
        self,
        scale: float = 214.5,
        shape: float = 0.348,
        min_bytes: int = 1,
        max_bytes: int = 8_192,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if not 0 < shape < 1:
            raise ValueError("shape must be in (0, 1)")
        if not 1 <= min_bytes <= max_bytes:
            raise ValueError("need 1 <= min_bytes <= max_bytes")
        self.scale = scale
        self.shape = shape
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes
        self.name = f"pareto(scale={scale},shape={shape})"

    def assign(self, num_keys: int, costs: np.ndarray, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        # inverse-CDF sampling of the generalized Pareto (location 0)
        u = rng.random(num_keys)
        sizes = self.scale / self.shape * (np.power(1.0 - u, -self.shape) - 1.0)
        return np.clip(sizes.astype(np.int64), self.min_bytes, self.max_bytes)

    def max_size(self) -> int:
        return self.max_bytes


class CostGroupSizes(SizeDistribution):
    """One value size per cost group — the multiple-size workloads.

    ``sizes[i]`` is the value size for keys whose cost falls in
    ``groups.groups[i]``; e.g. the paper's 192/256/320 bytes for the
    10-30 / 120-180 / 350-450 bands.
    """

    def __init__(self, groups: GroupedCosts, sizes: Sequence[int]) -> None:
        if len(sizes) != len(groups.groups):
            raise ValueError("one size per cost group required")
        self.groups = groups
        self.sizes = tuple(sizes)
        self.name = "by-cost-group(" + "/".join(str(s) for s in sizes) + ")"

    def assign(self, num_keys: int, costs: np.ndarray, seed: int) -> np.ndarray:
        out = np.empty(num_keys, dtype=np.int64)
        unit = costs // self.groups.quantum
        assigned = np.zeros(num_keys, dtype=bool)
        for idx, group in enumerate(self.groups.groups):
            mask = (unit >= group.low) & (unit <= group.high) & ~assigned
            out[mask] = self.sizes[idx]
            assigned |= mask
        if not assigned.all():
            raise ValueError("some costs fall outside every cost group")
        return out

    def max_size(self) -> int:
        return max(self.sizes)
