"""The paper's workload suite (Tables 1, 2, and 3) and its materialization.

A :class:`WorkloadSpec` is the declarative row from the paper's tables:
key size, value-size rule, cost distribution, and Zipf skew.  Materializing
it for a chosen key-universe size yields a :class:`Workload`: concrete key
bytes, a fixed cost per key, a fixed value size per key, and a seeded
Zipf request sampler whose popularity ranking is decorrelated from key id
(and hence from cost/size assignment) by a seeded permutation.

``SINGLE_SIZE_WORKLOADS`` holds Table 2's ten rows; ``MULTI_SIZE_WORKLOADS``
holds Table 3's three rows; ``TABLE1_MOTIVATION`` reproduces the RUBiS /
TPC-W cache-miss-cost categorization of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workloads.costs import (
    CostDistribution,
    FixedCost,
    GroupedCosts,
    UniformCosts,
    cost_groups,
)
from repro.workloads.sizes import CostGroupSizes, FixedSize, SizeDistribution
from repro.workloads.zipf import DEFAULT_THETA, ZipfSampler, rank_permutation

DEFAULT_KEY_SIZE = 16

#: The paper's three cost bands, shared by most workloads (Table 2 row 1).
BASELINE_GROUPS = cost_groups((10, 30, 0.80), (120, 180, 0.15), (350, 450, 0.05))
RUBIS_GROUPS = cost_groups((10, 30, 0.20), (120, 180, 0.75), (350, 450, 0.05))
TPCW_GROUPS = cost_groups((10, 30, 0.50), (120, 180, 0.25), (350, 450, 0.25))


@dataclass(frozen=True)
class WorkloadSpec:
    """A row of Table 2 or Table 3."""

    workload_id: str
    name: str
    costs: CostDistribution
    sizes: SizeDistribution
    key_size: int = DEFAULT_KEY_SIZE
    theta: float = DEFAULT_THETA
    multi_size: bool = False

    def materialize(self, num_keys: int, seed: int = 0) -> "Workload":
        """Build the concrete key universe for this spec."""
        return Workload(spec=self, num_keys=num_keys, seed=seed)


class Workload:
    """A materialized workload: keys, per-key costs/sizes, request sampler.

    Per-key facts (key bytes, cost, value) are materialized once into
    plain Python lists so the driver's per-request loop pays a single
    list index instead of a method call plus numpy scalar conversion.
    Values of equal size share one ``bytes`` object (contents don't
    matter), so the value table costs one object per distinct size.
    """

    __slots__ = (
        "spec",
        "num_keys",
        "seed",
        "costs",
        "value_sizes",
        "_rank_to_key",
        "_sampler",
        "_keys",
        "_cost_list",
        "_value_list",
    )

    def __init__(self, spec: WorkloadSpec, num_keys: int, seed: int) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        self.spec = spec
        self.num_keys = num_keys
        self.seed = seed
        self.costs = spec.costs.assign(num_keys, seed=seed * 7 + 1)
        self.value_sizes = spec.sizes.assign(num_keys, self.costs, seed=seed * 7 + 2)
        self._rank_to_key = rank_permutation(num_keys, seed=seed * 7 + 3)
        self._sampler = ZipfSampler(num_keys, theta=spec.theta, seed=seed * 7 + 4)
        width = spec.key_size - 1
        self._keys: List[bytes] = [
            b"k%0*d" % (width, i) for i in range(num_keys)
        ]
        self._cost_list: List[int] = self.costs.tolist()
        shared = {int(s): b"v" * int(s) for s in np.unique(self.value_sizes)}
        self._value_list: List[bytes] = [
            shared[s] for s in self.value_sizes.tolist()
        ]

    def key_bytes(self, key_id: int) -> bytes:
        return self._keys[key_id]

    def cost_of(self, key_id: int) -> int:
        return self._cost_list[key_id]

    def value_of(self, key_id: int) -> bytes:
        """A synthetic value of the assigned size (contents don't matter)."""
        return self._value_list[key_id]

    # -- batch views for the driver's hot loop (index once per request) --------

    def key_list(self) -> List[bytes]:
        """Key bytes per key id (shared list; do not mutate)."""
        return self._keys

    def cost_list(self) -> List[int]:
        """Recomputation cost per key id (shared list; do not mutate)."""
        return self._cost_list

    def value_list(self) -> List[bytes]:
        """Value bytes per key id, shared per size (do not mutate)."""
        return self._value_list

    def sample_requests(self, count: int) -> np.ndarray:
        """``count`` Zipf-distributed key ids (popularity decorrelated)."""
        ranks = self._sampler.sample(count)
        return self._rank_to_key[ranks]

    def warmup_order(self, count: Optional[int] = None, seed: int = 1234) -> np.ndarray:
        """Key ids to SET during warmup, in seeded random order.

        The paper controls "the number of SET requests in the warmup phase"
        to reach the target LRU hit rate; callers pass ``count`` when they
        want to load only part of the universe.
        """
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.num_keys)
        if count is not None:
            order = order[:count]
        return order

    def max_cost(self) -> int:
        return self.spec.costs.max_cost()

    def footprint_of(self, key_id: int, header: int) -> int:
        return header + self.spec.key_size + int(self.value_sizes[key_id])


def _single(workload_id: str, name: str, costs: CostDistribution,
            value_size: int) -> WorkloadSpec:
    return WorkloadSpec(
        workload_id=workload_id,
        name=name,
        costs=costs,
        sizes=FixedSize(value_size),
    )


#: Table 2 — the ten single-size workload configurations.
SINGLE_SIZE_WORKLOADS: Dict[str, WorkloadSpec] = {
    "1": _single("1", "Baseline", GroupedCosts(BASELINE_GROUPS, "baseline"), 256),
    "2": _single("2", "RUBiS", GroupedCosts(RUBIS_GROUPS, "rubis"), 256),
    "3": _single("3", "TPC-W", GroupedCosts(TPCW_GROUPS, "tpcw"), 256),
    "4": _single("4", "Same", FixedCost(10), 256),
    "5": _single("5", "Random", UniformCosts(20, 400), 256),
    "6": _single("6", "Small_1", GroupedCosts(BASELINE_GROUPS, "baseline"), 64),
    "7": _single("7", "Small_2", GroupedCosts(BASELINE_GROUPS, "baseline"), 128),
    "8": _single("8", "Big_1", GroupedCosts(BASELINE_GROUPS, "baseline"), 2048),
    "9": _single("9", "Big_2", GroupedCosts(BASELINE_GROUPS, "baseline"), 4096),
    "10": _single(
        "10",
        "Coarse",
        GroupedCosts(
            cost_groups((1, 3, 0.80), (12, 18, 0.15), (35, 45, 0.05)),
            "coarse",
            quantum=10,
        ),
        256,
    ),
}

#: Table 3 — the three multiple-size workloads (192/256/320-byte values,
#: larger value for the costlier group so each group gets its own slab class).
MULTI_SIZE_VALUE_SIZES = (192, 256, 320)


def _multi(workload_id: str, name: str, groups) -> WorkloadSpec:
    grouped = GroupedCosts(groups, name.lower())
    return WorkloadSpec(
        workload_id=workload_id,
        name=name,
        costs=grouped,
        sizes=CostGroupSizes(grouped, MULTI_SIZE_VALUE_SIZES),
        multi_size=True,
    )


MULTI_SIZE_WORKLOADS: Dict[str, WorkloadSpec] = {
    "1": _multi("1", "Baseline", BASELINE_GROUPS),
    "2": _multi("2", "RUBiS", RUBIS_GROUPS),
    "3": _multi("3", "TPC-W", TPCW_GROUPS),
}


@dataclass(frozen=True)
class MotivationRow:
    """One row of Table 1 (extra response times on cache misses)."""

    category: str
    low_ms: int
    high_ms: int
    proportion: float


#: Table 1 — cost variation observed by Bouchenak et al. in RUBiS and TPC-W.
TABLE1_MOTIVATION: Dict[str, Tuple[MotivationRow, ...]] = {
    "RUBiS": (
        MotivationRow("Low", 10, 10, 0.17),
        MotivationRow("Mid", 60, 95, 0.79),
        MotivationRow("High", 240, 240, 0.04),
    ),
    "TPC-W": (
        MotivationRow("Low", 10, 25, 0.48),
        MotivationRow("Mid", 45, 150, 0.25),
        MotivationRow("High", 210, 300, 0.27),
    ),
}


def motivation_cost_ratio(rows: Tuple[MotivationRow, ...]) -> float:
    """max/min cost ratio for a Table 1 benchmark (the paper cites ~1:20)."""
    low = min(r.low_ms for r in rows)
    high = max(r.high_ms for r in rows)
    return high / low
