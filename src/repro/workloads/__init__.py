"""YCSB-style workload generation: Zipf keys, cost/size distributions,
the paper's Table 1/2/3 workload suite, and recordable traces."""

from repro.workloads.costs import (
    CostDistribution,
    CostGroup,
    FixedCost,
    GroupedCosts,
    UniformCosts,
    cost_groups,
)
from repro.workloads.sizes import (
    CostGroupSizes,
    FixedSize,
    ParetoSizes,
    SizeDistribution,
)
from repro.workloads.trace import Trace
from repro.workloads.ycsb import (
    BASELINE_GROUPS,
    DEFAULT_KEY_SIZE,
    MULTI_SIZE_VALUE_SIZES,
    MULTI_SIZE_WORKLOADS,
    MotivationRow,
    RUBIS_GROUPS,
    SINGLE_SIZE_WORKLOADS,
    TABLE1_MOTIVATION,
    TPCW_GROUPS,
    Workload,
    WorkloadSpec,
    motivation_cost_ratio,
)
from repro.workloads.zipf import (
    DEFAULT_THETA,
    HotspotSampler,
    ScrambledZipfianGenerator,
    UniformSampler,
    YCSBZipfianGenerator,
    ZipfSampler,
    rank_permutation,
)

__all__ = [
    "BASELINE_GROUPS",
    "CostDistribution",
    "CostGroup",
    "CostGroupSizes",
    "DEFAULT_KEY_SIZE",
    "DEFAULT_THETA",
    "FixedCost",
    "FixedSize",
    "GroupedCosts",
    "HotspotSampler",
    "MULTI_SIZE_VALUE_SIZES",
    "MULTI_SIZE_WORKLOADS",
    "MotivationRow",
    "ParetoSizes",
    "RUBIS_GROUPS",
    "SINGLE_SIZE_WORKLOADS",
    "ScrambledZipfianGenerator",
    "SizeDistribution",
    "TABLE1_MOTIVATION",
    "TPCW_GROUPS",
    "Trace",
    "UniformCosts",
    "UniformSampler",
    "Workload",
    "WorkloadSpec",
    "YCSBZipfianGenerator",
    "ZipfSampler",
    "cost_groups",
    "motivation_cost_ratio",
    "rank_permutation",
]
