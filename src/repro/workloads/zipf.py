"""Zipf-distributed key choosers — the YCSB request distribution.

The paper's measurement phase issues GETs whose keys follow a Zipf
distribution (Section 6.2), matching Atikoglu et al.'s observation that
Facebook's Memcached requests are power-law distributed ("about 50% of
key-value pairs were accessed in only 1% of requests").

Two interchangeable implementations:

* :class:`ZipfSampler` — exact: materializes the probability vector for the
  ``n`` keys and vector-samples with numpy.  Preferred for simulations
  (fast batch generation, exact distribution).
* :class:`YCSBZipfianGenerator` — the incremental rejection-free generator
  YCSB itself uses (Gray et al.'s "Quickly generating billion-record
  synthetic databases" algorithm), including the *scrambled* variant that
  decorrelates popularity from key id.  Kept for fidelity and for streaming
  use where n is huge.

Both draw ranks in ``0 … n-1`` where rank 0 is the most popular; callers
map ranks to keys through a seeded permutation (see :func:`rank_permutation`)
so that popularity is independent of insertion order and cost assignment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: YCSB's default Zipfian constant.
DEFAULT_THETA = 0.99


def rank_permutation(n: int, seed: int) -> np.ndarray:
    """A seeded permutation mapping popularity rank -> key id."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n)


class ZipfSampler:
    """Exact Zipf sampling over ``n`` ranks via a materialized pmf."""

    def __init__(self, n: int, theta: float = DEFAULT_THETA, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.n = n
        self.theta = theta
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
        self._probs = weights / weights.sum()
        self._rng = np.random.default_rng(seed)

    def sample(self, count: int) -> np.ndarray:
        """``count`` ranks, 0 = most popular."""
        return self._rng.choice(self.n, size=count, p=self._probs)

    def probability(self, rank: int) -> float:
        """Exact probability of a rank (for distribution tests)."""
        return float(self._probs[rank])


class YCSBZipfianGenerator:
    """YCSB's incremental Zipfian generator (Gray et al.'s algorithm).

    Generates one rank per :meth:`next_rank` call in O(1) after an O(n)
    zeta precomputation, without materializing the pmf.
    """

    def __init__(self, n: int, theta: float = DEFAULT_THETA,
                 seed: Optional[int] = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 < theta < 1:
            raise ValueError("this generator requires 0 < theta < 1")
        self.n = n
        self.theta = theta
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return float(np.sum(1.0 / np.power(np.arange(1, n + 1), theta)))

    def next_rank(self) -> int:
        """One Zipf-distributed rank in ``0 … n-1``."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def sample(self, count: int) -> np.ndarray:
        """Vectorized batch of ``count`` ranks (same algorithm, numpy math)."""
        u = self._rng.random(count)
        uz = u * self._zetan
        ranks = (self.n * np.power(self._eta * u - self._eta + 1.0, self._alpha)).astype(
            np.int64
        )
        ranks = np.where(uz < 1.0, 0, ranks)
        ranks = np.where((uz >= 1.0) & (uz < 1.0 + 0.5**self.theta), 1, ranks)
        return np.clip(ranks, 0, self.n - 1)


class ScrambledZipfianGenerator:
    """YCSB's scrambled Zipfian: popular ranks spread across the id space.

    Applies an FNV-style hash to the underlying Zipfian rank so that the
    popular items are not the low ids.  Collisions mean the popularity of
    individual ids deviates slightly from exact Zipf — exactly as in YCSB.
    """

    _FNV_OFFSET = 0xCBF29CE484222325
    _FNV_PRIME = 0x100000001B3

    def __init__(self, n: int, theta: float = DEFAULT_THETA, seed: int = 0) -> None:
        self.n = n
        self._base = YCSBZipfianGenerator(n, theta, seed)

    @classmethod
    def _fnv_mix(cls, value: int) -> int:
        h = cls._FNV_OFFSET
        for _ in range(8):
            h = ((h ^ (value & 0xFF)) * cls._FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h

    def next_rank(self) -> int:
        return self._fnv_mix(self._base.next_rank()) % self.n

    def sample(self, count: int) -> np.ndarray:
        base = self._base.sample(count)
        # vectorized FNV over the 8 little-endian bytes of each rank
        h = np.full(count, self._FNV_OFFSET, dtype=np.uint64)
        v = base.astype(np.uint64)
        prime = np.uint64(self._FNV_PRIME)
        for shift in range(0, 64, 8):
            byte = (v >> np.uint64(shift)) & np.uint64(0xFF)
            h = (h ^ byte) * prime
        return (h % np.uint64(self.n)).astype(np.int64)


class UniformSampler:
    """Uniform key chooser (for control experiments)."""

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self._rng = np.random.default_rng(seed)

    def sample(self, count: int) -> np.ndarray:
        return self._rng.integers(0, self.n, size=count)


class HotspotSampler:
    """YCSB's hotspot distribution: a hot set absorbs most of the traffic.

    ``hot_fraction`` of the ranks receive ``hot_opn_fraction`` of the
    requests, uniformly within each side.  YCSB defaults: 20% of the keys
    take 80% of the operations.
    """

    def __init__(
        self,
        n: int,
        hot_fraction: float = 0.2,
        hot_opn_fraction: float = 0.8,
        seed: int = 0,
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 < hot_fraction < 1:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0 < hot_opn_fraction < 1:
            raise ValueError("hot_opn_fraction must be in (0, 1)")
        self.n = n
        self.hot_count = max(1, int(n * hot_fraction))
        self.hot_opn_fraction = hot_opn_fraction
        self._rng = np.random.default_rng(seed)

    def sample(self, count: int) -> np.ndarray:
        hot = self._rng.random(count) < self.hot_opn_fraction
        ranks = np.empty(count, dtype=np.int64)
        n_hot = int(hot.sum())
        ranks[hot] = self._rng.integers(0, self.hot_count, size=n_hot)
        cold_span = max(self.n - self.hot_count, 1)
        ranks[~hot] = self.hot_count + self._rng.integers(
            0, cold_span, size=count - n_hot
        )
        return np.clip(ranks, 0, self.n - 1)
