"""Request traces: record, replay, save, and load.

The equivalence tests and offline bounds need the *same* request sequence
fed to multiple policies; a :class:`Trace` freezes one (key id, cost,
value size) sequence so replays are exact.  Traces serialize to a compact
``.npz`` for reuse across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Tuple, Union

import numpy as np

from repro.workloads.ycsb import Workload


@dataclass(frozen=True)
class Trace:
    """An immutable request trace over a fixed key universe."""

    key_ids: np.ndarray  # per-request key id, int64
    costs: np.ndarray  # per-key cost, int64, indexed by key id
    value_sizes: np.ndarray  # per-key value size, int64, indexed by key id

    def __post_init__(self) -> None:
        if self.costs.shape != self.value_sizes.shape:
            raise ValueError("costs and value_sizes must align")
        if len(self.key_ids) and self.key_ids.max() >= len(self.costs):
            raise ValueError("trace references key ids beyond the universe")

    def __len__(self) -> int:
        return len(self.key_ids)

    @property
    def num_keys(self) -> int:
        return len(self.costs)

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (key_id, cost, value_size) per request."""
        costs, sizes = self.costs, self.value_sizes
        for key_id in self.key_ids:
            yield int(key_id), int(costs[key_id]), int(sizes[key_id])

    @classmethod
    def from_workload(cls, workload: Workload, num_requests: int) -> "Trace":
        """Record a trace by sampling the workload's request stream."""
        return cls(
            key_ids=workload.sample_requests(num_requests),
            costs=workload.costs.copy(),
            value_sizes=workload.value_sizes.copy(),
        )

    def save(self, path: Union[str, Path]) -> None:
        np.savez_compressed(
            path,
            key_ids=self.key_ids,
            costs=self.costs,
            value_sizes=self.value_sizes,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        with np.load(path) as data:
            return cls(
                key_ids=data["key_ids"],
                costs=data["costs"],
                value_sizes=data["value_sizes"],
            )

    def total_cost_of_misses(self, missed: np.ndarray) -> int:
        """Sum of costs for the requests flagged in the boolean ``missed``."""
        if missed.shape != self.key_ids.shape:
            raise ValueError("missed mask must align with requests")
        return int(self.costs[self.key_ids[missed]].sum())
