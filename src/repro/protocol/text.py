"""The memcached text protocol, extended with the paper's cost token.

Wire format (request lines end with ``\\r\\n``; value blocks follow storage
command lines)::

    get <key> [<key> ...]\r\n
    set <key> <flags> <exptime> <bytes> [cost <cost>] [noreply]\r\n<data>\r\n
    add/replace ...                                 (same shape as set)
    delete <key> [noreply]\r\n
    touch <key> <exptime> [noreply]\r\n
    flush_all [noreply]\r\n
    stats [slabs|items|settings|metrics|trace|reset]\r\n
    quit\r\n

The paper modifies the SET protocol "so that clients are able to optionally
send cost information with each key-value pair" (Section 4.3).  We encode
the extension as a ``cost <n>`` token pair before the optional ``noreply``;
servers that don't know the token would reject it, and clients that omit it
speak stock memcached — the same compatibility story as the paper's.

:class:`RequestParser` is an incremental parser over a byte stream (framing
included), suitable for feeding raw socket reads.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

from repro.protocol.commands import (
    DeleteCommand,
    FlushCommand,
    GetCommand,
    GetResponse,
    IncrCommand,
    NumberResponse,
    ProtocolError,
    QuitCommand,
    SimpleResponse,
    StatsCommand,
    StatsResponse,
    StoreCommand,
    TouchCommand,
    ValueResponse,
)

CRLF = b"\r\n"
MAX_KEY_LENGTH = 250
MAX_LINE_LENGTH = 8192

#: trailing ``get`` token carrying a trace context (kept literal here so
#: the parser does not import the tracing stack; the codec lives in
#: :mod:`repro.obs.tracing` and both spell the same prefix)
_TRACE_TOKEN_PREFIX = b"tctx:"

Command = Union[
    GetCommand,
    StoreCommand,
    IncrCommand,
    DeleteCommand,
    TouchCommand,
    FlushCommand,
    StatsCommand,
    QuitCommand,
]

_STORAGE_VERBS = (b"set", b"add", b"replace", b"append", b"prepend", b"cas")


def _validate_key(key: bytes) -> bytes:
    if not key or len(key) > MAX_KEY_LENGTH:
        raise ProtocolError(f"bad key length {len(key)}")
    if any(c <= 32 or c == 127 for c in key):
        raise ProtocolError("key contains whitespace or control characters")
    return key


def _parse_int(token: bytes, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ProtocolError(f"bad {what}: {token!r}") from None


class RequestParser:
    """Incremental request parser: feed bytes, iterate complete commands.

    Consumption is offset-based: parsed commands advance ``_start`` instead
    of ``del``-ing the buffer prefix, so a deep pipelined read is scanned
    without shifting the remaining bytes once per command.  The consumed
    prefix is dropped in one amortized compaction on the next :meth:`feed`.
    """

    __slots__ = ("_buffer", "_start", "_pending", "_pending_bytes")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._start = 0  # consumed prefix length (compacted on feed)
        self._pending: Optional[StoreCommand] = None
        self._pending_bytes = 0

    def feed(self, data: bytes) -> None:
        buffer = self._buffer
        if self._start:
            del buffer[: self._start]
            self._start = 0
        buffer.extend(data)
        if len(buffer) > MAX_LINE_LENGTH + self._pending_bytes + 2:
            # guard against unframed garbage flooding the buffer
            if self._pending is None and buffer.find(CRLF) < 0:
                raise ProtocolError("request line too long")

    def __iter__(self) -> Iterator[Command]:
        while True:
            command = self._next_command()
            if command is None:
                return
            yield command

    def _next_command(self) -> Optional[Command]:
        if self._pending is not None:
            return self._finish_store()
        start = self._start
        newline = self._buffer.find(CRLF, start)
        if newline < 0:
            return None
        line = bytes(self._buffer[start:newline])
        self._start = newline + 2
        return self._parse_line(line)

    def _finish_store(self) -> Optional[StoreCommand]:
        need = self._pending_bytes + 2  # data + CRLF
        start = self._start
        if len(self._buffer) - start < need:
            return None
        end = start + self._pending_bytes
        data = bytes(self._buffer[start:end])
        trailer = bytes(self._buffer[end : end + 2])
        self._start = start + need
        pending = self._pending
        self._pending = None
        self._pending_bytes = 0
        if trailer != CRLF:
            raise ProtocolError("bad data chunk terminator")
        # the pending command is private to this parser and not yet
        # published, so filling in its value beats re-constructing the
        # frozen dataclass (field-by-field object.__setattr__) per SET
        object.__setattr__(pending, "value", data)
        return pending

    def _parse_line(self, line: bytes) -> Command:
        if not line:
            raise ProtocolError("empty command line")
        parts = line.split()
        verb = parts[0].lower()
        if verb == b"get" or verb == b"gets":
            if len(parts) < 2:
                raise ProtocolError("get requires at least one key")
            keys = parts[1:]
            # A trailing ``tctx:`` pseudo-key is a trace-context token
            # (repro.obs.tracing): strip it so dispatch never looks it up.
            # Servers predating this extension treat the token as one more
            # requested key and answer a miss — that asymmetry is the whole
            # backward-compatibility story, so only the *last* token is
            # interpreted and at least one real key must remain.
            trace_token = None
            if len(keys) > 1 and keys[-1].startswith(_TRACE_TOKEN_PREFIX):
                trace_token = keys[-1]
                keys = keys[:-1]
            return GetCommand(
                keys=tuple(_validate_key(k) for k in keys),
                with_cas=verb == b"gets",
                trace_token=trace_token,
            )
        if verb in (b"incr", b"decr"):
            if len(parts) not in (3, 4):
                raise ProtocolError(f"{verb.decode()} <key> <delta> [noreply]")
            delta = _parse_int(parts[2], "delta")
            if delta < 0:
                raise ProtocolError("delta must be non-negative")
            noreply = len(parts) == 4 and parts[3] == b"noreply"
            return IncrCommand(
                key=_validate_key(parts[1]),
                delta=delta,
                negative=verb == b"decr",
                noreply=noreply,
            )
        if verb in _STORAGE_VERBS:
            return self._parse_storage(verb, parts)
        if verb == b"delete":
            if len(parts) not in (2, 3):
                raise ProtocolError("delete <key> [noreply]")
            noreply = len(parts) == 3 and parts[2] == b"noreply"
            if len(parts) == 3 and not noreply:
                raise ProtocolError(f"unexpected token {parts[2]!r}")
            return DeleteCommand(key=_validate_key(parts[1]), noreply=noreply)
        if verb == b"touch":
            if len(parts) not in (3, 4):
                raise ProtocolError("touch <key> <exptime> [noreply]")
            noreply = len(parts) == 4 and parts[3] == b"noreply"
            return TouchCommand(
                key=_validate_key(parts[1]),
                exptime=float(_parse_int(parts[2], "exptime")),
                noreply=noreply,
            )
        if verb == b"flush_all":
            noreply = len(parts) == 2 and parts[1] == b"noreply"
            return FlushCommand(noreply=noreply)
        if verb == b"stats":
            if len(parts) > 2:
                raise ProtocolError(
                    "stats [slabs|items|settings|metrics|trace|tier|reset]"
                )
            sub = parts[1].decode() if len(parts) == 2 else ""
            if sub not in ("", "slabs", "items", "settings",
                           "metrics", "trace", "tier", "reset"):
                raise ProtocolError(f"unknown stats subcommand {sub!r}")
            return StatsCommand(subcommand=sub)
        if verb == b"quit":
            return QuitCommand()
        raise ProtocolError(f"unknown command {verb!r}")

    def _parse_storage(self, verb: bytes, parts: List[bytes]) -> Optional[Command]:
        if len(parts) < 5:
            raise ProtocolError(
                f"{verb.decode()} <key> <flags> <exptime> <bytes> "
                "[cost <cost>] [noreply]"
            )
        key = _validate_key(parts[1])
        flags = _parse_int(parts[2], "flags")
        exptime = float(_parse_int(parts[3], "exptime"))
        nbytes = _parse_int(parts[4], "bytes")
        if nbytes < 0:
            raise ProtocolError("negative byte count")
        cost = 0
        noreply = False
        cas_unique = None
        rest = parts[5:]
        if verb == b"cas":
            if not rest:
                raise ProtocolError("cas requires a cas_unique token")
            cas_unique = _parse_int(rest.pop(0), "cas_unique")
        while rest:
            token = rest.pop(0)
            if token == b"cost":
                if not rest:
                    raise ProtocolError("cost token without a value")
                cost = _parse_int(rest.pop(0), "cost")
                if cost < 0:
                    raise ProtocolError("negative cost")
            elif token == b"noreply":
                noreply = True
            else:
                raise ProtocolError(f"unexpected token {token!r}")
        self._pending = StoreCommand(
            verb=verb.decode(),
            key=key,
            flags=flags,
            exptime=exptime,
            value=b"",
            cost=cost,
            noreply=noreply,
            cas_unique=cas_unique,
        )
        self._pending_bytes = nbytes
        return self._finish_store()


# -- encoding -------------------------------------------------------------------


def encode_command(command: Command) -> bytes:
    """Client side: a command to wire bytes."""
    if isinstance(command, GetCommand):
        verb = b"gets " if command.with_cas else b"get "
        return verb + b" ".join(command.keys) + CRLF
    if isinstance(command, StoreCommand):
        head = b"%s %s %d %d %d" % (
            command.verb.encode(),
            command.key,
            command.flags,
            int(command.exptime),
            len(command.value),
        )
        if command.verb == "cas":
            head += b" %d" % (command.cas_unique or 0)
        if command.cost:
            head += b" cost %d" % command.cost
        if command.noreply:
            head += b" noreply"
        return head + CRLF + command.value + CRLF
    if isinstance(command, IncrCommand):
        verb = b"decr" if command.negative else b"incr"
        line = b"%s %s %d" % (verb, command.key, command.delta)
        if command.noreply:
            line += b" noreply"
        return line + CRLF
    if isinstance(command, DeleteCommand):
        line = b"delete " + command.key
        if command.noreply:
            line += b" noreply"
        return line + CRLF
    if isinstance(command, TouchCommand):
        line = b"touch %s %d" % (command.key, int(command.exptime))
        if command.noreply:
            line += b" noreply"
        return line + CRLF
    if isinstance(command, FlushCommand):
        return (b"flush_all noreply" if command.noreply else b"flush_all") + CRLF
    if isinstance(command, StatsCommand):
        if command.subcommand:
            return b"stats " + command.subcommand.encode() + CRLF
        return b"stats" + CRLF
    if isinstance(command, QuitCommand):
        return b"quit" + CRLF
    raise TypeError(f"cannot encode {type(command).__name__}")


def encode_response_into(out: bytearray, response) -> None:
    """Server side: append one response's wire bytes to ``out``.

    The dispatcher shares one ``out`` buffer across every response of a
    pipelined batch, so serializing N commands allocates one buffer per
    flush instead of one intermediate ``bytes`` per command.
    """
    if isinstance(response, GetResponse):
        for value in response.values:
            data = value.value
            if value.cas_unique is not None:
                out += b"VALUE %s %d %d %d\r\n" % (
                    value.key, value.flags, len(data), value.cas_unique
                )
            else:
                out += b"VALUE %s %d %d\r\n" % (value.key, value.flags, len(data))
            out += data
            out += CRLF
        out += b"END\r\n"
    elif isinstance(response, SimpleResponse):
        out += response.line
        out += CRLF
    elif isinstance(response, NumberResponse):
        out += b"%d\r\n" % response.value
    elif isinstance(response, StatsResponse):
        for name, value in response.stats:
            out += b"STAT %s %s\r\n" % (name.encode(), str(value).encode())
        out += b"END\r\n"
    else:
        raise TypeError(f"cannot encode {type(response).__name__}")


def encode_response(response) -> bytes:
    """Server side: a response object to wire bytes."""
    out = bytearray()
    encode_response_into(out, response)
    return bytes(out)


class ResponseParser:
    """Incremental response parser for the client side.

    Scans the receive buffer in place — no per-attempt snapshot copy of
    the whole buffer; only complete lines and value payloads are sliced
    out as ``bytes``.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def try_parse(self):
        """One complete response, or ``None`` if more bytes are needed."""
        buffer = self._buffer
        newline = buffer.find(CRLF)
        if newline < 0:
            return None
        first = bytes(buffer[:newline])
        if first.startswith(b"VALUE") or first == b"END":
            return self._try_parse_get()
        if first.startswith(b"STAT"):
            return self._try_parse_stats()
        del buffer[: newline + 2]
        if first.isdigit():
            return NumberResponse(value=int(first))
        return SimpleResponse(first)

    def _try_parse_get(self):
        buffer = self._buffer
        values = []
        pos = 0
        while True:
            newline = buffer.find(CRLF, pos)
            if newline < 0:
                return None
            line = bytes(buffer[pos:newline])
            pos = newline + 2
            if line == b"END":
                del buffer[:pos]
                return GetResponse(values=tuple(values))
            if not line.startswith(b"VALUE "):
                raise ProtocolError(f"unexpected line in GET response: {line!r}")
            parts = line.split()
            if len(parts) not in (4, 5):
                raise ProtocolError(f"bad VALUE header: {line!r}")
            nbytes = _parse_int(parts[3], "bytes")
            cas_unique = _parse_int(parts[4], "cas") if len(parts) == 5 else None
            if len(buffer) < pos + nbytes + 2:
                return None
            data = bytes(buffer[pos : pos + nbytes])
            if buffer[pos + nbytes : pos + nbytes + 2] != CRLF:
                raise ProtocolError("bad data terminator in GET response")
            pos += nbytes + 2
            values.append(
                ValueResponse(
                    key=parts[1],
                    flags=_parse_int(parts[2], "flags"),
                    value=data,
                    cas_unique=cas_unique,
                )
            )

    def _try_parse_stats(self):
        buffer = self._buffer
        stats = []
        pos = 0
        while True:
            newline = buffer.find(CRLF, pos)
            if newline < 0:
                return None
            line = bytes(buffer[pos:newline])
            pos = newline + 2
            if line == b"END":
                del buffer[:pos]
                return StatsResponse(stats=stats)
            if not line.startswith(b"STAT "):
                raise ProtocolError(f"unexpected line in STATS response: {line!r}")
            _, name, value = line.split(b" ", 2)
            stats.append((name.decode(), value.decode()))
