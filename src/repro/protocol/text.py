"""The memcached text protocol, extended with the paper's cost token.

Wire format (request lines end with ``\\r\\n``; value blocks follow storage
command lines)::

    get <key> [<key> ...]\r\n
    set <key> <flags> <exptime> <bytes> [cost <cost>] [version <v>] [noreply]\r\n<data>\r\n
    add/replace ...                                 (same shape as set)
    delete <key> [noreply]\r\n
    touch <key> <exptime> [noreply]\r\n
    flush_all [noreply]\r\n
    stats [slabs|items|settings|metrics|trace|reset]\r\n
    digest <nslots>\r\n
    keys <slot> <nslots>\r\n
    quit\r\n

The paper modifies the SET protocol "so that clients are able to optionally
send cost information with each key-value pair" (Section 4.3).  We encode
the extension as a ``cost <n>`` token pair before the optional ``noreply``;
servers that don't know the token would reject it, and clients that omit it
speak stock memcached — the same compatibility story as the paper's.

The replication layer (:mod:`repro.replica`) adds a second optional token
pair — ``version <v>``, a hybrid-logical-clock version used for
last-writer-wins conflict resolution between replicas — and two
anti-entropy commands: ``digest`` (per-slot key/version summary) and
``keys`` (one slot's key metadata, for repair and bootstrap).  Both are
gated behind the same ``accept_batch`` negotiation knob as MGET/MSET.

:class:`RequestParser` is an incremental parser over a byte stream (framing
included), suitable for feeding raw socket reads.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

from repro.protocol.commands import (
    DeleteCommand,
    DigestCommand,
    DigestResponse,
    FlushCommand,
    GetCommand,
    GetResponse,
    IncrCommand,
    KeyListCommand,
    KeyListResponse,
    MultiGetCommand,
    MultiSetCommand,
    MultiSetResponse,
    NumberResponse,
    ProtocolError,
    QuitCommand,
    SimpleResponse,
    StatsCommand,
    StatsResponse,
    StoreCommand,
    TouchCommand,
    ValueResponse,
)

CRLF = b"\r\n"
MAX_KEY_LENGTH = 250
MAX_LINE_LENGTH = 8192
#: upper bound on items in one ``mset`` frame (bounds parser buffering)
MAX_MSET_ITEMS = 4096
#: upper bound on anti-entropy digest slot counts (bounds response size)
MAX_DIGEST_SLOTS = 65536

#: sentinel: the parsed line was an ``mset`` item absorbed into the
#: pending batch — keep scanning, no command is ready yet
_ABSORBED = object()

#: trailing ``get`` token carrying a trace context (kept literal here so
#: the parser does not import the tracing stack; the codec lives in
#: :mod:`repro.obs.tracing` and both spell the same prefix)
_TRACE_TOKEN_PREFIX = b"tctx:"

Command = Union[
    GetCommand,
    MultiGetCommand,
    MultiSetCommand,
    StoreCommand,
    IncrCommand,
    DeleteCommand,
    TouchCommand,
    FlushCommand,
    StatsCommand,
    DigestCommand,
    KeyListCommand,
    QuitCommand,
]

_STORAGE_VERBS = (b"set", b"add", b"replace", b"append", b"prepend", b"cas")


def _validate_key(key: bytes) -> bytes:
    if not key or len(key) > MAX_KEY_LENGTH:
        raise ProtocolError(f"bad key length {len(key)}")
    if any(c <= 32 or c == 127 for c in key):
        raise ProtocolError("key contains whitespace or control characters")
    return key


def _parse_int(token: bytes, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ProtocolError(f"bad {what}: {token!r}") from None


class RequestParser:
    """Incremental request parser: feed bytes, iterate complete commands.

    Consumption is offset-based: parsed commands advance ``_start`` instead
    of ``del``-ing the buffer prefix, so a deep pipelined read is scanned
    without shifting the remaining bytes once per command.  The consumed
    prefix is dropped in one amortized compaction on the next :meth:`feed`.

    Value payloads are sliced straight out of the receive buffer through a
    :class:`memoryview` — one copy at hand-off, no intermediate
    ``bytearray`` slice — which is what keeps deep MSET frames single-pass.

    ``accept_batch=False`` makes the parser behave exactly like its
    pre-MGET/MSET ancestor (``mget``/``mset`` raise "unknown command"),
    which is how the compatibility matrix emulates an old server.
    """

    __slots__ = (
        "_buffer", "_start", "_pending", "_pending_bytes",
        "_mset_items", "_mset_remaining", "_mset_noreply", "accept_batch",
    )

    def __init__(self, accept_batch: bool = True) -> None:
        self._buffer = bytearray()
        self._start = 0  # consumed prefix length (compacted on feed)
        self._pending: Optional[StoreCommand] = None
        self._pending_bytes = 0
        self._mset_items: Optional[List[StoreCommand]] = None
        self._mset_remaining = 0
        self._mset_noreply = False
        self.accept_batch = accept_batch

    def feed(self, data: bytes) -> None:
        buffer = self._buffer
        if self._start:
            del buffer[: self._start]
            self._start = 0
        buffer.extend(data)
        if len(buffer) > MAX_LINE_LENGTH + self._pending_bytes + 2:
            # guard against unframed garbage flooding the buffer
            if self._pending is None and buffer.find(CRLF) < 0:
                raise ProtocolError("request line too long")

    def __iter__(self) -> Iterator[Command]:
        while True:
            command = self._next_command()
            if command is None:
                return
            yield command

    def _next_command(self) -> Optional[Command]:
        # loops only while mset item blocks are being absorbed; every
        # other parse returns (or suspends on a partial frame) directly
        while True:
            if self._pending is not None:
                result = self._finish_store()
            else:
                start = self._start
                newline = self._buffer.find(CRLF, start)
                if newline < 0:
                    return None
                line = bytes(self._buffer[start:newline])
                self._start = newline + 2
                result = self._parse_line(line)
            if result is _ABSORBED:
                continue
            return result

    def _finish_store(self):
        need = self._pending_bytes + 2  # data + CRLF
        start = self._start
        buffer = self._buffer
        if len(buffer) - start < need:
            return None
        end = start + self._pending_bytes
        with memoryview(buffer) as view:
            if view[end : end + 2] != b"\r\n":
                self._start = start + need
                self._pending = None
                self._pending_bytes = 0
                raise ProtocolError("bad data chunk terminator")
            data = bytes(view[start:end])  # the one copy: value hand-off
        self._start = start + need
        pending = self._pending
        self._pending = None
        self._pending_bytes = 0
        # the pending command is private to this parser and not yet
        # published, so filling in its value beats re-constructing the
        # frozen dataclass (field-by-field object.__setattr__) per SET
        object.__setattr__(pending, "value", data)
        if self._mset_items is None:
            return pending
        return self._absorb_mset_item(pending)

    def _absorb_mset_item(self, item: StoreCommand):
        """Collect one completed mset item; emit the batch when full."""
        items = self._mset_items
        items.append(item)
        self._mset_remaining -= 1
        if self._mset_remaining > 0:
            return _ABSORBED
        self._mset_items = None
        command = MultiSetCommand(items=tuple(items), noreply=self._mset_noreply)
        self._mset_noreply = False
        return command

    def _parse_line(self, line: bytes) -> Command:
        if not line:
            raise ProtocolError("empty command line")
        parts = line.split()
        if self._mset_items is not None:
            return self._parse_mset_item(parts)
        verb = parts[0].lower()
        if verb == b"get" or verb == b"gets":
            if len(parts) < 2:
                raise ProtocolError("get requires at least one key")
            keys = parts[1:]
            # A trailing ``tctx:`` pseudo-key is a trace-context token
            # (repro.obs.tracing): strip it so dispatch never looks it up.
            # Servers predating this extension treat the token as one more
            # requested key and answer a miss — that asymmetry is the whole
            # backward-compatibility story, so only the *last* token is
            # interpreted and at least one real key must remain.
            trace_token = None
            if len(keys) > 1 and keys[-1].startswith(_TRACE_TOKEN_PREFIX):
                trace_token = keys[-1]
                keys = keys[:-1]
            return GetCommand(
                keys=tuple(_validate_key(k) for k in keys),
                with_cas=verb == b"gets",
                trace_token=trace_token,
            )
        if verb == b"mget" and self.accept_batch:
            if len(parts) < 2:
                raise ProtocolError("mget requires at least one key")
            keys = parts[1:]
            # same trailing-token rule as ``get``: the last token is a
            # trace context only when at least one real key remains
            trace_token = None
            if len(keys) > 1 and keys[-1].startswith(_TRACE_TOKEN_PREFIX):
                trace_token = keys[-1]
                keys = keys[:-1]
            return MultiGetCommand(
                keys=tuple(_validate_key(k) for k in keys),
                trace_token=trace_token,
            )
        if verb == b"mset" and self.accept_batch:
            if len(parts) not in (2, 3):
                raise ProtocolError("mset <count> [noreply]")
            count = _parse_int(parts[1], "count")
            if count < 0 or count > MAX_MSET_ITEMS:
                raise ProtocolError(f"mset count out of range: {count}")
            noreply = len(parts) == 3 and parts[2] == b"noreply"
            if len(parts) == 3 and not noreply:
                raise ProtocolError(f"unexpected token {parts[2]!r}")
            if count == 0:
                return MultiSetCommand(items=(), noreply=noreply)
            self._mset_items = []
            self._mset_remaining = count
            self._mset_noreply = noreply
            return _ABSORBED
        if verb in (b"incr", b"decr"):
            if len(parts) not in (3, 4):
                raise ProtocolError(f"{verb.decode()} <key> <delta> [noreply]")
            delta = _parse_int(parts[2], "delta")
            if delta < 0:
                raise ProtocolError("delta must be non-negative")
            noreply = len(parts) == 4 and parts[3] == b"noreply"
            return IncrCommand(
                key=_validate_key(parts[1]),
                delta=delta,
                negative=verb == b"decr",
                noreply=noreply,
            )
        if verb in _STORAGE_VERBS:
            return self._parse_storage(verb, parts)
        if verb == b"delete":
            if len(parts) not in (2, 3):
                raise ProtocolError("delete <key> [noreply]")
            noreply = len(parts) == 3 and parts[2] == b"noreply"
            if len(parts) == 3 and not noreply:
                raise ProtocolError(f"unexpected token {parts[2]!r}")
            return DeleteCommand(key=_validate_key(parts[1]), noreply=noreply)
        if verb == b"touch":
            if len(parts) not in (3, 4):
                raise ProtocolError("touch <key> <exptime> [noreply]")
            noreply = len(parts) == 4 and parts[3] == b"noreply"
            return TouchCommand(
                key=_validate_key(parts[1]),
                exptime=float(_parse_int(parts[2], "exptime")),
                noreply=noreply,
            )
        if verb == b"flush_all":
            noreply = len(parts) == 2 and parts[1] == b"noreply"
            return FlushCommand(noreply=noreply)
        if verb == b"stats":
            if len(parts) > 2:
                raise ProtocolError(
                    "stats [slabs|items|settings|metrics|trace|tier|reset]"
                )
            sub = parts[1].decode() if len(parts) == 2 else ""
            if sub not in ("", "slabs", "items", "settings",
                           "metrics", "trace", "tier", "reset"):
                raise ProtocolError(f"unknown stats subcommand {sub!r}")
            return StatsCommand(subcommand=sub)
        if verb == b"digest" and self.accept_batch:
            if len(parts) != 2:
                raise ProtocolError("digest <nslots>")
            nslots = _parse_int(parts[1], "nslots")
            if nslots < 1 or nslots > MAX_DIGEST_SLOTS:
                raise ProtocolError(f"nslots out of range: {nslots}")
            return DigestCommand(nslots=nslots)
        if verb == b"keys" and self.accept_batch:
            if len(parts) != 3:
                raise ProtocolError("keys <slot> <nslots>")
            slot = _parse_int(parts[1], "slot")
            nslots = _parse_int(parts[2], "nslots")
            if nslots < 1 or nslots > MAX_DIGEST_SLOTS:
                raise ProtocolError(f"nslots out of range: {nslots}")
            if slot < 0 or slot >= nslots:
                raise ProtocolError(f"slot out of range: {slot}")
            return KeyListCommand(slot=slot, nslots=nslots)
        if verb == b"quit":
            return QuitCommand()
        raise ProtocolError(f"unknown command {verb!r}")

    def _parse_mset_item(self, parts: List[bytes]):
        """One ``<key> <flags> <exptime> <bytes> [cost <n>] [version <v>]``
        item line.

        The data chunk that follows completes through the same
        ``_pending`` path as a plain SET, then lands in the batch via
        :meth:`_absorb_mset_item`.
        """
        try:
            if len(parts) < 4:
                raise ProtocolError(
                    "mset item: <key> <flags> <exptime> <bytes> "
                    "[cost <cost>] [version <version>]"
                )
            key = _validate_key(parts[0])
            flags = _parse_int(parts[1], "flags")
            exptime = float(_parse_int(parts[2], "exptime"))
            nbytes = _parse_int(parts[3], "bytes")
            if nbytes < 0:
                raise ProtocolError("negative byte count")
            cost = 0
            version = 0
            rest = parts[4:]
            while rest:
                token = rest.pop(0)
                if token == b"cost":
                    if not rest:
                        raise ProtocolError("cost token without a value")
                    cost = _parse_int(rest.pop(0), "cost")
                    if cost < 0:
                        raise ProtocolError("negative cost")
                elif token == b"version":
                    if not rest:
                        raise ProtocolError("version token without a value")
                    version = _parse_int(rest.pop(0), "version")
                    if version < 0:
                        raise ProtocolError("negative version")
                else:
                    raise ProtocolError(f"unexpected token {token!r}")
        except ProtocolError:
            self._mset_items = None
            self._mset_remaining = 0
            raise
        self._pending = StoreCommand(
            verb="set", key=key, flags=flags, exptime=exptime,
            value=b"", cost=cost, noreply=False, cas_unique=None,
            version=version,
        )
        self._pending_bytes = nbytes
        return self._finish_store()

    def _parse_storage(self, verb: bytes, parts: List[bytes]) -> Optional[Command]:
        if len(parts) < 5:
            raise ProtocolError(
                f"{verb.decode()} <key> <flags> <exptime> <bytes> "
                "[cost <cost>] [noreply]"
            )
        key = _validate_key(parts[1])
        flags = _parse_int(parts[2], "flags")
        exptime = float(_parse_int(parts[3], "exptime"))
        nbytes = _parse_int(parts[4], "bytes")
        if nbytes < 0:
            raise ProtocolError("negative byte count")
        cost = 0
        version = 0
        noreply = False
        cas_unique = None
        rest = parts[5:]
        if verb == b"cas":
            if not rest:
                raise ProtocolError("cas requires a cas_unique token")
            cas_unique = _parse_int(rest.pop(0), "cas_unique")
        while rest:
            token = rest.pop(0)
            if token == b"cost":
                if not rest:
                    raise ProtocolError("cost token without a value")
                cost = _parse_int(rest.pop(0), "cost")
                if cost < 0:
                    raise ProtocolError("negative cost")
            elif token == b"version":
                if not rest:
                    raise ProtocolError("version token without a value")
                version = _parse_int(rest.pop(0), "version")
                if version < 0:
                    raise ProtocolError("negative version")
            elif token == b"noreply":
                noreply = True
            else:
                raise ProtocolError(f"unexpected token {token!r}")
        self._pending = StoreCommand(
            verb=verb.decode(),
            key=key,
            flags=flags,
            exptime=exptime,
            value=b"",
            cost=cost,
            noreply=noreply,
            cas_unique=cas_unique,
            version=version,
        )
        self._pending_bytes = nbytes
        return self._finish_store()


# -- encoding -------------------------------------------------------------------


def encode_command_into(out: bytearray, command: Command) -> None:
    """Client side: append one command's wire bytes to ``out``.

    The pipelining client encodes a whole batch into one shared buffer
    and flushes it with a single write — the client-side mirror of the
    server's coalesced response buffer.
    """
    if isinstance(command, GetCommand):
        out += b"gets " if command.with_cas else b"get "
        out += b" ".join(command.keys)
        out += CRLF
        return
    if isinstance(command, MultiGetCommand):
        out += b"mget "
        out += b" ".join(command.keys)
        if command.trace_token is not None:
            out += b" "
            out += command.trace_token
        out += CRLF
        return
    if isinstance(command, MultiSetCommand):
        out += b"mset %d%s\r\n" % (
            len(command.items), b" noreply" if command.noreply else b""
        )
        for item in command.items:
            out += b"%s %d %d %d" % (
                item.key, item.flags, int(item.exptime), len(item.value)
            )
            if item.cost:
                out += b" cost %d" % item.cost
            if item.version:
                out += b" version %d" % item.version
            out += CRLF
            out += item.value
            out += CRLF
        return
    if isinstance(command, StoreCommand):
        out += b"%s %s %d %d %d" % (
            command.verb.encode(),
            command.key,
            command.flags,
            int(command.exptime),
            len(command.value),
        )
        if command.verb == "cas":
            out += b" %d" % (command.cas_unique or 0)
        if command.cost:
            out += b" cost %d" % command.cost
        if command.version:
            out += b" version %d" % command.version
        if command.noreply:
            out += b" noreply"
        out += CRLF
        out += command.value
        out += CRLF
        return
    if isinstance(command, DigestCommand):
        out += b"digest %d\r\n" % command.nslots
        return
    if isinstance(command, KeyListCommand):
        out += b"keys %d %d\r\n" % (command.slot, command.nslots)
        return
    if isinstance(command, IncrCommand):
        verb = b"decr" if command.negative else b"incr"
        out += b"%s %s %d" % (verb, command.key, command.delta)
        if command.noreply:
            out += b" noreply"
        out += CRLF
        return
    if isinstance(command, DeleteCommand):
        out += b"delete " + command.key
        if command.noreply:
            out += b" noreply"
        out += CRLF
        return
    if isinstance(command, TouchCommand):
        out += b"touch %s %d" % (command.key, int(command.exptime))
        if command.noreply:
            out += b" noreply"
        out += CRLF
        return
    if isinstance(command, FlushCommand):
        out += b"flush_all noreply" if command.noreply else b"flush_all"
        out += CRLF
        return
    if isinstance(command, StatsCommand):
        if command.subcommand:
            out += b"stats " + command.subcommand.encode()
        else:
            out += b"stats"
        out += CRLF
        return
    if isinstance(command, QuitCommand):
        out += b"quit" + CRLF
        return
    raise TypeError(f"cannot encode {type(command).__name__}")


def encode_command(command: Command) -> bytes:
    """Client side: a command to wire bytes."""
    out = bytearray()
    encode_command_into(out, command)
    return bytes(out)


def encode_response_into(out: bytearray, response) -> None:
    """Server side: append one response's wire bytes to ``out``.

    The dispatcher shares one ``out`` buffer across every response of a
    pipelined batch, so serializing N commands allocates one buffer per
    flush instead of one intermediate ``bytes`` per command.
    """
    if isinstance(response, GetResponse):
        for value in response.values:
            data = value.value
            if value.cas_unique is not None:
                out += b"VALUE %s %d %d %d\r\n" % (
                    value.key, value.flags, len(data), value.cas_unique
                )
            else:
                out += b"VALUE %s %d %d\r\n" % (value.key, value.flags, len(data))
            out += data
            out += CRLF
        out += b"END\r\n"
    elif isinstance(response, MultiSetResponse):
        out += b"MSET"
        for status in response.statuses:
            out += b" "
            out += status
        out += CRLF
    elif isinstance(response, DigestResponse):
        out += b"DIGEST %d\r\n" % response.nslots
        for slot, count, digest in response.slots:
            out += b"SLOT %d %d %d\r\n" % (slot, count, digest)
        out += b"END\r\n"
    elif isinstance(response, KeyListResponse):
        out += b"KEYS %d\r\n" % len(response.entries)
        for key, version, cost, flags, exptime in response.entries:
            out += b"KEY %s %d %d %d %s\r\n" % (
                key, version, cost, flags, repr(exptime).encode()
            )
        out += b"END\r\n"
    elif isinstance(response, SimpleResponse):
        out += response.line
        out += CRLF
    elif isinstance(response, NumberResponse):
        out += b"%d\r\n" % response.value
    elif isinstance(response, StatsResponse):
        for name, value in response.stats:
            out += b"STAT %s %s\r\n" % (name.encode(), str(value).encode())
        out += b"END\r\n"
    else:
        raise TypeError(f"cannot encode {type(response).__name__}")


def encode_response(response) -> bytes:
    """Server side: a response object to wire bytes."""
    out = bytearray()
    encode_response_into(out, response)
    return bytes(out)


class ResponseParser:
    """Incremental response parser for the client side.

    Scans the receive buffer in place — no per-attempt snapshot copy of
    the whole buffer; only complete lines and value payloads are sliced
    out as ``bytes``.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def try_parse(self):
        """One complete response, or ``None`` if more bytes are needed."""
        buffer = self._buffer
        newline = buffer.find(CRLF)
        if newline < 0:
            return None
        first = bytes(buffer[:newline])
        if first.startswith(b"VALUE") or first == b"END":
            return self._try_parse_get()
        if first.startswith(b"STAT"):
            return self._try_parse_stats()
        if first.startswith(b"DIGEST "):
            return self._try_parse_digest(first, newline)
        if first.startswith(b"KEYS "):
            return self._try_parse_keys(first, newline)
        del buffer[: newline + 2]
        if first == b"MSET" or first.startswith(b"MSET "):
            return MultiSetResponse(statuses=tuple(first.split()[1:]))
        if first.isdigit():
            return NumberResponse(value=int(first))
        return SimpleResponse(first)

    def _try_parse_get(self):
        buffer = self._buffer
        values = []
        pos = 0
        while True:
            newline = buffer.find(CRLF, pos)
            if newline < 0:
                return None
            line = bytes(buffer[pos:newline])
            pos = newline + 2
            if line == b"END":
                del buffer[:pos]
                return GetResponse(values=tuple(values))
            if not line.startswith(b"VALUE "):
                raise ProtocolError(f"unexpected line in GET response: {line!r}")
            parts = line.split()
            if len(parts) not in (4, 5):
                raise ProtocolError(f"bad VALUE header: {line!r}")
            nbytes = _parse_int(parts[3], "bytes")
            cas_unique = _parse_int(parts[4], "cas") if len(parts) == 5 else None
            if len(buffer) < pos + nbytes + 2:
                return None
            data = bytes(buffer[pos : pos + nbytes])
            if buffer[pos + nbytes : pos + nbytes + 2] != CRLF:
                raise ProtocolError("bad data terminator in GET response")
            pos += nbytes + 2
            values.append(
                ValueResponse(
                    key=parts[1],
                    flags=_parse_int(parts[2], "flags"),
                    value=data,
                    cas_unique=cas_unique,
                )
            )

    def _try_parse_digest(self, first: bytes, newline: int):
        buffer = self._buffer
        header = first.split()
        if len(header) != 2:
            raise ProtocolError(f"bad DIGEST header: {first!r}")
        nslots = _parse_int(header[1], "nslots")
        slots = []
        pos = newline + 2
        while True:
            end = buffer.find(CRLF, pos)
            if end < 0:
                return None
            line = bytes(buffer[pos:end])
            pos = end + 2
            if line == b"END":
                del buffer[:pos]
                return DigestResponse(nslots=nslots, slots=tuple(slots))
            parts = line.split()
            if len(parts) != 4 or parts[0] != b"SLOT":
                raise ProtocolError(f"unexpected line in DIGEST response: {line!r}")
            slots.append((
                _parse_int(parts[1], "slot"),
                _parse_int(parts[2], "count"),
                _parse_int(parts[3], "hash"),
            ))

    def _try_parse_keys(self, first: bytes, newline: int):
        buffer = self._buffer
        header = first.split()
        if len(header) != 2:
            raise ProtocolError(f"bad KEYS header: {first!r}")
        entries = []
        pos = newline + 2
        while True:
            end = buffer.find(CRLF, pos)
            if end < 0:
                return None
            line = bytes(buffer[pos:end])
            pos = end + 2
            if line == b"END":
                del buffer[:pos]
                return KeyListResponse(entries=tuple(entries))
            parts = line.split()
            if len(parts) != 6 or parts[0] != b"KEY":
                raise ProtocolError(f"unexpected line in KEYS response: {line!r}")
            try:
                exptime = float(parts[5])
            except ValueError:
                raise ProtocolError(f"bad exptime: {parts[5]!r}") from None
            entries.append((
                parts[1],
                _parse_int(parts[2], "version"),
                _parse_int(parts[3], "cost"),
                _parse_int(parts[4], "flags"),
                exptime,
            ))

    def _try_parse_stats(self):
        buffer = self._buffer
        stats = []
        pos = 0
        while True:
            newline = buffer.find(CRLF, pos)
            if newline < 0:
                return None
            line = bytes(buffer[pos:newline])
            pos = newline + 2
            if line == b"END":
                del buffer[:pos]
                return StatsResponse(stats=stats)
            if not line.startswith(b"STAT "):
                raise ProtocolError(f"unexpected line in STATS response: {line!r}")
            _, name, value = line.split(b" ", 2)
            stats.append((name.decode(), value.decode()))
