"""One socket-tuning policy for every TCP endpoint in the repo.

Every path that produces a connected TCP socket — the asyncio server's
accept, the async client's dial (and redial), the blocking
:class:`~repro.protocol.client.TCPTransport`, the threaded server's
handler, both legs of the ChaosProxy, and the replica bootstrap stream —
funnels through :func:`tune_socket` so the wire behaves the same
everywhere:

* ``TCP_NODELAY`` **on**.  The protocol already coalesces writes itself
  (one scratch-buffer write per pipelined batch, CORK-style transport
  coalescing above that), so Nagle's algorithm can only add 40 ms
  delayed-ACK stalls to small request/response frames — the classic
  memcached footgun.
* Explicit ``SO_SNDBUF`` / ``SO_RCVBUF`` sizing.  Distribution defaults
  vary wildly (and auto-tuning starts small); pinning both ends to the
  same window keeps loopback benchmarks comparable across machines and
  gives deep pipelines a full batch of in-flight bytes.

The helper is deliberately forgiving: anything that is not a connected
TCP socket (Unix sockets, loopback test doubles, an already-closed fd)
is left untouched and reported via the ``False`` return, never an
exception — transports call this in accept/connect callbacks where a
raise would kill the connection for a tuning nicety.
"""

from __future__ import annotations

import socket
from typing import Optional

#: default socket buffer size for both directions; large enough that a
#: 64 KiB pipelined batch plus its responses fit in flight, small enough
#: not to bloat per-connection kernel memory with thousands of clients
SOCKET_BUFFER = 256 * 1024


def tune_socket(
    sock,
    nodelay: bool = True,
    sndbuf: Optional[int] = SOCKET_BUFFER,
    rcvbuf: Optional[int] = SOCKET_BUFFER,
) -> bool:
    """Apply the shared TCP tuning policy to ``sock``.

    Args:
        sock: anything ``get_extra_info("socket")`` or an accept loop may
            hand over — a real TCP socket, a non-TCP socket, a transport
            wrapper, or ``None``.
        nodelay: disable Nagle (``TCP_NODELAY``).
        sndbuf/rcvbuf: explicit buffer sizes; ``None`` skips that knob.

    Returns:
        ``True`` if the socket was a tunable TCP socket and every
        requested option was applied; ``False`` if it was skipped (not a
        socket, not TCP/IP, or the kernel refused).
    """
    if sock is None:
        return False
    # asyncio hands out a TransportSocket proxy; it forwards setsockopt,
    # so duck-typing beats isinstance here
    setsockopt = getattr(sock, "setsockopt", None)
    if setsockopt is None:
        return False
    family = getattr(sock, "family", None)
    if family not in (socket.AF_INET, getattr(socket, "AF_INET6", None)):
        return False
    if getattr(sock, "type", None) != socket.SOCK_STREAM:
        return False
    try:
        if nodelay:
            setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if sndbuf is not None:
            setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, sndbuf)
        if rcvbuf is not None:
            setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
    except (OSError, ValueError):
        # closed fd, or a kernel that rejects the option — tuning is a
        # nicety, never a reason to drop the connection
        return False
    return True
