"""The memcached binary protocol, with the paper's cost extension.

Frames are a fixed 24-byte header plus extras/key/value::

    offset  field
    0       magic        0x80 request / 0x81 response
    1       opcode
    2-3     key length
    4       extras length
    5       data type    (always 0)
    6-7     vbucket id (request) / status (response)
    8-11    total body length (extras + key + value)
    12-15   opaque       (echoed verbatim)
    16-23   cas

Storage requests (SET/ADD/REPLACE) carry ``flags(4) exptime(4)`` extras;
**our cost extension** allows a 12-byte variant ``flags(4) exptime(4)
cost(4)`` — the binary-protocol mirror of the paper's Section 4.3 text
extension.  Stock 8-byte extras still parse (cost 0), so clients unaware
of costs interoperate, matching the paper's compatibility story.

INCR/DECR carry ``delta(8) initial(8) exptime(4)`` extras and return the
8-byte counter value; GET responses carry ``flags(4)`` extras.  CAS rides
in the header's cas field, as in stock memcached.

**Batched frames (this repo's extension, PR 8).**  ``OP_MGET`` (0x30) and
``OP_MSET`` (0x31) live in the vendor opcode range, clear of every stock
opcode, and carry a whole batch in one frame's value::

    MGET request value   count(4) then count × [klen(2) key]
    MGET response value  count(4) then count × [klen(2) flags(4) vlen(4)
                         key value]            (found items only)
    MSET request value   count(4) then count × [klen(2) flags(4)
                         exptime(4) cost(4) vlen(4) key value]
    MSET response value  count(4) then count × [status(2)]  (in item order)

An MGET request may carry the 17-byte trace-context extras — **one**
context for the whole frame, where the per-key path pays one per key.  A
server that predates these opcodes answers ``STATUS_UNKNOWN_COMMAND``
with the connection still open; clients treat that as the negotiation
signal and fall back to per-key operations (cached per connection).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.kvstore.errors import (
    CasMismatchError,
    NotStoredError,
    ObjectTooLargeError,
    OutOfMemoryError,
)
from repro.kvstore.item import NEVER_EXPIRES
from repro.kvstore.store import KVStore
from repro.obs import tracing
from repro.protocol.commands import ProtocolError

MAGIC_REQUEST = 0x80
MAGIC_RESPONSE = 0x81
HEADER = struct.Struct(">BBHBBHIIQ")
HEADER_SIZE = 24

# -- opcodes (stock memcached values) ------------------------------------------
OP_GET = 0x00
OP_SET = 0x01
OP_ADD = 0x02
OP_REPLACE = 0x03
OP_DELETE = 0x04
OP_INCREMENT = 0x05
OP_DECREMENT = 0x06
OP_QUIT = 0x07
OP_FLUSH = 0x08
OP_NOOP = 0x0A
OP_VERSION = 0x0B
OP_APPEND = 0x0E
OP_PREPEND = 0x0F
OP_STAT = 0x10
OP_TOUCH = 0x1C

# -- batched opcodes (this repo's extension; vendor range, clear of stock ops) --
OP_MGET = 0x30
OP_MSET = 0x31

# -- status codes ---------------------------------------------------------------
STATUS_OK = 0x0000
STATUS_KEY_NOT_FOUND = 0x0001
STATUS_KEY_EXISTS = 0x0002
STATUS_VALUE_TOO_LARGE = 0x0003
STATUS_INVALID_ARGUMENTS = 0x0004
STATUS_NOT_STORED = 0x0005
STATUS_NON_NUMERIC = 0x0006
STATUS_UNKNOWN_COMMAND = 0x0081
STATUS_OUT_OF_MEMORY = 0x0082

_STORAGE_OPS = (OP_SET, OP_ADD, OP_REPLACE)


@dataclass(frozen=True)
class BinaryFrame:
    """One request or response frame (header fields + body parts)."""

    magic: int
    opcode: int
    status: int = 0  # vbucket on requests
    opaque: int = 0
    cas: int = 0
    extras: bytes = b""
    key: bytes = b""
    value: bytes = b""

    def pack(self) -> bytes:
        body = self.extras + self.key + self.value
        header = HEADER.pack(
            self.magic,
            self.opcode,
            len(self.key),
            len(self.extras),
            0,
            self.status,
            len(body),
            self.opaque,
            self.cas,
        )
        return header + body


def request(opcode: int, key: bytes = b"", value: bytes = b"",
            extras: bytes = b"", opaque: int = 0, cas: int = 0) -> BinaryFrame:
    return BinaryFrame(magic=MAGIC_REQUEST, opcode=opcode, key=key,
                       value=value, extras=extras, opaque=opaque, cas=cas)


def response(opcode: int, status: int = STATUS_OK, key: bytes = b"",
             value: bytes = b"", extras: bytes = b"", opaque: int = 0,
             cas: int = 0) -> BinaryFrame:
    return BinaryFrame(magic=MAGIC_RESPONSE, opcode=opcode, status=status,
                       key=key, value=value, extras=extras, opaque=opaque,
                       cas=cas)


class BinaryParser:
    """Incremental frame parser (request or response side).

    Single-pass and zero-copy: header fields unpack in place
    (``unpack_from`` at the consumed offset) and each body part —
    extras, key, value — is copied out of the receive buffer exactly
    once, through a :class:`memoryview`, directly into its final
    ``bytes`` object.  The old parser sliced the whole body out first
    (``bytes(buffer[24:total])``) and then sliced that copy three more
    times: 2× the bytes moved, plus a ``del buffer[:total]`` compaction
    per frame.  Consumed frames now just advance ``_start``; the buffer
    compacts once per :meth:`feed`, amortized across a pipelined batch.
    """

    __slots__ = ("_buffer", "_start", "_expect_magic")

    def __init__(self, expect_magic: int) -> None:
        self._buffer = bytearray()
        self._start = 0
        self._expect_magic = expect_magic

    def feed(self, data: bytes) -> None:
        if self._start:
            del self._buffer[: self._start]
            self._start = 0
        self._buffer.extend(data)

    def __iter__(self) -> Iterator[BinaryFrame]:
        while True:
            frame = self.try_parse()
            if frame is None:
                return
            yield frame

    def try_parse(self) -> Optional[BinaryFrame]:
        buffer = self._buffer
        start = self._start
        if len(buffer) - start < HEADER_SIZE:
            return None
        (magic, opcode, key_len, extras_len, data_type, status, body_len,
         opaque, cas) = HEADER.unpack_from(buffer, start)
        if magic != self._expect_magic:
            raise ProtocolError(f"bad magic byte 0x{magic:02x}")
        if data_type != 0:
            raise ProtocolError(f"unsupported data type {data_type}")
        if extras_len + key_len > body_len:
            raise ProtocolError("body length inconsistent with key/extras")
        total = HEADER_SIZE + body_len
        if len(buffer) - start < total:
            return None
        extras_off = start + HEADER_SIZE
        key_off = extras_off + extras_len
        value_off = key_off + key_len
        end = start + total
        # scoped view: released before any feed() can resize the buffer
        with memoryview(buffer) as view:
            extras = bytes(view[extras_off:key_off])
            key = bytes(view[key_off:value_off])
            value = bytes(view[value_off:end])
        self._start = end
        return BinaryFrame(magic=magic, opcode=opcode, status=status,
                           opaque=opaque, cas=cas, extras=extras, key=key,
                           value=value)


# -- extras helpers ---------------------------------------------------------------

_STORE_EXTRAS = struct.Struct(">II")  # flags, exptime
_STORE_EXTRAS_COST = struct.Struct(">III")  # flags, exptime, cost (extension)
_GET_EXTRAS = struct.Struct(">I")  # flags
_COUNTER_EXTRAS = struct.Struct(">QQI")  # delta, initial, exptime
_TOUCH_EXTRAS = struct.Struct(">I")  # exptime


def pack_store_extras(flags: int, exptime: int, cost: int = 0) -> bytes:
    if cost:
        return _STORE_EXTRAS_COST.pack(flags, exptime, cost)
    return _STORE_EXTRAS.pack(flags, exptime)


def unpack_store_extras(extras: bytes) -> Tuple[int, int, int]:
    """(flags, exptime, cost); stock 8-byte extras imply cost 0."""
    if len(extras) == _STORE_EXTRAS.size:
        flags, exptime = _STORE_EXTRAS.unpack(extras)
        return flags, exptime, 0
    if len(extras) == _STORE_EXTRAS_COST.size:
        return _STORE_EXTRAS_COST.unpack(extras)
    raise ProtocolError(f"bad storage extras length {len(extras)}")


# -- batched frame value codecs (OP_MGET / OP_MSET) -----------------------------

_BATCH_COUNT = struct.Struct(">I")
_MGET_KEY = struct.Struct(">H")  # klen
_MGET_ITEM = struct.Struct(">HII")  # klen, flags, vlen
_MSET_ITEM = struct.Struct(">HIIII")  # klen, flags, exptime, cost, vlen
_MSET_STATUS = struct.Struct(">H")

#: upper bound on items per batched frame (mirrors text MAX_MSET_ITEMS)
MAX_BATCH_ITEMS = 4096


def pack_mget_value(keys) -> bytes:
    """Request value for OP_MGET: ``count`` then length-prefixed keys."""
    out = bytearray(_BATCH_COUNT.pack(len(keys)))
    for key in keys:
        out += _MGET_KEY.pack(len(key))
        out += key
    return bytes(out)


def unpack_mget_value(value: bytes) -> Tuple[bytes, ...]:
    """Decode an OP_MGET request value into its key tuple."""
    if len(value) < _BATCH_COUNT.size:
        raise ProtocolError("truncated mget body")
    (count,) = _BATCH_COUNT.unpack_from(value)
    if count > MAX_BATCH_ITEMS:
        raise ProtocolError(f"mget batch too large ({count})")
    keys = []
    offset = _BATCH_COUNT.size
    with memoryview(value) as view:
        for _ in range(count):
            if len(value) - offset < _MGET_KEY.size:
                raise ProtocolError("truncated mget body")
            (klen,) = _MGET_KEY.unpack_from(value, offset)
            offset += _MGET_KEY.size
            if len(value) - offset < klen:
                raise ProtocolError("truncated mget body")
            keys.append(bytes(view[offset : offset + klen]))
            offset += klen
    if offset != len(value):
        raise ProtocolError("trailing bytes after mget body")
    return tuple(keys)


def pack_mget_reply_value(keys, items) -> bytes:
    """Response value for OP_MGET: found items only, in key order."""
    out = bytearray(_BATCH_COUNT.size)
    found = 0
    for key, item in zip(keys, items):
        if item is None:
            continue
        found += 1
        out += _MGET_ITEM.pack(len(key), item.flags, len(item.value))
        out += key
        out += item.value
    _BATCH_COUNT.pack_into(out, 0, found)
    return bytes(out)


def unpack_mget_reply_value(value: bytes):
    """Decode an OP_MGET response value to ``[(key, flags, value)]``."""
    if len(value) < _BATCH_COUNT.size:
        raise ProtocolError("truncated mget reply")
    (count,) = _BATCH_COUNT.unpack_from(value)
    if count > MAX_BATCH_ITEMS:
        raise ProtocolError(f"mget reply too large ({count})")
    out = []
    offset = _BATCH_COUNT.size
    with memoryview(value) as view:
        for _ in range(count):
            if len(value) - offset < _MGET_ITEM.size:
                raise ProtocolError("truncated mget reply")
            klen, flags, vlen = _MGET_ITEM.unpack_from(value, offset)
            offset += _MGET_ITEM.size
            if len(value) - offset < klen + vlen:
                raise ProtocolError("truncated mget reply")
            key = bytes(view[offset : offset + klen])
            offset += klen
            item_value = bytes(view[offset : offset + vlen])
            offset += vlen
            out.append((key, flags, item_value))
    if offset != len(value):
        raise ProtocolError("trailing bytes after mget reply")
    return out


def pack_mset_value(items) -> bytes:
    """Request value for OP_MSET from ``(key, value, cost, exptime, flags)``."""
    out = bytearray(_BATCH_COUNT.pack(len(items)))
    for key, value, cost, exptime, flags in items:
        out += _MSET_ITEM.pack(len(key), flags, exptime, cost, len(value))
        out += key
        out += value
    return bytes(out)


def unpack_mset_value(value: bytes):
    """Decode an OP_MSET request value to ``[(key, flags, exptime, cost, value)]``."""
    if len(value) < _BATCH_COUNT.size:
        raise ProtocolError("truncated mset body")
    (count,) = _BATCH_COUNT.unpack_from(value)
    if count > MAX_BATCH_ITEMS:
        raise ProtocolError(f"mset batch too large ({count})")
    out = []
    offset = _BATCH_COUNT.size
    with memoryview(value) as view:
        for _ in range(count):
            if len(value) - offset < _MSET_ITEM.size:
                raise ProtocolError("truncated mset body")
            klen, flags, exptime, cost, vlen = _MSET_ITEM.unpack_from(
                value, offset
            )
            offset += _MSET_ITEM.size
            if len(value) - offset < klen + vlen:
                raise ProtocolError("truncated mset body")
            key = bytes(view[offset : offset + klen])
            offset += klen
            item_value = bytes(view[offset : offset + vlen])
            offset += vlen
            out.append((key, flags, exptime, cost, item_value))
    if offset != len(value):
        raise ProtocolError("trailing bytes after mset body")
    return out


def pack_mset_reply_value(statuses) -> bytes:
    """Response value for OP_MSET: per-item status codes, in order."""
    out = bytearray(_BATCH_COUNT.pack(len(statuses)))
    for status in statuses:
        out += _MSET_STATUS.pack(status)
    return bytes(out)


def unpack_mset_reply_value(value: bytes) -> Tuple[int, ...]:
    if len(value) < _BATCH_COUNT.size:
        raise ProtocolError("truncated mset reply")
    (count,) = _BATCH_COUNT.unpack_from(value)
    if len(value) != _BATCH_COUNT.size + count * _MSET_STATUS.size:
        raise ProtocolError("mset reply length mismatch")
    return tuple(
        _MSET_STATUS.unpack_from(value, _BATCH_COUNT.size + i * _MSET_STATUS.size)[0]
        for i in range(count)
    )


class BinaryStoreServer:
    """Dispatches binary frames onto a :class:`KVStore`.

    With ``tracer`` set, a GET whose request extras carry a sampled
    17-byte trace context (:func:`repro.obs.tracing.pack_trace_extras`)
    records a ``server.dispatch`` span continuing the client's trace.
    Stock dispatch ignores GET request extras, so trace-aware clients
    interoperate with tracer-less servers — and any other extras length
    degrades to "no context" here.
    """

    VERSION = b"gdwheel-repro-1.0"

    def __init__(self, store: KVStore,
                 tracer: Optional["tracing.Tracer"] = None,
                 accept_batch: bool = True) -> None:
        self.store = store
        self.tracer = tracer
        # False emulates a pre-MGET build: the batched opcodes fall through
        # to STATUS_UNKNOWN_COMMAND (connection stays open), which is the
        # client's signal to fall back to per-key operations.
        self.accept_batch = accept_batch

    def handle_bytes(self, parser: BinaryParser, data: bytes) -> Tuple[bytes, bool]:
        out = bytearray()
        try:
            parser.feed(data)
            for frame in parser:
                reply, keep_open = self.dispatch(frame)
                if reply is not None:
                    out += reply.pack()
                if not keep_open:
                    return bytes(out), False
        except ProtocolError:
            out += response(0, status=STATUS_UNKNOWN_COMMAND).pack()
            return bytes(out), False
        return bytes(out), True

    def _get_many(self, keys):
        """Vectored read: one store call for the batch when supported."""
        get_many = getattr(self.store, "get_many", None)
        if get_many is not None:
            return get_many(keys)
        get = self.store.get
        return [get(key) for key in keys]

    def dispatch(self, frame: BinaryFrame) -> Tuple[Optional[BinaryFrame], bool]:
        store = self.store
        op = frame.opcode
        opq = frame.opaque

        if op == OP_GET:
            tracer = self.tracer
            context = (
                tracing.unpack_trace_extras(frame.extras)
                if tracer is not None and frame.extras else None
            )
            if context is not None and context.sampled:
                with tracer.span(
                    "server.dispatch", trace_id=context.trace_id,
                    parent_id=context.span_id, cmd="get", proto="binary",
                ):
                    item = store.get(frame.key)
            else:
                item = store.get(frame.key)
            if item is None:
                return response(op, STATUS_KEY_NOT_FOUND, opaque=opq), True
            return (
                response(op, extras=_GET_EXTRAS.pack(item.flags),
                         value=item.value, opaque=opq, cas=item.cas_unique),
                True,
            )

        if op == OP_MGET and self.accept_batch:
            try:
                keys = unpack_mget_value(frame.value)
            except ProtocolError:
                return response(op, STATUS_INVALID_ARGUMENTS, opaque=opq), True
            tracer = self.tracer
            context = (
                tracing.unpack_trace_extras(frame.extras)
                if tracer is not None and frame.extras else None
            )
            # one span for the whole frame — batching collapses N per-key
            # trace contexts into one
            if context is not None and context.sampled:
                with tracer.span(
                    "server.dispatch", trace_id=context.trace_id,
                    parent_id=context.span_id, cmd="mget", proto="binary",
                    nkeys=len(keys),
                ):
                    items = self._get_many(keys)
            else:
                items = self._get_many(keys)
            return (
                response(op, value=pack_mget_reply_value(keys, items),
                         opaque=opq),
                True,
            )

        if op == OP_MSET and self.accept_batch:
            try:
                items = unpack_mset_value(frame.value)
            except ProtocolError:
                return response(op, STATUS_INVALID_ARGUMENTS, opaque=opq), True
            now = store.clock.now
            entries = [
                (key, value, cost,
                 now + exptime if exptime else NEVER_EXPIRES, flags)
                for key, flags, exptime, cost, value in items
            ]
            set_many = getattr(store, "set_many", None)
            if set_many is not None:
                results = set_many(entries)
            else:
                results = []
                for key, value, cost, abs_exptime, flags in entries:
                    try:
                        results.append(store.set(key, value, cost=cost,
                                                 exptime=abs_exptime,
                                                 flags=flags))
                    except (ObjectTooLargeError, OutOfMemoryError) as exc:
                        results.append(exc)
            statuses = []
            for result in results:
                if isinstance(result, ObjectTooLargeError):
                    statuses.append(STATUS_VALUE_TOO_LARGE)
                elif isinstance(result, OutOfMemoryError):
                    statuses.append(STATUS_OUT_OF_MEMORY)
                elif isinstance(result, BaseException):
                    statuses.append(STATUS_NOT_STORED)
                else:
                    statuses.append(STATUS_OK)
            return (
                response(op, value=pack_mset_reply_value(statuses),
                         opaque=opq),
                True,
            )

        if op in _STORAGE_OPS:
            try:
                flags, exptime, cost = unpack_store_extras(frame.extras)
            except ProtocolError:
                return response(op, STATUS_INVALID_ARGUMENTS, opaque=opq), True
            abs_exptime = (
                store.clock.now + exptime if exptime else NEVER_EXPIRES
            )
            try:
                if frame.cas:
                    item = store.cas(frame.key, frame.value, frame.cas,
                                     cost=cost, exptime=abs_exptime,
                                     flags=flags)
                elif op == OP_SET:
                    item = store.set(frame.key, frame.value, cost=cost,
                                     exptime=abs_exptime, flags=flags)
                elif op == OP_ADD:
                    item = store.add(frame.key, frame.value, cost=cost,
                                     exptime=abs_exptime, flags=flags)
                else:
                    item = store.replace(frame.key, frame.value, cost=cost,
                                         exptime=abs_exptime, flags=flags)
            except CasMismatchError:
                return response(op, STATUS_KEY_EXISTS, opaque=opq), True
            except NotStoredError:
                status = (
                    STATUS_KEY_NOT_FOUND if frame.cas or op == OP_REPLACE
                    else STATUS_KEY_EXISTS if op == OP_ADD
                    else STATUS_NOT_STORED
                )
                return response(op, status, opaque=opq), True
            except ObjectTooLargeError:
                return response(op, STATUS_VALUE_TOO_LARGE, opaque=opq), True
            except OutOfMemoryError:
                return response(op, STATUS_OUT_OF_MEMORY, opaque=opq), True
            return response(op, opaque=opq, cas=item.cas_unique), True

        if op in (OP_APPEND, OP_PREPEND):
            try:
                if op == OP_APPEND:
                    item = store.append(frame.key, frame.value)
                else:
                    item = store.prepend(frame.key, frame.value)
            except NotStoredError:
                return response(op, STATUS_NOT_STORED, opaque=opq), True
            return response(op, opaque=opq, cas=item.cas_unique), True

        if op == OP_DELETE:
            found = store.delete(frame.key)
            status = STATUS_OK if found else STATUS_KEY_NOT_FOUND
            return response(op, status, opaque=opq), True

        if op in (OP_INCREMENT, OP_DECREMENT):
            if len(frame.extras) != _COUNTER_EXTRAS.size:
                return response(op, STATUS_INVALID_ARGUMENTS, opaque=opq), True
            delta, initial, exptime = _COUNTER_EXTRAS.unpack(frame.extras)
            try:
                signed = delta if op == OP_INCREMENT else -delta
                result = store.incr(frame.key, signed)
            except NotStoredError:
                # binary protocol semantics: seed with the initial value
                # unless exptime is the 0xffffffff "fail" sentinel
                if exptime == 0xFFFFFFFF:
                    return response(op, STATUS_KEY_NOT_FOUND, opaque=opq), True
                abs_exptime = (
                    store.clock.now + exptime if exptime else NEVER_EXPIRES
                )
                item = store.set(frame.key, b"%d" % initial,
                                 exptime=abs_exptime)
                return (
                    response(op, value=struct.pack(">Q", initial),
                             opaque=opq, cas=item.cas_unique),
                    True,
                )
            except ValueError:
                return response(op, STATUS_NON_NUMERIC, opaque=opq), True
            return (
                response(op, value=struct.pack(">Q", result), opaque=opq),
                True,
            )

        if op == OP_TOUCH:
            if len(frame.extras) != _TOUCH_EXTRAS.size:
                return response(op, STATUS_INVALID_ARGUMENTS, opaque=opq), True
            (exptime,) = _TOUCH_EXTRAS.unpack(frame.extras)
            abs_exptime = store.clock.now + exptime if exptime else NEVER_EXPIRES
            found = store.touch_ttl(frame.key, abs_exptime)
            status = STATUS_OK if found else STATUS_KEY_NOT_FOUND
            return response(op, status, opaque=opq), True

        if op == OP_FLUSH:
            store.flush_all()
            return response(op, opaque=opq), True

        if op == OP_NOOP:
            return response(op, opaque=opq), True

        if op == OP_VERSION:
            return response(op, value=self.VERSION, opaque=opq), True

        if op == OP_STAT:
            # one frame per stat, terminated by an empty-key frame: we pack
            # them all into the reply stream the way memcached does
            frames = bytearray()
            for name, value in sorted(self.store.stats.snapshot().items()):
                frames += response(
                    op, key=name.encode(), value=str(value).encode(),
                    opaque=opq,
                ).pack()
            frames += response(op, opaque=opq).pack()
            # piggyback: return a pseudo-frame carrying raw bytes is not
            # possible here, so STAT is handled in handle_bytes-compatible
            # form via _RawReply
            return _RawReply(bytes(frames)), True

        if op == OP_QUIT:
            return response(op, opaque=opq), False

        return response(op, STATUS_UNKNOWN_COMMAND, opaque=opq), True


class _RawReply:
    """Pre-packed multi-frame reply (used by STAT)."""

    def __init__(self, payload: bytes) -> None:
        self._payload = payload

    def pack(self) -> bytes:
        return self._payload


class BinaryClient:
    """A synchronous binary-protocol client over an in-process server.

    The loopback form is enough for tests and examples; the wire bytes are
    identical to what a socket transport would carry.
    """

    def __init__(self, server: BinaryStoreServer) -> None:
        self._server = server
        self._request_parser = BinaryParser(MAGIC_REQUEST)
        self._response_parser = BinaryParser(MAGIC_RESPONSE)
        self._opaque = 0
        #: MGET/MSET support, negotiated once per connection: None until
        #: the first batched call, then True, or False after the server
        #: answered STATUS_UNKNOWN_COMMAND (per-key fallback from then on).
        self.batch_supported: Optional[bool] = None

    def _roundtrip(self, frame: BinaryFrame) -> BinaryFrame:
        self._opaque += 1
        frame = BinaryFrame(
            magic=frame.magic, opcode=frame.opcode, status=frame.status,
            opaque=self._opaque, cas=frame.cas, extras=frame.extras,
            key=frame.key, value=frame.value,
        )
        reply_bytes, _open = self._server.handle_bytes(
            self._request_parser, frame.pack()
        )
        self._response_parser.feed(reply_bytes)
        reply = self._response_parser.try_parse()
        assert reply is not None, "server returned an incomplete frame"
        if reply.opaque != self._opaque:
            raise ProtocolError("opaque mismatch in response")
        return reply

    def _roundtrip_multi(self, frame: BinaryFrame) -> list:
        self._opaque += 1
        frame = BinaryFrame(
            magic=frame.magic, opcode=frame.opcode, opaque=self._opaque,
            extras=frame.extras, key=frame.key, value=frame.value,
        )
        reply_bytes, _open = self._server.handle_bytes(
            self._request_parser, frame.pack()
        )
        self._response_parser.feed(reply_bytes)
        return list(self._response_parser)

    # -- operations --------------------------------------------------------------

    def get(self, key: bytes,
            context: Optional["tracing.TraceContext"] = None) -> Optional[bytes]:
        extras = tracing.pack_trace_extras(context) if context is not None else b""
        reply = self._roundtrip(request(OP_GET, key=key, extras=extras))
        return reply.value if reply.status == STATUS_OK else None

    def get_many(self, keys,
                 context: Optional["tracing.TraceContext"] = None) -> dict:
        """Fetch a key batch with one OP_MGET frame; ``{key: value}`` of hits.

        Falls back to per-key GETs against a server that answers
        ``STATUS_UNKNOWN_COMMAND`` (a build without the batched opcodes);
        the outcome is cached in :attr:`batch_supported` so the fallback
        is negotiated once per connection, not per call.
        """
        keys = list(keys)
        if not keys:
            return {}
        if self.batch_supported is not False:
            extras = (
                tracing.pack_trace_extras(context) if context is not None
                else b""
            )
            reply = self._roundtrip(
                request(OP_MGET, value=pack_mget_value(keys), extras=extras)
            )
            if reply.status == STATUS_OK:
                self.batch_supported = True
                return {
                    key: value
                    for key, _flags, value in unpack_mget_reply_value(reply.value)
                }
            if reply.status != STATUS_UNKNOWN_COMMAND:
                raise ProtocolError(f"mget failed with status {reply.status}")
            self.batch_supported = False
        out = {}
        for key in keys:
            value = self.get(key, context=context)
            if value is not None:
                out[key] = value
        return out

    def set_many(self, entries) -> Tuple[int, ...]:
        """Store ``(key, value, cost, exptime, flags)`` entries in one
        OP_MSET frame; returns per-item status codes in entry order.

        Same negotiation as :meth:`get_many`: an old server's
        ``STATUS_UNKNOWN_COMMAND`` flips :attr:`batch_supported` and the
        batch is replayed as per-key SETs.
        """
        entries = list(entries)
        if not entries:
            return ()
        if self.batch_supported is not False:
            reply = self._roundtrip(
                request(OP_MSET, value=pack_mset_value(entries))
            )
            if reply.status == STATUS_OK:
                self.batch_supported = True
                statuses = unpack_mset_reply_value(reply.value)
                if len(statuses) != len(entries):
                    raise ProtocolError("mset reply count mismatch")
                return statuses
            if reply.status != STATUS_UNKNOWN_COMMAND:
                raise ProtocolError(f"mset failed with status {reply.status}")
            self.batch_supported = False
        return tuple(
            self.set(key, value, cost=cost, exptime=exptime, flags=flags)
            for key, value, cost, exptime, flags in entries
        )

    def gets(self, key: bytes) -> Optional[Tuple[bytes, int]]:
        reply = self._roundtrip(request(OP_GET, key=key))
        if reply.status != STATUS_OK:
            return None
        return reply.value, reply.cas

    def set(self, key: bytes, value: bytes, cost: int = 0, exptime: int = 0,
            flags: int = 0, cas: int = 0) -> int:
        reply = self._roundtrip(
            request(OP_SET, key=key, value=value,
                    extras=pack_store_extras(flags, exptime, cost), cas=cas)
        )
        return reply.status

    def add(self, key: bytes, value: bytes, cost: int = 0) -> int:
        reply = self._roundtrip(
            request(OP_ADD, key=key, value=value,
                    extras=pack_store_extras(0, 0, cost))
        )
        return reply.status

    def replace(self, key: bytes, value: bytes, cost: int = 0) -> int:
        reply = self._roundtrip(
            request(OP_REPLACE, key=key, value=value,
                    extras=pack_store_extras(0, 0, cost))
        )
        return reply.status

    def append(self, key: bytes, suffix: bytes) -> int:
        return self._roundtrip(
            request(OP_APPEND, key=key, value=suffix)
        ).status

    def prepend(self, key: bytes, prefix: bytes) -> int:
        return self._roundtrip(
            request(OP_PREPEND, key=key, value=prefix)
        ).status

    def delete(self, key: bytes) -> int:
        return self._roundtrip(request(OP_DELETE, key=key)).status

    def incr(self, key: bytes, delta: int = 1, initial: int = 0,
             exptime: int = 0) -> Optional[int]:
        reply = self._roundtrip(
            request(OP_INCREMENT, key=key,
                    extras=_COUNTER_EXTRAS.pack(delta, initial, exptime))
        )
        if reply.status != STATUS_OK:
            return None
        return struct.unpack(">Q", reply.value)[0]

    def decr(self, key: bytes, delta: int = 1, initial: int = 0,
             exptime: int = 0) -> Optional[int]:
        reply = self._roundtrip(
            request(OP_DECREMENT, key=key,
                    extras=_COUNTER_EXTRAS.pack(delta, initial, exptime))
        )
        if reply.status != STATUS_OK:
            return None
        return struct.unpack(">Q", reply.value)[0]

    def touch(self, key: bytes, exptime: int) -> int:
        return self._roundtrip(
            request(OP_TOUCH, key=key, extras=_TOUCH_EXTRAS.pack(exptime))
        ).status

    def flush_all(self) -> int:
        return self._roundtrip(request(OP_FLUSH)).status

    def noop(self) -> int:
        return self._roundtrip(request(OP_NOOP)).status

    def version(self) -> bytes:
        return self._roundtrip(request(OP_VERSION)).value

    def stats(self) -> dict:
        frames = self._roundtrip_multi(request(OP_STAT))
        out = {}
        for frame in frames:
            if not frame.key:
                break
            out[frame.key.decode()] = frame.value.decode()
        return out

    def quit(self) -> None:
        self._roundtrip(request(OP_QUIT))
