"""Parsed protocol commands and responses.

The wire format lives in :mod:`repro.protocol.text`; these dataclasses are
the parsed form the server dispatches on and the client constructs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class ProtocolError(Exception):
    """Malformed input; the server answers ``CLIENT_ERROR``."""


class ServerBusyError(ProtocolError):
    """The server answered ``SERVER_ERROR busy`` (overload shedding).

    Raised client-side so callers can distinguish "the shard is shedding
    load, back off" from a transport failure — deliberately *not* in the
    client's retryable set: hammering a shedding server with reconnects is
    exactly what load shedding exists to prevent.
    """


@dataclass(frozen=True)
class GetCommand:
    """``get <key>+`` / ``gets <key>+`` — fetch one or more keys.

    ``gets`` additionally returns each item's CAS token.

    ``trace_token`` carries a raw distributed-tracing context token when
    the request line ended with a ``tctx:`` pseudo-key (see
    :mod:`repro.obs.tracing`).  The parser strips that token out of
    ``keys``, so dispatch never treats it as data; servers without a
    tracer ignore the field entirely.
    """

    keys: Tuple[bytes, ...]
    with_cas: bool = False
    trace_token: Optional[bytes] = None


@dataclass(frozen=True)
class StoreCommand:
    """A storage command with a data block.

    ``set/add/replace/append/prepend <key> <flags> <exptime> <bytes>
    [cost <cost>] [noreply]`` — plus ``cas``, which carries the
    ``cas_unique`` token after the byte count.

    ``cost`` is the paper's protocol extension (Section 4.3): an optional
    trailing token pair on storage commands carrying the recomputation
    cost.

    ``version`` is the replication extension: an optional ``version <v>``
    token pair carrying a hybrid-logical-clock version (see
    :mod:`repro.replica.hlc`).  A ``set`` whose version is older than the
    stored item's answers ``NOT_STORED`` (last-writer-wins); version 0
    means "unversioned" and always stores.
    """

    verb: str  # "set" | "add" | "replace" | "append" | "prepend" | "cas"
    key: bytes
    flags: int
    exptime: float
    value: bytes
    cost: int = 0
    noreply: bool = False
    cas_unique: Optional[int] = None
    version: int = 0


@dataclass(frozen=True)
class MultiGetCommand:
    """``mget <key>+ [tctx:...]`` — a first-class batched GET frame.

    Unlike a multi-key ``get``, ``mget`` is dispatched *vectored*: the
    server executes the whole key batch against the store in one call
    (one lock acquisition on a :class:`~repro.kvstore.ThreadSafeStore`)
    and encodes every response into one shared buffer.  ``trace_token``
    carries at most one trace context for the entire frame — batching
    collapses N per-key tokens into one.

    A server that predates this command answers ``CLIENT_ERROR unknown
    command`` (and closes), which is the negotiation signal clients use
    to fall back to per-key GETs (see
    :meth:`repro.aio.client.AsyncStoreClient.get_many`).
    """

    keys: Tuple[bytes, ...]
    trace_token: Optional[bytes] = None


@dataclass(frozen=True)
class MultiSetCommand:
    """``mset <count> [noreply]`` followed by ``count`` item blocks.

    Each item block is a storage spec line without the verb —
    ``<key> <flags> <exptime> <bytes> [cost <cost>]`` plus its data
    chunk — so one MSET frame carries a whole write batch with one
    header line of framing overhead.  ``items`` reuses
    :class:`StoreCommand` (verb ``"set"``) for dispatch symmetry.
    """

    items: Tuple[StoreCommand, ...]
    noreply: bool = False


@dataclass(frozen=True)
class DigestCommand:
    """``digest <nslots>`` — per-slot key/version summary for anti-entropy.

    The store hashes every live key into ``nslots`` buckets and answers,
    per non-empty bucket, the item count and an order-independent XOR hash
    over (key, version) pairs.  Two replicas holding identical data answer
    identical digests; a diverged slot pins down *where* to repair without
    shipping the keyspace.  Gated behind the same negotiation as
    MGET/MSET: pre-replication servers answer ``CLIENT_ERROR``.
    """

    nslots: int


@dataclass(frozen=True)
class DigestResponse:
    """``DIGEST <nslots>`` + one ``SLOT <slot> <count> <hash>`` per bucket.

    Only non-empty slots are listed; ``slots`` is sorted by slot index.
    """

    nslots: int
    slots: Tuple[Tuple[int, int, int], ...]  # (slot, count, hash)

    def as_map(self) -> dict:
        return {slot: (count, digest) for slot, count, digest in self.slots}


@dataclass(frozen=True)
class KeyListCommand:
    """``keys <slot> <nslots>`` — enumerate one digest slot's metadata.

    The repair/bootstrap follow-up to :class:`DigestCommand`: answers
    every live key whose hash falls in ``slot``, with its version, cost,
    flags and absolute exptime — everything but the value, which the
    caller fetches via MGET so large values ride the batched path.
    """

    slot: int
    nslots: int


@dataclass(frozen=True)
class KeyListResponse:
    """``KEYS <n>`` + one ``KEY <key> <version> <cost> <flags> <exptime>``."""

    entries: Tuple[Tuple[bytes, int, int, int, float], ...]


@dataclass(frozen=True)
class IncrCommand:
    """``incr/decr <key> <delta> [noreply]``."""

    key: bytes
    delta: int
    negative: bool = False  # True for decr
    noreply: bool = False


@dataclass(frozen=True)
class DeleteCommand:
    """``delete <key> [noreply]``."""

    key: bytes
    noreply: bool = False


@dataclass(frozen=True)
class TouchCommand:
    """``touch <key> <exptime> [noreply]``."""

    key: bytes
    exptime: float
    noreply: bool = False


@dataclass(frozen=True)
class FlushCommand:
    """``flush_all [noreply]``."""

    noreply: bool = False


@dataclass(frozen=True)
class StatsCommand:
    """``stats [slabs|items|settings|metrics|trace|reset]``.

    ``metrics`` renders the live registry (counters, gauges, latency
    percentiles), ``trace`` the recent eviction/rebalance events, and
    ``reset`` zeroes resettable counters and answers ``RESET`` (memcached's
    ``stats reset``).
    """

    subcommand: str = ""


@dataclass(frozen=True)
class QuitCommand:
    """``quit`` — close the connection."""


@dataclass(frozen=True)
class ValueResponse:
    """One ``VALUE`` block of a GET response (CAS token for ``gets``)."""

    key: bytes
    flags: int
    value: bytes
    cas_unique: Optional[int] = None


@dataclass(frozen=True)
class NumberResponse:
    """The decimal result line of a successful INCR/DECR."""

    value: int


@dataclass(frozen=True)
class GetResponse:
    values: Tuple[ValueResponse, ...]


@dataclass(frozen=True)
class MultiSetResponse:
    """One ``MSET <status>...`` line: per-item storage outcomes, in order.

    Statuses are the same words a single storage command would answer
    (``STORED``, ``NOT_STORED``, ``SERVER_ERROR ...`` collapsed to
    ``ERROR``), so a batch keeps per-key attribution while costing one
    response frame.
    """

    statuses: Tuple[bytes, ...]

    @property
    def stored(self) -> int:
        return sum(1 for status in self.statuses if status == b"STORED")


@dataclass(frozen=True)
class SimpleResponse:
    """STORED / NOT_STORED / DELETED / NOT_FOUND / TOUCHED / OK / ERROR..."""

    line: bytes


@dataclass(frozen=True)
class StatsResponse:
    stats: List[Tuple[str, str]] = field(default_factory=list)


STORED = SimpleResponse(b"STORED")
NOT_STORED = SimpleResponse(b"NOT_STORED")
DELETED = SimpleResponse(b"DELETED")
NOT_FOUND = SimpleResponse(b"NOT_FOUND")
TOUCHED = SimpleResponse(b"TOUCHED")
OK = SimpleResponse(b"OK")
RESET = SimpleResponse(b"RESET")
EXISTS = SimpleResponse(b"EXISTS")
NOT_FOUND_CAS = SimpleResponse(b"NOT_FOUND")


def server_error(message: str) -> SimpleResponse:
    return SimpleResponse(b"SERVER_ERROR " + message.encode())


#: the overload-shedding reply: "try again later, this box is protecting itself"
BUSY = SimpleResponse(b"SERVER_ERROR busy")


def client_error(message: str) -> SimpleResponse:
    return SimpleResponse(b"CLIENT_ERROR " + message.encode())
