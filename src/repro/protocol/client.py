"""Cost-aware client — the application side of the paper's Figure 1.

:class:`CostAwareClient` speaks the extended text protocol over either the
in-process loopback connection or a TCP socket.  On top of the raw
GET/SET/DELETE it offers :meth:`get_or_compute`, the cache-aside pattern
the paper's applications use: GET; on a miss run the computation, time it,
and SET the result back *with its cost attached*.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, List, Optional, Tuple

from repro.protocol.commands import (
    DeleteCommand,
    DigestCommand,
    DigestResponse,
    FlushCommand,
    GetCommand,
    GetResponse,
    IncrCommand,
    KeyListCommand,
    KeyListResponse,
    MultiGetCommand,
    MultiSetCommand,
    MultiSetResponse,
    NumberResponse,
    ProtocolError,
    SimpleResponse,
    StatsCommand,
    StatsResponse,
    StoreCommand,
    TouchCommand,
)
from repro.protocol.server import LoopbackConnection
from repro.protocol.sockopt import tune_socket
from repro.protocol.text import ResponseParser, encode_command


class Transport:
    """Minimal transport interface: write bytes, read some reply bytes."""

    def send(self, data: bytes) -> None:
        raise NotImplementedError

    def recv(self) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        pass


class LoopbackTransport(Transport):
    """Wraps :class:`LoopbackConnection` (synchronous: send returns reply).

    Emulates a pooled TCP client's redial: when the server closed the
    connection (``quit``, protocol error — including an old server
    refusing ``mget``), the next send opens a fresh connection to the
    same engine instead of failing forever.
    """

    def __init__(self, connection: LoopbackConnection) -> None:
        self._connection = connection
        self._pending = b""

    def send(self, data: bytes) -> None:
        if not self._connection.open:
            self._connection = LoopbackConnection(self._connection.engine)
        self._pending += self._connection.send(data)

    def recv(self) -> bytes:
        out, self._pending = self._pending, b""
        return out


class TCPTransport(Transport):
    """A blocking TCP socket transport."""

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        tune_socket(self._sock)

    def send(self, data: bytes) -> None:
        self._sock.sendall(data)

    def recv(self) -> bytes:
        return self._sock.recv(65536)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class CostAwareClient:
    """A memcached client that can attach costs to stored values."""

    def __init__(self, transport: Transport) -> None:
        self._transport = transport
        self._parser = ResponseParser()
        #: MGET/MSET support, negotiated on first batched call (None =
        #: unprobed; False = old server, per-key fallback from then on)
        self.batch_supported: Optional[bool] = None

    @classmethod
    def loopback(cls, server) -> "CostAwareClient":
        """Client over an in-process connection to a :class:`StoreServer`."""
        return cls(LoopbackTransport(LoopbackConnection(server)))

    @classmethod
    def tcp(cls, host: str, port: int) -> "CostAwareClient":
        return cls(TCPTransport(host, port))

    def close(self) -> None:
        self._transport.close()

    def _roundtrip(self, command):
        self._transport.send(encode_command(command))
        while True:
            response = self._parser.try_parse()
            if response is not None:
                return response
            data = self._transport.recv()
            if not data:
                raise ConnectionError("server closed the connection")
            self._parser.feed(data)

    # -- commands ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        response = self._roundtrip(GetCommand(keys=(key,)))
        if not isinstance(response, GetResponse):
            raise ProtocolError(f"unexpected GET response: {response!r}")
        return response.values[0].value if response.values else None

    def get_many(self, keys: List[bytes]) -> dict:
        """Batched GET: one MGET frame, falling back (once) on old servers.

        An old server answers ``CLIENT_ERROR unknown command`` and closes;
        loopback transports survive that (the reply arrives first), and
        the outcome is cached in :attr:`batch_supported` so only the first
        call pays the probe.
        """
        if not keys:
            return {}
        if self.batch_supported is not False:
            response = self._roundtrip(MultiGetCommand(keys=tuple(keys)))
            if isinstance(response, GetResponse):
                self.batch_supported = True
                return {v.key: v.value for v in response.values}
            if not (
                isinstance(response, SimpleResponse)
                and response.line.startswith(b"CLIENT_ERROR unknown command")
            ):
                raise ProtocolError(f"unexpected MGET response: {response!r}")
            self.batch_supported = False
        response = self._roundtrip(GetCommand(keys=tuple(keys)))
        if not isinstance(response, GetResponse):
            raise ProtocolError(f"unexpected GET response: {response!r}")
        return {v.key: v.value for v in response.values}

    def set_many(self, items: List[Tuple[bytes, bytes, int]],
                 exptime: float = 0) -> int:
        """Batched SET of (key, value, cost[, version]) tuples; #stored.

        One MSET frame, with the same negotiated per-key fallback as
        :meth:`get_many`.  A 4th element per tuple carries a replication
        version (0 / omitted = unversioned).
        """
        if not items:
            return 0
        normalized = [
            item if len(item) == 4 else (item[0], item[1], item[2], 0)
            for item in items
        ]
        if self.batch_supported is not False:
            command = MultiSetCommand(
                items=tuple(
                    StoreCommand(verb="set", key=key, flags=0,
                                 exptime=exptime, value=value, cost=cost,
                                 version=version)
                    for key, value, cost, version in normalized
                )
            )
            response = self._roundtrip(command)
            if isinstance(response, MultiSetResponse):
                self.batch_supported = True
                return response.stored
            if not (
                isinstance(response, SimpleResponse)
                and response.line.startswith(b"CLIENT_ERROR unknown command")
            ):
                raise ProtocolError(f"unexpected MSET response: {response!r}")
            self.batch_supported = False
        stored = 0
        for key, value, cost, version in normalized:
            if self.set(key, value, cost=cost, exptime=exptime,
                        version=version):
                stored += 1
        return stored

    def digest(self, nslots: int) -> DigestResponse:
        """Anti-entropy digest: per-slot (count, hash) over live keys."""
        response = self._roundtrip(DigestCommand(nslots=nslots))
        if not isinstance(response, DigestResponse):
            raise ProtocolError(f"unexpected DIGEST response: {response!r}")
        return response

    def key_entries(self, slot: int, nslots: int) -> KeyListResponse:
        """One digest slot's (key, version, cost, flags, exptime) entries."""
        response = self._roundtrip(KeyListCommand(slot=slot, nslots=nslots))
        if not isinstance(response, KeyListResponse):
            raise ProtocolError(f"unexpected KEYS response: {response!r}")
        return response

    def _store(self, verb: str, key: bytes, value: bytes, cost: int,
               exptime: float, flags: int, version: int = 0) -> bool:
        response = self._roundtrip(
            StoreCommand(verb=verb, key=key, flags=flags, exptime=exptime,
                         value=value, cost=cost, version=version)
        )
        if not isinstance(response, SimpleResponse):
            raise ProtocolError(f"unexpected store response: {response!r}")
        if response.line == b"STORED":
            return True
        if response.line == b"NOT_STORED":
            return False
        raise ProtocolError(response.line.decode())

    def set(self, key: bytes, value: bytes, cost: int = 0,
            exptime: float = 0, flags: int = 0, version: int = 0) -> bool:
        return self._store("set", key, value, cost, exptime, flags, version)

    def add(self, key: bytes, value: bytes, cost: int = 0,
            exptime: float = 0, flags: int = 0) -> bool:
        return self._store("add", key, value, cost, exptime, flags)

    def replace(self, key: bytes, value: bytes, cost: int = 0,
                exptime: float = 0, flags: int = 0) -> bool:
        return self._store("replace", key, value, cost, exptime, flags)

    def append(self, key: bytes, suffix: bytes) -> bool:
        return self._store("append", key, suffix, 0, 0, 0)

    def prepend(self, key: bytes, prefix: bytes) -> bool:
        return self._store("prepend", key, prefix, 0, 0, 0)

    def gets(self, key: bytes) -> Optional[Tuple[bytes, int]]:
        """GET with CAS token: (value, cas_unique), or None on a miss."""
        response = self._roundtrip(GetCommand(keys=(key,), with_cas=True))
        if not isinstance(response, GetResponse):
            raise ProtocolError(f"unexpected GETS response: {response!r}")
        if not response.values:
            return None
        value = response.values[0]
        return value.value, value.cas_unique or 0

    def cas(self, key: bytes, value: bytes, cas_unique: int, cost: int = 0,
            exptime: float = 0, flags: int = 0) -> str:
        """CAS: returns "stored", "exists" (stale token), or "not_found"."""
        response = self._roundtrip(
            StoreCommand(verb="cas", key=key, flags=flags, exptime=exptime,
                         value=value, cost=cost, cas_unique=cas_unique)
        )
        if not isinstance(response, SimpleResponse):
            raise ProtocolError(f"unexpected CAS response: {response!r}")
        mapping = {b"STORED": "stored", b"EXISTS": "exists",
                   b"NOT_FOUND": "not_found"}
        if response.line in mapping:
            return mapping[response.line]
        raise ProtocolError(response.line.decode())

    def incr(self, key: bytes, delta: int = 1) -> Optional[int]:
        """INCR: the new value, or None if the key is absent."""
        response = self._roundtrip(IncrCommand(key=key, delta=delta))
        if isinstance(response, NumberResponse):
            return response.value
        if isinstance(response, SimpleResponse):
            if response.line == b"NOT_FOUND":
                return None
            raise ProtocolError(response.line.decode())
        raise ProtocolError(f"unexpected INCR response: {response!r}")

    def decr(self, key: bytes, delta: int = 1) -> Optional[int]:
        """DECR: the new value (clamped at 0), or None if absent."""
        response = self._roundtrip(
            IncrCommand(key=key, delta=delta, negative=True)
        )
        if isinstance(response, NumberResponse):
            return response.value
        if isinstance(response, SimpleResponse):
            if response.line == b"NOT_FOUND":
                return None
            raise ProtocolError(response.line.decode())
        raise ProtocolError(f"unexpected DECR response: {response!r}")

    def delete(self, key: bytes) -> bool:
        response = self._roundtrip(DeleteCommand(key=key))
        return isinstance(response, SimpleResponse) and response.line == b"DELETED"

    def touch(self, key: bytes, exptime: float) -> bool:
        response = self._roundtrip(TouchCommand(key=key, exptime=exptime))
        return isinstance(response, SimpleResponse) and response.line == b"TOUCHED"

    def flush_all(self) -> bool:
        response = self._roundtrip(FlushCommand())
        return isinstance(response, SimpleResponse) and response.line == b"OK"

    def stats(self, subcommand: str = "") -> dict:
        """``stats [slabs|items|settings|metrics|trace]`` as a dict."""
        response = self._roundtrip(StatsCommand(subcommand=subcommand))
        if not isinstance(response, StatsResponse):
            raise ProtocolError(f"unexpected STATS response: {response!r}")
        return dict(response.stats)

    def stats_reset(self) -> bool:
        """``stats reset``: zero the server's resettable counters."""
        response = self._roundtrip(StatsCommand(subcommand="reset"))
        return (
            isinstance(response, SimpleResponse) and response.line == b"RESET"
        )

    # -- the cache-aside pattern (Figure 1) -----------------------------------------

    def get_or_compute(
        self,
        key: bytes,
        compute: Callable[[], bytes],
        cost_units: Optional[int] = None,
        cost_unit_seconds: float = 0.001,
        exptime: float = 0,
        estimator=None,
        key_class: Optional[str] = None,
    ) -> Tuple[bytes, bool]:
        """GET; on miss, compute, SET with cost, and return (value, was_hit).

        Cost selection, in priority order:

        1. explicit ``cost_units``;
        2. an attached :class:`~repro.protocol.estimator.CostEstimator`
           (``estimator`` + ``key_class``): the miss is timed, the class
           EWMA updates, and the smoothed estimate is attached — stable
           integers rather than one noisy sample;
        3. otherwise the raw measured time quantized at
           ``cost_unit_seconds`` per unit (the paper maps milliseconds of
           recomputation onto small integers).
        """
        cached = self.get(key)
        if cached is not None:
            return cached, True
        started = time.perf_counter()
        value = compute()
        elapsed = time.perf_counter() - started
        if cost_units is None:
            if estimator is not None:
                if key_class is None:
                    raise ValueError("estimator requires a key_class")
                cost_units = estimator.observe_and_estimate(key_class, elapsed)
            else:
                cost_units = max(1, round(elapsed / cost_unit_seconds))
        self.set(key, value, cost=cost_units, exptime=exptime)
        return value, False
