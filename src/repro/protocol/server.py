"""Protocol server: dispatches parsed commands onto a :class:`KVStore`.

:class:`StoreServer` is transport-agnostic — it consumes request bytes and
produces response bytes — so the same dispatcher backs the in-process
loopback connection used by tests/examples and the TCP server below.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.kvstore.errors import (
    CasMismatchError,
    NotStoredError,
    ObjectTooLargeError,
    OutOfMemoryError,
)
from repro.kvstore.item import NEVER_EXPIRES
from repro.kvstore.store import KVStore
from repro.protocol.commands import (
    DELETED,
    DeleteCommand,
    EXISTS,
    FlushCommand,
    GetCommand,
    GetResponse,
    IncrCommand,
    NOT_FOUND,
    NOT_STORED,
    NumberResponse,
    OK,
    ProtocolError,
    QuitCommand,
    STORED,
    StatsCommand,
    StatsResponse,
    StoreCommand,
    TOUCHED,
    TouchCommand,
    ValueResponse,
    client_error,
    server_error,
)
from repro.protocol.text import RequestParser, encode_response


class StoreServer:
    """Byte-in / byte-out protocol engine over one store."""

    def __init__(self, store: KVStore) -> None:
        self.store = store

    def handle_bytes(self, parser: RequestParser, data: bytes) -> Tuple[bytes, bool]:
        """Feed raw request bytes; returns (response bytes, keep_open)."""
        out = bytearray()
        try:
            parser.feed(data)
            for command in parser:
                response, reply = self.dispatch(command)
                if isinstance(command, QuitCommand):
                    return bytes(out), False
                if reply:
                    out += encode_response(response)
        except ProtocolError as exc:
            out += encode_response(client_error(str(exc)))
            return bytes(out), False
        return bytes(out), True

    def dispatch(self, command) -> Tuple[object, bool]:
        """Execute one command; returns (response, should_reply)."""
        store = self.store
        if isinstance(command, GetCommand):
            values = []
            for key in command.keys:
                item = store.get(key)
                if item is not None:
                    values.append(
                        ValueResponse(
                            key=key,
                            flags=item.flags,
                            value=item.value,
                            cas_unique=item.cas_unique if command.with_cas else None,
                        )
                    )
            return GetResponse(values=tuple(values)), True
        if isinstance(command, IncrCommand):
            delta = -command.delta if command.negative else command.delta
            try:
                result = store.incr(command.key, delta)
            except NotStoredError:
                return NOT_FOUND, not command.noreply
            except ValueError as exc:
                return client_error(str(exc)), not command.noreply
            return NumberResponse(value=result), not command.noreply
        if isinstance(command, StoreCommand):
            exptime = command.exptime
            if exptime and exptime != NEVER_EXPIRES:
                # memcached treats small exptimes as relative seconds
                exptime = store.clock.now + exptime
            try:
                if command.verb == "set":
                    store.set(command.key, command.value, cost=command.cost,
                              exptime=exptime, flags=command.flags)
                elif command.verb == "add":
                    store.add(command.key, command.value, cost=command.cost,
                              exptime=exptime, flags=command.flags)
                elif command.verb == "replace":
                    store.replace(command.key, command.value, cost=command.cost,
                                  exptime=exptime, flags=command.flags)
                elif command.verb == "append":
                    store.append(command.key, command.value)
                elif command.verb == "prepend":
                    store.prepend(command.key, command.value)
                elif command.verb == "cas":
                    store.cas(command.key, command.value,
                              cas_unique=command.cas_unique or 0,
                              cost=command.cost, exptime=exptime,
                              flags=command.flags)
                else:
                    return client_error(f"bad verb {command.verb}"), True
            except CasMismatchError:
                return EXISTS, not command.noreply
            except NotStoredError:
                verb_not_found = command.verb in ("cas",)
                return (NOT_FOUND if verb_not_found else NOT_STORED), not command.noreply
            except ObjectTooLargeError:
                return server_error("object too large for cache"), not command.noreply
            except OutOfMemoryError:
                return server_error("out of memory storing object"), not command.noreply
            return STORED, not command.noreply
        if isinstance(command, DeleteCommand):
            found = store.delete(command.key)
            return (DELETED if found else NOT_FOUND), not command.noreply
        if isinstance(command, TouchCommand):
            exptime = command.exptime
            if exptime and exptime != NEVER_EXPIRES:
                exptime = store.clock.now + exptime
            found = store.touch_ttl(command.key, exptime)
            return (TOUCHED if found else NOT_FOUND), not command.noreply
        if isinstance(command, FlushCommand):
            store.flush_all()
            return OK, not command.noreply
        if isinstance(command, StatsCommand):
            return self._stats_response(command.subcommand), True
        if isinstance(command, QuitCommand):
            return OK, False
        return client_error(f"unhandled command {type(command).__name__}"), True

    def _stats_response(self, subcommand: str) -> StatsResponse:
        """Render ``stats`` and its memcached-style subcommands."""
        store = self.store
        stats = []
        if subcommand == "slabs":
            for cls in store.allocator.classes:
                if cls.num_slabs == 0 and cls.live_items == 0:
                    continue
                cid = cls.class_id
                stats.append((f"{cid}:chunk_size", str(cls.chunk_size)))
                stats.append((f"{cid}:total_slabs", str(cls.num_slabs)))
                stats.append((f"{cid}:total_chunks", str(cls.total_chunks)))
                stats.append((f"{cid}:used_chunks", str(cls.live_items)))
                stats.append((f"{cid}:evicted", str(cls.evictions)))
            stats.append(("active_slabs", str(store.allocator.allocated_slabs)))
            stats.append(
                ("total_malloced", str(store.allocator.memory_used))
            )
        elif subcommand == "items":
            for cls in store.allocator.classes:
                if cls.live_items == 0 and cls.evictions == 0:
                    continue
                cid = cls.class_id
                stats.append((f"items:{cid}:number", str(cls.live_items)))
                stats.append((f"items:{cid}:evicted", str(cls.evictions)))
                stats.append(
                    (
                        f"items:{cid}:avg_cost_per_byte",
                        f"{cls.average_cost_per_byte():.6f}",
                    )
                )
        elif subcommand == "settings":
            allocator = store.allocator
            stats.append(("maxbytes", str(allocator.memory_limit)))
            stats.append(("slab_size", str(allocator.slab_size)))
            stats.append(("growth_factor", str(allocator.growth_factor)))
            stats.append(("evictions", "on"))
            stats.append(("rebalancer", store.rebalancer.name))
        else:
            snapshot = store.stats.snapshot()
            stats = [
                (name, str(value)) for name, value in sorted(snapshot.items())
            ]
            stats.append(("curr_items", str(len(store))))
            stats.append(("bytes", str(store.live_bytes)))
        return StatsResponse(stats=stats)


class LoopbackConnection:
    """An in-process "connection": request bytes in, response bytes out.

    Tests and examples use this instead of sockets; framing and parsing run
    exactly as over TCP.
    """

    def __init__(self, server: StoreServer) -> None:
        self._server = server
        self._parser = RequestParser()
        self.open = True

    def send(self, data: bytes) -> bytes:
        if not self.open:
            raise ConnectionError("connection closed")
        response, keep_open = self._server.handle_bytes(self._parser, data)
        if not keep_open:
            self.open = False
        return response


class _TCPHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        parser = RequestParser()
        engine: StoreServer = self.server.engine  # type: ignore[attr-defined]
        while True:
            try:
                data = self.request.recv(65536)
            except ConnectionError:
                return
            if not data:
                return
            response, keep_open = engine.handle_bytes(parser, data)
            if response:
                self.request.sendall(response)
            if not keep_open:
                return


class TCPStoreServer:
    """A threaded TCP server speaking the extended memcached protocol.

    Binds to loopback only (this is a reproduction, not a hardened daemon).
    """

    def __init__(self, store: KVStore, host: str = "127.0.0.1", port: int = 0) -> None:
        self.engine = StoreServer(store)

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _TCPHandler)
        self._server.engine = self.engine  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="gdwheel-store-server", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TCPStoreServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
