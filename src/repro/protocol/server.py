"""Protocol server: dispatches parsed commands onto a :class:`KVStore`.

:class:`StoreServer` is transport-agnostic — it consumes request bytes and
produces response bytes — so the same dispatcher backs the in-process
loopback connection used by tests/examples and the TCP server below.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from typing import Optional, Tuple

from repro.obs import tracing
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import IdleDisconnectEvent, OverloadShedEvent
from repro.protocol.sockopt import tune_socket
from repro.kvstore.errors import (
    CasMismatchError,
    NotStoredError,
    ObjectTooLargeError,
    OutOfMemoryError,
)
from repro.kvstore.item import NEVER_EXPIRES
from repro.kvstore.store import KVStore
from repro.protocol.commands import (
    BUSY,
    DELETED,
    DeleteCommand,
    DigestCommand,
    DigestResponse,
    EXISTS,
    FlushCommand,
    KeyListCommand,
    KeyListResponse,
    GetCommand,
    GetResponse,
    IncrCommand,
    MultiGetCommand,
    MultiSetCommand,
    MultiSetResponse,
    NOT_FOUND,
    NOT_STORED,
    NumberResponse,
    OK,
    ProtocolError,
    QuitCommand,
    RESET,
    STORED,
    StatsCommand,
    StatsResponse,
    StoreCommand,
    TOUCHED,
    TouchCommand,
    ValueResponse,
    client_error,
    server_error,
)
from repro.protocol.text import RequestParser, encode_response_into

#: most recent trace events included in a ``stats trace`` response
TRACE_TAIL = 64


def command_label(command) -> str:
    """The metrics label for a parsed command (``cmd="get"`` etc.)."""
    if isinstance(command, GetCommand):
        return "gets" if command.with_cas else "get"
    if isinstance(command, MultiGetCommand):
        return "mget"
    if isinstance(command, MultiSetCommand):
        return "mset"
    if isinstance(command, StoreCommand):
        return command.verb
    if isinstance(command, IncrCommand):
        return "decr" if command.negative else "incr"
    if isinstance(command, DeleteCommand):
        return "delete"
    if isinstance(command, TouchCommand):
        return "touch"
    if isinstance(command, FlushCommand):
        return "flush_all"
    if isinstance(command, StatsCommand):
        return "stats"
    if isinstance(command, DigestCommand):
        return "digest"
    if isinstance(command, KeyListCommand):
        return "keys"
    if isinstance(command, QuitCommand):
        return "quit"
    return type(command).__name__.lower()


def _stat_str(value) -> str:
    """Render one stats value the way memcached does (floats trimmed)."""
    if isinstance(value, float) and value != int(value):
        return f"{value:.6f}".rstrip("0").rstrip(".")
    if isinstance(value, float):
        return str(int(value))
    return str(value)


class StoreServer:
    """Byte-in / byte-out protocol engine over one store.

    Args:
        store: the backing :class:`KVStore`.
        registry: metrics registry for per-command latency histograms and
            command counters; defaults to the store's own registry so one
            ``stats metrics`` read covers both layers.  When the registry
            is a :class:`~repro.obs.registry.NullRegistry`, dispatch skips
            all timing work.
        trace: event trace rendered by ``stats trace``; defaults to the
            store's trace (may be ``None``).
        tracer: optional :class:`~repro.obs.tracing.Tracer` for per-request
            distributed spans.  When set, a GET batch that arrived with a
            sampled trace context records a ``server.dispatch`` span (and
            activates it, so store/tier spans nest under it); untraced
            commands pay one attribute check.  ``None`` (default) keeps
            dispatch byte-for-byte identical to the pre-tracing path.
        accept_batch: when False the server refuses ``mget``/``mset``
            with ``CLIENT_ERROR unknown command`` exactly like a build
            that predates them — the knob compat-matrix tests use to
            stand up an "old server" and exercise client fallback.
    """

    def __init__(
        self,
        store: KVStore,
        registry: Optional[MetricsRegistry] = None,
        trace=None,
        tracer=None,
        accept_batch: bool = True,
    ) -> None:
        self.store = store
        self.accept_batch = accept_batch
        self.metrics = registry if registry is not None else store.metrics
        self.trace = trace if trace is not None else store.trace
        self.tracer = tracer
        self._timing = self.metrics.enabled
        self._cmd_hists: dict = {}
        self._shed_counters: dict = {}
        self._perf_counter = time.perf_counter

    def _observe_command(self, label: str, elapsed_us: float) -> None:
        # per-command counts ride on the histogram's _count series, so the
        # hot path is one buffered append (the instrument's list identity
        # is stable; any metrics read flushes it)
        entry = self._cmd_hists.get(label)
        if entry is None:
            hist = self.metrics.histogram(
                "cmd_latency_us",
                help="per-command dispatch latency in microseconds",
                cmd=label,
            )
            entry = self._cmd_hists[label] = (
                hist._pending, hist._pending.append, hist.flush, hist.FLUSH_AT
            )
        pending, append, flush, flush_at = entry
        append(elapsed_us)
        if len(pending) >= flush_at:
            flush()

    def handle_bytes(
        self,
        parser: RequestParser,
        data: bytes,
        budget: Optional[float] = None,
        shed_reason: str = "deadline",
    ) -> Tuple[bytes, bool]:
        """Feed raw request bytes; returns (response bytes, keep_open).

        Every response of a pipelined batch serializes into one shared
        buffer, converted to ``bytes`` once per flush.

        ``budget`` is the overload-protection hook: the batch may spend
        that many wall-clock seconds dispatching, after which every
        remaining command is answered ``SERVER_ERROR busy`` instead of
        executed (``budget=0`` sheds the whole batch).  Framing is
        preserved — exactly one reply per reply-expecting command, and
        ``noreply`` commands are shed silently — so pipelined clients
        stay in sync.  ``quit`` is honoured even while shedding.
        """
        if budget is None:
            return self._handle_unbudgeted(parser, data)
        out = bytearray()
        perf_counter = self._perf_counter
        deadline = perf_counter() + budget
        shed = 0
        keep_open = True
        try:
            parser.feed(data)
            for command in parser:
                if isinstance(command, QuitCommand):
                    keep_open = False
                    break
                if shed or perf_counter() >= deadline:
                    shed += 1
                    if not getattr(command, "noreply", False):
                        encode_response_into(out, BUSY)
                    continue
                response, reply = self.dispatch(command)
                if reply:
                    encode_response_into(out, response)
        except ProtocolError as exc:
            encode_response_into(out, client_error(str(exc)))
            keep_open = False
        if shed:
            self._record_shed(shed, "deadline" if budget > 0 else shed_reason)
        return bytes(out), keep_open

    def _handle_unbudgeted(
        self, parser: RequestParser, data: bytes
    ) -> Tuple[bytes, bool]:
        out = bytearray()
        try:
            parser.feed(data)
            for command in parser:
                response, reply = self.dispatch(command)
                if isinstance(command, QuitCommand):
                    return bytes(out), False
                if reply:
                    encode_response_into(out, response)
        except ProtocolError as exc:
            encode_response_into(out, client_error(str(exc)))
            return bytes(out), False
        return bytes(out), True

    def _record_shed(self, shed: int, reason: str) -> None:
        counter = self._shed_counters.get(reason)
        if counter is None:
            counter = self._shed_counters[reason] = self.metrics.counter(
                "server_shed_commands_total",
                help="commands answered SERVER_ERROR busy under overload",
                reason=reason,
            )
        counter.inc(shed)
        if self.trace is not None:
            self.trace.record(
                OverloadShedEvent(reason=reason, shed_commands=shed)
            )
        if self.tracer is not None:
            # A shed batch never reaches dispatch, so rejected requests
            # would otherwise be invisible to tracing: record a local
            # zero-duration marker span (its own trace — the shed path by
            # design does not read per-command tokens).
            self.tracer.record_complete(
                "server.shed",
                start_us=time.time_ns() // 1000,
                duration_us=0.0,
                forced="shed",
                reason=reason,
                shed_commands=shed,
            )

    def dispatch(self, command) -> Tuple[object, bool]:
        """Execute one command; returns (response, should_reply).

        When instrumented, each dispatch records into
        ``cmd_latency_us{cmd=...}`` (whose ``_count`` is the command count).
        With a tracer attached, a command carrying a sampled trace token
        additionally records a ``server.dispatch`` span and runs with that
        span active, so store/tier spans attach beneath it.
        """
        if self.tracer is not None:
            raw = getattr(command, "trace_token", None)
            if raw is not None:
                context = tracing.decode_token(raw)
                if context is not None and context.sampled:
                    return self._dispatch_traced(command, context)
        return self._timed_dispatch(command)

    def _dispatch_traced(self, command, context) -> Tuple[object, bool]:
        with self.tracer.span(
            "server.dispatch",
            trace_id=context.trace_id,
            parent_id=context.span_id,
            cmd=command_label(command),
            nkeys=len(getattr(command, "keys", ()) or ()),
        ):
            return self._timed_dispatch(command)

    def _timed_dispatch(self, command) -> Tuple[object, bool]:
        if not self._timing:
            return self._dispatch(command)
        perf_counter = self._perf_counter
        started = perf_counter()
        try:
            return self._dispatch(command)
        finally:
            self._observe_command(
                command_label(command), (perf_counter() - started) * 1e6
            )

    def _dispatch(self, command) -> Tuple[object, bool]:
        store = self.store
        if isinstance(command, GetCommand):
            values = []
            for key in command.keys:
                item = store.get(key)
                if item is not None:
                    values.append(
                        ValueResponse(
                            key=key,
                            flags=item.flags,
                            value=item.value,
                            cas_unique=item.cas_unique if command.with_cas else None,
                        )
                    )
            return GetResponse(values=tuple(values)), True
        if isinstance(command, MultiGetCommand):
            # Vectored read: the whole batch goes through the store in one
            # call (one lock acquisition on a ThreadSafeStore).
            keys = command.keys
            get_many = getattr(store, "get_many", None)
            if get_many is not None:
                items = get_many(keys)
            else:  # store-like wrapper without the vectored API
                items = [store.get(key) for key in keys]
            values = []
            for key, item in zip(keys, items):
                if item is not None:
                    values.append(
                        ValueResponse(key=key, flags=item.flags, value=item.value)
                    )
            return GetResponse(values=tuple(values)), True
        if isinstance(command, MultiSetCommand):
            return self._dispatch_mset(command)
        if isinstance(command, IncrCommand):
            delta = -command.delta if command.negative else command.delta
            try:
                result = store.incr(command.key, delta)
            except NotStoredError:
                return NOT_FOUND, not command.noreply
            except ValueError as exc:
                return client_error(str(exc)), not command.noreply
            return NumberResponse(value=result), not command.noreply
        if isinstance(command, StoreCommand):
            exptime = command.exptime
            if exptime and exptime != NEVER_EXPIRES:
                # memcached treats small exptimes as relative seconds
                exptime = store.clock.now + exptime
            try:
                if command.verb == "set":
                    if command.version:
                        store.set(command.key, command.value,
                                  cost=command.cost, exptime=exptime,
                                  flags=command.flags,
                                  version=command.version)
                    else:
                        store.set(command.key, command.value,
                                  cost=command.cost, exptime=exptime,
                                  flags=command.flags)
                elif command.verb == "add":
                    store.add(command.key, command.value, cost=command.cost,
                              exptime=exptime, flags=command.flags)
                elif command.verb == "replace":
                    store.replace(command.key, command.value, cost=command.cost,
                                  exptime=exptime, flags=command.flags)
                elif command.verb == "append":
                    store.append(command.key, command.value)
                elif command.verb == "prepend":
                    store.prepend(command.key, command.value)
                elif command.verb == "cas":
                    store.cas(command.key, command.value,
                              cas_unique=command.cas_unique or 0,
                              cost=command.cost, exptime=exptime,
                              flags=command.flags)
                else:
                    return client_error(f"bad verb {command.verb}"), True
            except CasMismatchError:
                return EXISTS, not command.noreply
            except NotStoredError:
                verb_not_found = command.verb in ("cas",)
                return (NOT_FOUND if verb_not_found else NOT_STORED), not command.noreply
            except ObjectTooLargeError:
                return server_error("object too large for cache"), not command.noreply
            except OutOfMemoryError:
                return server_error("out of memory storing object"), not command.noreply
            return STORED, not command.noreply
        if isinstance(command, DeleteCommand):
            found = store.delete(command.key)
            return (DELETED if found else NOT_FOUND), not command.noreply
        if isinstance(command, TouchCommand):
            exptime = command.exptime
            if exptime and exptime != NEVER_EXPIRES:
                exptime = store.clock.now + exptime
            found = store.touch_ttl(command.key, exptime)
            return (TOUCHED if found else NOT_FOUND), not command.noreply
        if isinstance(command, FlushCommand):
            store.flush_all()
            return OK, not command.noreply
        if isinstance(command, StatsCommand):
            if command.subcommand == "reset":
                return self._stats_reset(), True
            return self._stats_response(command.subcommand), True
        if isinstance(command, DigestCommand):
            digest = getattr(store, "digest", None)
            if digest is None:  # store-like wrapper without anti-entropy
                return server_error("digest unsupported"), True
            slots = tuple(digest(command.nslots))
            return DigestResponse(nslots=command.nslots, slots=slots), True
        if isinstance(command, KeyListCommand):
            key_entries = getattr(store, "key_entries", None)
            if key_entries is None:
                return server_error("keys unsupported"), True
            entries = tuple(key_entries(command.slot, command.nslots))
            return KeyListResponse(entries=entries), True
        if isinstance(command, QuitCommand):
            return OK, False
        return client_error(f"unhandled command {type(command).__name__}"), True

    def _dispatch_mset(self, command: MultiSetCommand) -> Tuple[object, bool]:
        """Vectored write: one ``set_many`` call, per-item status words.

        Status vocabulary (single tokens, so the one-line ``MSET``
        response stays splittable): ``STORED``, ``NOT_STORED`` (rejected
        by last-writer-wins version resolution — the durable copy is
        *newer*, so quorum accounting still counts it as an ack),
        ``TOO_LARGE`` (object larger than a slab), ``OOM`` (allocation
        failed under memory pressure).
        """
        store = self.store
        now = store.clock.now
        entries = []
        for item in command.items:
            exptime = item.exptime
            if exptime and exptime != NEVER_EXPIRES:
                exptime = now + exptime
            entries.append(
                (item.key, item.value, item.cost, exptime, item.flags,
                 item.version)
            )
        set_many = getattr(store, "set_many", None)
        if set_many is not None:
            results = set_many(entries)
        else:  # store-like wrapper without the vectored API
            results = []
            for key, value, cost, exptime, flags, version in entries:
                try:
                    results.append(
                        store.set(key, value, cost=cost, exptime=exptime,
                                  flags=flags)
                    )
                except (ObjectTooLargeError, OutOfMemoryError) as exc:
                    results.append(exc)
        statuses = []
        for result in results:
            if isinstance(result, ObjectTooLargeError):
                statuses.append(b"TOO_LARGE")
            elif isinstance(result, OutOfMemoryError):
                statuses.append(b"OOM")
            elif isinstance(result, NotStoredError):
                statuses.append(b"NOT_STORED")
            elif isinstance(result, BaseException):  # defensive: unknown error
                statuses.append(b"ERROR")
            else:
                statuses.append(b"STORED")
        return MultiSetResponse(statuses=tuple(statuses)), not command.noreply

    def _stats_reset(self):
        """``stats reset``: zero resettable counters/histograms, keep gauges.

        Mirrors memcached: rate counters restart, level facts (curr_items,
        bytes, connection gauges) survive.  The event trace is cleared too.
        Answers ``RESET``.
        """
        self.store.metrics.reset()
        if self.metrics is not self.store.metrics:
            self.metrics.reset()
        if self.trace is not None:
            self.trace.clear()
        return RESET

    def _stats_response(self, subcommand: str) -> StatsResponse:
        """Render ``stats`` and its memcached-style subcommands."""
        store = self.store
        stats = []
        if subcommand == "slabs":
            for cls in store.allocator.classes:
                if cls.num_slabs == 0 and cls.live_items == 0:
                    continue
                cid = cls.class_id
                stats.append((f"{cid}:chunk_size", str(cls.chunk_size)))
                stats.append((f"{cid}:total_slabs", str(cls.num_slabs)))
                stats.append((f"{cid}:total_chunks", str(cls.total_chunks)))
                stats.append((f"{cid}:used_chunks", str(cls.live_items)))
                stats.append((f"{cid}:evicted", str(cls.evictions)))
            stats.append(("active_slabs", str(store.allocator.allocated_slabs)))
            stats.append(
                ("total_malloced", str(store.allocator.memory_used))
            )
        elif subcommand == "items":
            for cls in store.allocator.classes:
                if cls.live_items == 0 and cls.evictions == 0:
                    continue
                cid = cls.class_id
                stats.append((f"items:{cid}:number", str(cls.live_items)))
                stats.append((f"items:{cid}:evicted", str(cls.evictions)))
                stats.append(
                    (
                        f"items:{cid}:avg_cost_per_byte",
                        f"{cls.average_cost_per_byte():.6f}",
                    )
                )
        elif subcommand == "metrics":
            store.publish_metrics()  # refresh pull-style gauges first
            snapshot = dict(self.metrics.snapshot())
            if self.metrics is not store.metrics:
                snapshot.update(store.metrics.snapshot())
            for name in sorted(snapshot):
                value = snapshot[name]
                rendered = (
                    f"{value:.6f}".rstrip("0").rstrip(".")
                    if isinstance(value, float) and value != int(value)
                    else str(int(value))
                )
                stats.append((name, rendered))
        elif subcommand == "trace":
            trace = self.trace
            if trace is None:
                stats.append(("trace", "disabled"))
            else:
                for kind in sorted(trace.counts):
                    stats.append((f"trace:count:{kind}", str(trace.counts[kind])))
                stats.append(("trace:buffered", str(len(trace))))
                for event in trace.events(last=TRACE_TAIL):
                    stats.append((f"trace:{event.seq}", event.describe()))
        elif subcommand == "settings":
            allocator = store.allocator
            stats.append(("maxbytes", str(allocator.memory_limit)))
            stats.append(("slab_size", str(allocator.slab_size)))
            stats.append(("growth_factor", str(allocator.growth_factor)))
            stats.append(("evictions", "on"))
            stats.append(("rebalancer", store.rebalancer.name))
            tier = getattr(store, "tier", None)
            stats.append(
                ("tier", "on" if tier is not None else "off")
            )
            if tier is not None:
                stats.append(
                    ("tier_maxbytes", str(tier.config.capacity_bytes))
                )
                stats.append(
                    ("tier_segment_bytes", str(tier.config.segment_bytes))
                )
        elif subcommand == "tier":
            tier = getattr(store, "tier", None)
            if tier is None:
                stats.append(("tier", "disabled"))
            else:
                snapshot = tier.snapshot()
                for name in sorted(snapshot):
                    value = snapshot[name]
                    if isinstance(value, dict):
                        for sub in sorted(value):
                            stats.append((f"{name}:{sub}", _stat_str(value[sub])))
                    else:
                        stats.append((name, _stat_str(value)))
        else:
            snapshot = store.stats.snapshot()
            stats = [
                (name, str(value)) for name, value in sorted(snapshot.items())
            ]
            stats.append(("curr_items", str(len(store))))
            stats.append(("bytes", str(store.live_bytes)))
        return StatsResponse(stats=stats)


class StoreConnection:
    """Per-connection incremental dispatch state, shared by every transport.

    One instance per client connection: it owns the connection's
    :class:`RequestParser` and pushes raw reads through the engine.  Because
    the parser is incremental and :meth:`StoreServer.handle_bytes` drains
    *every* complete command in the buffer, feeding one TCP segment that
    carries many commands produces one coalesced response blob — request
    pipelining falls out for free, identically for the threaded server, the
    in-process loopback, and the asyncio server in :mod:`repro.aio`.
    """

    __slots__ = ("engine", "parser", "open")

    def __init__(self, engine: StoreServer) -> None:
        self.engine = engine
        self.parser = RequestParser(
            accept_batch=getattr(engine, "accept_batch", True)
        )
        self.open = True

    def feed(
        self,
        data: bytes,
        budget: Optional[float] = None,
        shed_reason: str = "deadline",
    ) -> bytes:
        """Feed one raw read; returns coalesced response bytes (may be empty).

        After a ``quit`` or a protocol error :attr:`open` flips to False and
        the transport should close after flushing the returned bytes.
        ``budget``/``shed_reason`` pass through to
        :meth:`StoreServer.handle_bytes` for overload shedding.
        """
        if not self.open:
            raise ConnectionError("connection closed")
        response, keep_open = self.engine.handle_bytes(
            self.parser, data, budget=budget, shed_reason=shed_reason
        )
        if not keep_open:
            self.open = False
        return response


class LoopbackConnection(StoreConnection):
    """An in-process "connection": request bytes in, response bytes out.

    Tests and examples use this instead of sockets; framing and parsing run
    exactly as over TCP.
    """

    __slots__ = ()

    def send(self, data: bytes) -> bytes:
        return self.feed(data)


class _TCPHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        tune_socket(self.request)
        engine: StoreServer = self.server.engine  # type: ignore[attr-defined]
        overload = getattr(self.server, "overload", None)
        metrics = engine.metrics
        current = metrics.gauge(
            "server_current_connections", help="open client connections",
            transport="threaded",
        )
        bytes_in = metrics.counter(
            "server_bytes_in_total", help="request bytes received",
            transport="threaded",
        )
        bytes_out = metrics.counter(
            "server_bytes_out_total", help="response bytes sent",
            transport="threaded",
        )
        metrics.counter(
            "server_connections_total", help="connections accepted",
            transport="threaded",
        ).inc()
        current.inc()
        idle_timeout = overload.idle_timeout if overload is not None else None
        budget = overload.request_deadline if overload is not None else None
        if idle_timeout is not None:
            self.request.settimeout(idle_timeout)
        connection = StoreConnection(engine)
        try:
            while connection.open:
                try:
                    data = self.request.recv(65536)
                except socket.timeout:
                    metrics.counter(
                        "server_idle_disconnects_total",
                        help="connections closed by the idle timeout",
                        transport="threaded",
                    ).inc()
                    if engine.trace is not None:
                        engine.trace.record(
                            IdleDisconnectEvent(idle_timeout=idle_timeout)
                        )
                    return
                except (ConnectionError, OSError):
                    return
                if not data:
                    return
                bytes_in.inc(len(data))
                try:
                    response = connection.feed(data, budget=budget)
                except ConnectionError:
                    return
                if response:
                    bytes_out.inc(len(response))
                    try:
                        self.request.sendall(response)
                    except (ConnectionError, OSError):
                        return
        finally:
            current.dec()


class TCPStoreServer:
    """A threaded TCP server speaking the extended memcached protocol.

    Binds to loopback only (this is a reproduction, not a hardened daemon).
    Test-friendly by construction: ``allow_reuse_address`` (SO_REUSEADDR)
    means a freshly stopped port can be rebound immediately, ``port=0``
    binds an ephemeral port exposed via :attr:`address`, and
    :meth:`shutdown` is an idempotent clean teardown that joins the
    accept thread.
    """

    def __init__(
        self,
        store: KVStore,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        overload=None,
        tracer=None,
        accept_batch: bool = True,
    ) -> None:
        self.engine = StoreServer(
            store, registry=registry, tracer=tracer, accept_batch=accept_batch
        )

        class _Server(socketserver.ThreadingTCPServer):
            # set *before* bind so TIME_WAIT sockets from a previous run
            # don't make back-to-back test servers fail with EADDRINUSE
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _TCPHandler)
        self._server.engine = self.engine  # type: ignore[attr-defined]
        # idle-timeout + request-deadline protection (an
        # :class:`repro.resilience.OverloadPolicy`); None = unprotected
        self._server.overload = overload  # type: ignore[attr-defined]
        self.overload = overload
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — the real port even when created with 0."""
        return self._server.server_address  # type: ignore[return-value]

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self._closed:
            raise RuntimeError("server already shut down")
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="gdwheel-store-server", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop accepting, close the listening socket, join the thread.

        Safe to call more than once (later calls are no-ops).
        """
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            # BaseServer.shutdown blocks until serve_forever acknowledges,
            # so only call it when the accept loop is actually running
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # memcached daemons call this path "shutdown"; keep both names.
    shutdown = stop

    def __enter__(self) -> "TCPStoreServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
