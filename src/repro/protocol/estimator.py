"""Client-side cost estimation — how applications get cost numbers at all.

The paper assumes "this cost can only be defined by clients and measured
outside the cache" (Section 1) but leaves the measuring to the
application.  In a real deployment each key class's recomputation time
jitters run to run, and GD-Wheel wants *stable small integers* (Section
2.2's limited range).  :class:`CostEstimator` provides that glue:

* per-key-class exponentially weighted moving averages of observed
  recomputation times (classes are caller-defined, e.g. the interaction
  or query template name, so one cold key benefits from its class's
  history);
* quantization of seconds into the integer cost units the wheel expects,
  with a configurable unit and cap (the wheel's representable range).

:meth:`CostAwareClient.get_or_compute` accepts an estimator, closing the
loop: misses are timed, the class EWMA updates, and the SET carries the
quantized estimate rather than one noisy sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class _ClassState:
    ewma_seconds: float
    samples: int


class CostEstimator:
    """EWMA-per-class recomputation-cost estimator with quantization."""

    def __init__(
        self,
        cost_unit_seconds: float = 0.001,
        alpha: float = 0.2,
        max_cost: int = 65_535,
        min_cost: int = 1,
    ) -> None:
        """
        Args:
            cost_unit_seconds: seconds per integer cost unit (the paper maps
                ~1 ms granularity onto small integers).
            alpha: EWMA weight of the newest sample.
            max_cost: cap, matching the wheel's representable range
                (65,535 for the paper's 2x256 geometry).
            min_cost: floor for any observed class (0 would mean
                "worthless"; the paper argues such values shouldn't be
                cached at all).
        """
        if cost_unit_seconds <= 0:
            raise ValueError("cost_unit_seconds must be positive")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 <= min_cost <= max_cost:
            raise ValueError("need 0 <= min_cost <= max_cost")
        self.cost_unit_seconds = cost_unit_seconds
        self.alpha = alpha
        self.max_cost = max_cost
        self.min_cost = min_cost
        self._classes: Dict[str, _ClassState] = {}

    def observe(self, key_class: str, seconds: float) -> None:
        """Record one measured recomputation time for ``key_class``."""
        if seconds < 0:
            raise ValueError("durations cannot be negative")
        state = self._classes.get(key_class)
        if state is None:
            self._classes[key_class] = _ClassState(
                ewma_seconds=seconds, samples=1
            )
            return
        state.ewma_seconds += self.alpha * (seconds - state.ewma_seconds)
        state.samples += 1

    def quantize(self, seconds: float) -> int:
        """Seconds -> clamped integer cost units."""
        units = round(seconds / self.cost_unit_seconds)
        return max(self.min_cost, min(int(units), self.max_cost))

    def estimate(self, key_class: str,
                 fallback_seconds: Optional[float] = None) -> Optional[int]:
        """Current integer cost estimate for a class.

        Returns None for an unseen class without a fallback; with a
        fallback, quantizes that instead (cold-start path).
        """
        state = self._classes.get(key_class)
        if state is not None:
            return self.quantize(state.ewma_seconds)
        if fallback_seconds is not None:
            return self.quantize(fallback_seconds)
        return None

    def observe_and_estimate(self, key_class: str, seconds: float) -> int:
        """Record a sample and return the updated estimate — the miss path."""
        self.observe(key_class, seconds)
        return self.estimate(key_class)  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-class EWMA state (observability)."""
        return {
            name: {
                "ewma_seconds": state.ewma_seconds,
                "samples": state.samples,
                "cost": self.quantize(state.ewma_seconds),
            }
            for name, state in self._classes.items()
        }
