"""The memcached protocols with the paper's cost extension.

Text protocol (the paper's choice) plus the binary protocol (with the
cost carried in extended SET extras), over in-process and TCP transports.
"""

from repro.protocol.estimator import CostEstimator
from repro.protocol.binary import (
    BinaryClient,
    BinaryFrame,
    BinaryParser,
    BinaryStoreServer,
)
from repro.protocol.client import (
    CostAwareClient,
    LoopbackTransport,
    TCPTransport,
    Transport,
)
from repro.protocol.commands import (
    DELETED,
    DeleteCommand,
    EXISTS,
    FlushCommand,
    IncrCommand,
    NumberResponse,
    GetCommand,
    GetResponse,
    NOT_FOUND,
    NOT_STORED,
    OK,
    ProtocolError,
    QuitCommand,
    STORED,
    ServerBusyError,
    SimpleResponse,
    StatsCommand,
    StatsResponse,
    StoreCommand,
    TOUCHED,
    TouchCommand,
    ValueResponse,
)
from repro.protocol.server import (
    LoopbackConnection,
    StoreConnection,
    StoreServer,
    TCPStoreServer,
)
from repro.protocol.sockopt import SOCKET_BUFFER, tune_socket
from repro.protocol.text import (
    RequestParser,
    ResponseParser,
    encode_command,
    encode_response,
)

__all__ = [
    "BinaryClient",
    "BinaryFrame",
    "BinaryParser",
    "BinaryStoreServer",
    "CostAwareClient",
    "CostEstimator",
    "DELETED",
    "DeleteCommand",
    "EXISTS",
    "FlushCommand",
    "IncrCommand",
    "NumberResponse",
    "GetCommand",
    "GetResponse",
    "LoopbackConnection",
    "LoopbackTransport",
    "NOT_FOUND",
    "NOT_STORED",
    "OK",
    "ProtocolError",
    "QuitCommand",
    "RequestParser",
    "ResponseParser",
    "SOCKET_BUFFER",
    "STORED",
    "ServerBusyError",
    "SimpleResponse",
    "StatsCommand",
    "StatsResponse",
    "StoreCommand",
    "StoreConnection",
    "StoreServer",
    "TCPStoreServer",
    "TCPTransport",
    "TOUCHED",
    "TouchCommand",
    "Transport",
    "ValueResponse",
    "tune_socket",
    "encode_command",
    "encode_response",
]
