"""Store pools: single consistent-hashed pools and Facebook-style
cost-partitioned pool groups (the Section 2.2 motivation).

Two ways to organize a fleet of stores:

* :class:`StorePool` — one pool; keys spread over all member stores by
  consistent hashing.  With GD-Wheel inside each store, expensive and
  cheap values share memory and the *policy* arbitrates.
* :class:`CostPartitionedPools` — Facebook's workaround for cost
  variation with cost-oblivious replacement (Nishtala et al., cited in
  Section 2.2): dedicate separate, statically sized pools to different
  cost classes.  "If the workload characteristics change over time, such
  partitioning may result in inefficient usage of memory" — the A-5
  ablation quantifies exactly that against a single GD-Wheel pool.

Both expose the same cache-aside surface (``get``/``set``/stats), so the
experiment driver can swap them freely.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.kvstore.item import Item
from repro.kvstore.store import KVStore
from repro.cluster.consistent import ConsistentHashRing


class StorePool:
    """One logical cache made of many stores behind a consistent-hash ring."""

    def __init__(self, stores: Dict[str, KVStore], replicas: int = 100) -> None:
        if not stores:
            raise ValueError("a pool needs at least one store")
        self._stores = dict(stores)
        self._ring = ConsistentHashRing(list(stores), replicas=replicas)

    @property
    def stores(self) -> Dict[str, KVStore]:
        return dict(self._stores)

    def store_for(self, key: bytes) -> KVStore:
        node = self._ring.node_for(key)
        assert node is not None
        return self._stores[node]

    def get(self, key: bytes) -> Optional[Item]:
        return self.store_for(key).get(key)

    def group_by_node(self, keys: Sequence[bytes]) -> Dict[str, List[bytes]]:
        """Partition ``keys`` by owning node, preserving per-node order."""
        grouped: Dict[str, List[bytes]] = {}
        for key in keys:
            node = self._ring.node_for(key)
            assert node is not None
            grouped.setdefault(node, []).append(key)
        return grouped

    def multi_get(self, keys: Sequence[bytes]) -> Dict[bytes, Item]:
        """Batch GET grouped per node; hits only, keyed by request key.

        The same batch surface as :meth:`repro.aio.pool.AsyncStorePool.multi_get`
        — one grouped lookup pass per owning node — so sync and async pools
        are drop-in interchangeable for cache-aside callers.
        """
        found: Dict[bytes, Item] = {}
        for node, node_keys in self.group_by_node(keys).items():
            store = self._stores[node]
            for key in node_keys:
                item = store.get(key)
                if item is not None:
                    found[key] = item
        return found

    def set(self, key: bytes, value: bytes, cost: int = 0, **kwargs) -> Item:
        return self.store_for(key).set(key, value, cost=cost, **kwargs)

    def delete(self, key: bytes) -> bool:
        return self.store_for(key).delete(key)

    def add_store(self, name: str, store: KVStore) -> None:
        """Scale out; ~1/n of the key space remaps (and cold-misses)."""
        if name in self._stores:
            raise ValueError(f"store {name!r} already pooled")
        self._stores[name] = store
        self._ring.add_node(name)

    def remove_store(self, name: str) -> KVStore:
        """Scale in (or simulate a node failure)."""
        store = self._stores.pop(name)
        self._ring.remove_node(name)
        return store

    def total_items(self) -> int:
        return sum(len(s) for s in self._stores.values())

    def aggregate_stats(self) -> Dict[str, int]:
        """Summed counters across member stores."""
        totals: Dict[str, int] = {}
        for store in self._stores.values():
            for name, value in store.stats.snapshot().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    @property
    def hit_rate(self) -> float:
        stats = self.aggregate_stats()
        gets = stats.get("gets", 0)
        return stats.get("get_hits", 0) / gets if gets else 0.0


class CostPartitionedPools:
    """Facebook-style static partitioning: one pool per cost band.

    ``bands`` are (inclusive upper cost bound, pool) pairs, sorted by
    bound; a key's cost selects its pool.  Memory is fixed per pool at
    construction — the whole point of the paper's criticism.
    """

    def __init__(self, bands: Sequence[Tuple[int, StorePool]]) -> None:
        if not bands:
            raise ValueError("at least one band required")
        bounds = [bound for bound, _ in bands]
        if bounds != sorted(bounds):
            raise ValueError("bands must be sorted by cost bound")
        self._bands: List[Tuple[int, StorePool]] = list(bands)

    def pool_for_cost(self, cost: int) -> StorePool:
        for bound, pool in self._bands:
            if cost <= bound:
                return pool
        return self._bands[-1][1]  # costs above the top bound use the last pool

    def get(self, key: bytes, cost: int) -> Optional[Item]:
        """GET must know the key's cost class to pick the pool — one of the
        operational burdens of static partitioning."""
        return self.pool_for_cost(cost).get(key)

    def set(self, key: bytes, value: bytes, cost: int = 0, **kwargs) -> Item:
        return self.pool_for_cost(cost).set(key, value, cost=cost, **kwargs)

    def aggregate_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for _, pool in self._bands:
            for name, value in pool.aggregate_stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    @property
    def pools(self) -> List[StorePool]:
        return [pool for _, pool in self._bands]


def make_uniform_pool(
    num_stores: int,
    memory_limit_each: int,
    policy_factory: Callable,
    slab_size: int = 64 * 1024,
    clock=None,
    name_prefix: str = "node",
) -> StorePool:
    """Convenience: a pool of ``num_stores`` identical stores."""
    stores = {
        f"{name_prefix}{i}": KVStore(
            memory_limit=memory_limit_each,
            slab_size=slab_size,
            policy_factory=policy_factory,
            clock=clock,
            hash_func=hash,
        )
        for i in range(num_stores)
    }
    return StorePool(stores)
