"""Consistent hashing — how memcached clients spread keys over servers.

The paper's introduction frames memory-based key-value stores as
"combining the distributed memory of different machines into a single,
large pool"; the client-side mechanism behind that is a ketama-style
consistent hash ring.  Each node contributes many virtual points on a ring
keyed by a hash; a key routes to the first point clockwise from its own
hash, so adding or removing a node only remaps ~1/n of the key space.

Implemented with md5 (ketama's choice) over ``node:replica`` labels and
binary search over the sorted point list.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple


def _ring_hash(data: bytes) -> int:
    """32-bit ketama point: the top 4 bytes of md5."""
    digest = hashlib.md5(data).digest()
    return int.from_bytes(digest[:4], "big")


class ConsistentHashRing:
    """A ketama-style ring mapping keys to node names."""

    def __init__(self, nodes: Sequence[str] = (), replicas: int = 100) -> None:
        """
        Args:
            nodes: initial node names.
            replicas: virtual points per node (ketama uses 100-200; more
                points = smoother balance, slower mutation).
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._nodes: Dict[str, None] = {}
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already in ring")
        self._nodes[node] = None
        for replica in range(self.replicas):
            label = f"{node}:{replica}".encode()
            self._points.append((_ring_hash(label), node))
        self._rebuild()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not in ring")
        del self._nodes[node]
        self._points = [(h, n) for h, n in self._points if n != node]
        self._rebuild()

    def node_for(self, key: bytes) -> Optional[str]:
        """The node owning ``key``, or None if the ring is empty."""
        if not self._points:
            return None
        point = _ring_hash(key)
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._points[index][1]

    def nodes_for(self, key: bytes, count: Optional[int] = None) -> List[str]:
        """Distinct nodes walking clockwise from ``key``'s ring point.

        The first element is :meth:`node_for`'s answer; the rest are the
        successor nodes in ring order — the standard preference list for
        routing around a dead owner (and, with replica groups, for
        picking a fallback replica).  ``count=None`` returns every node.
        """
        if not self._points:
            return []
        if count is None:
            count = len(self._nodes)
        point = _ring_hash(key)
        index = bisect.bisect_right(self._hashes, point)
        out: List[str] = []
        seen = set()
        npoints = len(self._points)
        for step in range(npoints):
            node = self._points[(index + step) % npoints][1]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) >= count:
                    break
        return out

    def distribution(self, keys: Sequence[bytes]) -> Dict[str, int]:
        """How many of ``keys`` land on each node (balance diagnostics)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            node = self.node_for(key)
            if node is not None:
                counts[node] += 1
        return counts
