"""Multi-store layer: consistent hashing, pools, and the Section 2.2
pool-partitioning experiment (single cost-aware pool vs static pools)."""

from repro.cluster.consistent import ConsistentHashRing
from repro.cluster.experiment import (
    PoolingPhaseResult,
    PoolingResult,
    pooling_report,
    run_pooling_comparison,
)
from repro.cluster.pool import (
    CostPartitionedPools,
    StorePool,
    make_uniform_pool,
)

__all__ = [
    "ConsistentHashRing",
    "CostPartitionedPools",
    "PoolingPhaseResult",
    "PoolingResult",
    "StorePool",
    "make_uniform_pool",
    "pooling_report",
    "run_pooling_comparison",
]
