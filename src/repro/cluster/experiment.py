"""A-5: static cost-partitioned pools vs a single cost-aware pool.

Section 2.2 of the paper describes Facebook's workaround for recomputation
cost variation under cost-oblivious replacement: split the fleet into
separate pools per cost class, sized by prior usage analysis.  The paper's
criticism: "If the workload characteristics change over time, such
partitioning may result in inefficient usage of memory.  It could be more
efficient to maintain a single pool and make replacement decisions based
on the recomputation cost variations."

This experiment quantifies that argument.  Two cache organizations with
the *same total memory*:

* **partitioned-lru** — three LRU pools, one per cost band, sized for the
  phase-1 mix (the "prior usage analysis").
* **single-gdwheel** — one consistent-hashed pool of GD-Wheel stores.

The workload runs in two phases: phase 1 uses the baseline cost mix the
partitioning was provisioned for; in phase 2 the mix shifts toward
mid/high-cost keys (a new working set with different proportions).  The
static partition cannot re-provision; GD-Wheel re-arbitrates per eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core import GDWheelPolicy, LRUPolicy
from repro.cluster.pool import (
    CostPartitionedPools,
    StorePool,
    make_uniform_pool,
)
from repro.workloads.costs import GroupedCosts, cost_groups
from repro.workloads.sizes import FixedSize
from repro.workloads.ycsb import WorkloadSpec

#: cost bands shared by both phases (the paper's baseline bands)
BANDS = ((10, 30), (120, 180), (350, 450))

#: phase-1 mix: the paper's baseline 80/15/5
PHASE1_PROPORTIONS = (0.80, 0.15, 0.05)
#: phase-2 mix: expensive computations become much more common
PHASE2_PROPORTIONS = (0.30, 0.40, 0.30)

#: static pool shares, provisioned for phase 1 (generous to the pricey
#: bands, as a cost-conscious operator would size them)
PARTITION_SHARES = (0.50, 0.30, 0.20)


def _spec(proportions: Tuple[float, float, float], name: str) -> WorkloadSpec:
    groups = cost_groups(
        (BANDS[0][0], BANDS[0][1], proportions[0]),
        (BANDS[1][0], BANDS[1][1], proportions[1]),
        (BANDS[2][0], BANDS[2][1], proportions[2]),
    )
    return WorkloadSpec(
        workload_id=f"pooling-{name}",
        name=name,
        costs=GroupedCosts(groups, name),
        sizes=FixedSize(256),
    )


@dataclass
class PoolingPhaseResult:
    phase: str
    requests: int
    hits: int
    total_recomputation_cost: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


@dataclass
class PoolingResult:
    organization: str
    phases: List[PoolingPhaseResult]

    @property
    def total_cost(self) -> int:
        return sum(p.total_recomputation_cost for p in self.phases)


def _drive_phase(
    get: Callable,
    set_: Callable,
    workload,
    num_requests: int,
    phase: str,
) -> PoolingPhaseResult:
    """Warmup the phase's universe, then run the cache-aside loop."""
    for key_id in workload.warmup_order(seed=11).tolist():
        set_(
            workload.key_bytes(key_id),
            workload.value_of(key_id),
            workload.cost_of(key_id),
        )
    hits = total_cost = 0
    for key_id in workload.sample_requests(num_requests).tolist():
        key = workload.key_bytes(key_id)
        cost = workload.cost_of(key_id)
        if get(key, cost) is not None:
            hits += 1
        else:
            total_cost += cost
            set_(key, workload.value_of(key_id), cost)
    return PoolingPhaseResult(
        phase=phase,
        requests=num_requests,
        hits=hits,
        total_recomputation_cost=total_cost,
    )


def run_pooling_comparison(
    total_memory: int = 4 * 1024 * 1024,
    stores_per_pool: int = 2,
    num_keys_per_phase: int = 16_000,
    num_requests: int = 60_000,
    slab_size: int = 64 * 1024,
    seed: int = 5,
) -> Dict[str, PoolingResult]:
    """Run both organizations through both phases; same memory, same load."""
    phase_specs = [
        ("phase1-baseline-mix", _spec(PHASE1_PROPORTIONS, "phase1"), seed),
        ("phase2-shifted-mix", _spec(PHASE2_PROPORTIONS, "phase2"), seed + 1),
    ]
    results: Dict[str, PoolingResult] = {}

    # --- organization 1: single pool, GD-Wheel inside every store ------------
    single = make_uniform_pool(
        num_stores=stores_per_pool,
        memory_limit_each=total_memory // stores_per_pool,
        policy_factory=GDWheelPolicy,
        slab_size=slab_size,
    )
    phases = []
    for phase_name, spec, phase_seed in phase_specs:
        workload = spec.materialize(num_keys_per_phase, seed=phase_seed)
        phases.append(
            _drive_phase(
                get=lambda key, cost: single.get(key),
                set_=lambda key, value, cost: single.set(key, value, cost=cost),
                workload=workload,
                num_requests=num_requests,
                phase=phase_name,
            )
        )
    results["single-gdwheel"] = PoolingResult(
        organization="single-gdwheel", phases=phases
    )

    # --- organization 2: static cost-partitioned LRU pools --------------------
    band_pools = []
    for band_idx, share in enumerate(PARTITION_SHARES):
        memory = max(int(total_memory * share), slab_size * stores_per_pool)
        pool = make_uniform_pool(
            num_stores=stores_per_pool,
            memory_limit_each=memory // stores_per_pool,
            policy_factory=LRUPolicy,
            slab_size=slab_size,
            name_prefix=f"band{band_idx}-node",
        )
        band_pools.append((BANDS[band_idx][1], pool))
    partitioned = CostPartitionedPools(band_pools)
    phases = []
    for phase_name, spec, phase_seed in phase_specs:
        workload = spec.materialize(num_keys_per_phase, seed=phase_seed)
        phases.append(
            _drive_phase(
                get=partitioned.get,
                set_=lambda key, value, cost: partitioned.set(
                    key, value, cost=cost
                ),
                workload=workload,
                num_requests=num_requests,
                phase=phase_name,
            )
        )
    results["partitioned-lru"] = PoolingResult(
        organization="partitioned-lru", phases=phases
    )
    return results


def pooling_report(results: Dict[str, PoolingResult]) -> str:
    from repro.experiments.report import render_table

    rows = []
    for organization, result in sorted(results.items()):
        for phase in result.phases:
            rows.append(
                [
                    organization,
                    phase.phase,
                    phase.hit_rate * 100,
                    phase.total_recomputation_cost,
                ]
            )
        rows.append([organization, "TOTAL", "", result.total_cost])
    return render_table(
        ["organization", "phase", "hit rate %", "recomputation cost"],
        rows,
        title=(
            "A-5: single GD-Wheel pool vs static cost-partitioned LRU pools "
            "(same total memory, shifting mix)"
        ),
    )
