"""Bounded ring-buffer trace of structured eviction/rebalance events.

Counters say *how much*; the trace says *what happened last*.  GD-Wheel's
interesting dynamics — which queue the hand was on when a victim was
taken, how far a cascade trickled entries down, which class donated slabs
to which — are invisible in aggregate counters, so the store and policies
record small structured events into an :class:`EventTrace`: a fixed-size
ring (old events fall off the back) plus per-kind totals that never
truncate.

Events carry a key *hash*, never the key itself, so a trace excerpt can be
shipped to an operator without leaking cached data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields
from typing import Deque, Dict, Iterator, List, Optional


def key_fingerprint(key: bytes) -> int:
    """Stable non-cryptographic 32-bit fingerprint of a cache key (FNV-1a)."""
    acc = 0x811C9DC5
    for byte in key:
        acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
    return acc


@dataclass(frozen=True)
class TraceEvent:
    """Base event: a monotonic sequence number stamped by the trace."""

    seq: int = field(default=0, compare=False)
    kind = "event"

    def describe(self) -> str:
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if f.name != "seq"
        ]
        return f"{self.kind} " + " ".join(parts)


@dataclass(frozen=True)
class EvictionEvent(TraceEvent):
    """A replacement-policy eviction (or expiry reclaim) in one slab class."""

    kind = "eviction"

    class_id: int = 0
    key_hash: int = 0
    cost: int = 0
    #: the GreedyDual priority H = L + cost at eviction (0 for non-GD policies)
    h_value: int = 0
    #: the policy's inflation value L when the victim was taken (-1 if n/a)
    inflation: int = -1
    #: level-0 wheel/queue index the hand was on (-1 for non-wheel policies)
    queue_index: int = -1
    #: True when the victim was already expired (a reclaim, not a cost loss)
    expired: bool = False


@dataclass(frozen=True)
class CascadeEvent(TraceEvent):
    """A GD-Wheel hand cascade: entries migrated down one wheel level."""

    kind = "cascade"

    class_id: int = 0
    level: int = 0
    slot: int = 0
    moved: int = 0
    inflation: int = 0


@dataclass(frozen=True)
class ConnectionRejectedEvent(TraceEvent):
    """A client connection refused at accept time (over ``max_connections``)."""

    kind = "conn_rejected"

    reason: str = "max_connections"
    current: int = 0
    limit: int = 0


@dataclass(frozen=True)
class OverloadShedEvent(TraceEvent):
    """A batch of commands answered ``SERVER_ERROR busy`` instead of served."""

    kind = "overload_shed"

    #: what tripped the shed: "queue_depth", "latency", or "deadline"
    reason: str = ""
    shed_commands: int = 0


@dataclass(frozen=True)
class IdleDisconnectEvent(TraceEvent):
    """A silent connection closed by the server's idle timeout."""

    kind = "idle_disconnect"

    idle_timeout: float = 0.0


@dataclass(frozen=True)
class BreakerTransitionEvent(TraceEvent):
    """A client-side circuit breaker changed state for one node."""

    kind = "breaker"

    node: str = ""
    old_state: str = ""
    new_state: str = ""


@dataclass(frozen=True)
class SpillEvent(TraceEvent):
    """One evicted item offered to the flash tier by the admission filter."""

    kind = "spill"

    key_hash: int = 0
    cost: int = 0
    size: int = 0
    #: False = rejected (below the watermark, zero cost, or tier full)
    admitted: bool = False
    #: the admission cost-per-byte watermark at decision time
    watermark: float = 0.0


@dataclass(frozen=True)
class TierGCEvent(TraceEvent):
    """One tier GC round: a victim segment cleaned and reclaimed."""

    kind = "tier_gc"

    victim_segment: int = -1
    copied: int = 0
    dropped: int = 0
    reclaimed_bytes: int = 0
    #: admission watermark used as the copy-forward bar
    watermark: float = 0.0


@dataclass(frozen=True)
class SlabMoveEvent(TraceEvent):
    """One slab reassigned between classes by the active rebalancer."""

    kind = "slab_move"

    src_class: int = 0
    dest_class: int = 0
    dropped_items: int = 0
    reclaimed_bytes: int = 0
    #: average cost/byte of the donor (src) class at decision time
    src_cost_per_byte: float = 0.0
    #: average cost/byte of the receiving (dest) class at decision time
    dest_cost_per_byte: float = 0.0


class EventTrace:
    """Fixed-capacity event ring with per-kind lifetime totals."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: lifetime events per kind (not truncated by the ring)
        self.counts: Dict[str, int] = {}

    def record(self, event: TraceEvent) -> TraceEvent:
        """Stamp ``event`` with the next sequence number and store it."""
        self._seq += 1
        object.__setattr__(event, "seq", self._seq)
        self._ring.append(event)
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        return event

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (>= len() once the ring has wrapped)."""
        return self._seq

    def events(
        self, kind: Optional[str] = None, last: Optional[int] = None
    ) -> List[TraceEvent]:
        """Buffered events, oldest first; optionally filtered / tail-limited."""
        selected = [
            event for event in self._ring if kind is None or event.kind == kind
        ]
        if last is not None and last >= 0:
            selected = selected[-last:]
        return selected

    def clear(self) -> None:
        """Drop buffered events and lifetime counts (``stats reset``)."""
        self._ring.clear()
        self.counts.clear()

    def format_tail(self, last: int = 20, kind: Optional[str] = None) -> List[str]:
        """Human-readable lines for the most recent events."""
        return [
            f"#{event.seq} {event.describe()}"
            for event in self.events(kind=kind, last=last)
        ]
