"""Prometheus text exposition format for a :class:`MetricsRegistry`.

Renders the classic text format (version 0.0.4): ``# HELP`` / ``# TYPE``
headers per family, one sample line per series, and histograms expanded
into cumulative ``_bucket{le=...}`` samples plus ``_sum`` and ``_count``.
The output of ``stats metrics prom`` (and :func:`render_registry` when
embedding the store in a larger process) can be scraped by a stock
Prometheus server or fed to ``promtool check metrics``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.registry import Histogram, LabelKey, MetricFamily, MetricsRegistry


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(labels: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def _render_histogram(
    name: str, labels: LabelKey, hist: Histogram, lines: List[str]
) -> None:
    hist.flush()  # fold buffered observations in before reading buckets
    for upper, cumulative in hist.hist.cumulative_buckets():
        le = _format_labels(labels, (("le", _format_value(upper)),))
        lines.append(f"{name}_bucket{le} {cumulative}")
    le_inf = _format_labels(labels, (("le", "+Inf"),))
    lines.append(f"{name}_bucket{le_inf} {hist.count}")
    lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(hist.sum)}")
    lines.append(f"{name}_count{_format_labels(labels)} {hist.count}")


def render_family(family: MetricFamily) -> List[str]:
    """The text-format block for one metric family."""
    lines: List[str] = []
    if family.help:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for labels, instrument in family.series.items():
        if family.kind == "histogram":
            _render_histogram(family.name, labels, instrument, lines)  # type: ignore[arg-type]
        else:
            value = _format_value(instrument.value)  # type: ignore[attr-defined]
            lines.append(f"{family.name}{_format_labels(labels)} {value}")
    return lines


def render_registry(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus text format (trailing newline)."""
    lines: List[str] = []
    for family in registry.families():
        lines.extend(render_family(family))
    return "\n".join(lines) + "\n" if lines else ""


def parse_sample_lines(text: str) -> Dict[str, float]:
    """Parse sample lines of text format back into ``{series: value}``.

    Comment lines are skipped.  This is the round-trip used by the tests
    and the scrape example — not a general Prometheus parser.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        out[series] = float("inf") if value == "+Inf" else float(value)
    return out
