"""Metrics registry — counters, gauges, and histograms with labeled families.

One :class:`MetricsRegistry` is the telemetry spine for a store plus the
servers in front of it.  Instruments are grouped into *families* (one name,
one kind, one help string) and addressed by label sets, memcached-meets-
Prometheus style::

    registry = MetricsRegistry()
    hits = registry.counter("store_get_hits_total", help="GET hits")
    lat = registry.histogram("cmd_latency_us", cmd="get")
    hits.inc()
    lat.observe(12.5)

Lookups are cached per (name, labels) so the hot path touches a dict once
at bind time and then only the instrument itself; :meth:`Counter.inc` is a
single attribute increment.  The GIL makes that increment as atomic as the
seed's ``stats.field += 1`` was — observability keeps the same (lossy under
free threading, exact under the GIL) semantics rather than adding a lock
to every operation.

:class:`NullRegistry` hands out shared no-op instruments and reports
``enabled = False`` so instrumented call sites can skip timing work
entirely; it is how the overhead-guard benchmark measures the cost of
observability itself.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.histogram import BoundedHistogram

LabelKey = Tuple[Tuple[str, str], ...]

#: default percentiles exposed for histogram series in ``stats metrics``
SUMMARY_PERCENTILES = (50, 95, 99)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelKey) -> str:
    """Canonical ``name{k=v,...}`` series string (no braces when unlabeled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter (resettable via ``stats reset``)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time value; survives ``stats reset`` (like curr_items)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def reset(self) -> None:  # gauges are *not* cleared by registry.reset()
        self.value = 0.0


class Histogram:
    """A :class:`BoundedHistogram` exposed as a registry instrument.

    Observations are buffered in a plain list and folded into the
    histogram in vectorized batches: the per-operation cost is one list
    append instead of a full bucket computation, and every read path
    (:attr:`count`, :meth:`percentile`, :meth:`summary`, ...) flushes
    first so queries always see every recorded sample.
    """

    __slots__ = ("hist", "_pending")
    kind = "histogram"

    #: buffered observations folded into the histogram per batch
    FLUSH_AT = 1024

    def __init__(self, max_value: float = 1e9, sub_buckets: int = 32) -> None:
        self.hist = BoundedHistogram(max_value=max_value, sub_buckets=sub_buckets)
        # the buffer list's IDENTITY is stable for the instrument's
        # lifetime: hot call sites bind ``_pending.append`` directly, so
        # flush()/reset() empty it in place instead of rebinding
        self._pending: List[float] = []

    def observe(self, value: float) -> None:
        pending = self._pending
        pending.append(value)
        if len(pending) >= self.FLUSH_AT:
            self.flush()

    def flush(self) -> None:
        """Fold buffered observations into the histogram."""
        pending = self._pending
        if pending:
            values = pending[:]
            del pending[:]
            self.hist.record_many(values)

    @property
    def count(self) -> int:
        self.flush()
        return self.hist.total

    @property
    def sum(self) -> float:
        self.flush()
        return self.hist.sum

    def percentile(self, pct: float) -> float:
        self.flush()
        return self.hist.percentile(pct)

    def summary(self, percentiles=(50, 95, 99)) -> dict:
        self.flush()
        return self.hist.summary(percentiles)

    def reset(self) -> None:
        del self._pending[:]  # in place: bound appends stay valid
        self.hist.reset()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: int) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(max_value=2.0, sub_buckets=2)  # 4 buckets, never used

    def observe(self, value: float) -> None:
        pass


class MetricFamily:
    """All series sharing one metric name: kind, help, and label variants."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.series: Dict[LabelKey, object] = {}


class MetricsRegistry:
    """Registry of labeled counter/gauge/histogram families.

    ``enabled`` is the hot-path gate: call sites that must *time* work
    (``perf_counter`` pairs around an operation) check it once and skip the
    clock reads entirely under a :class:`NullRegistry`.
    """

    enabled = True

    def __init__(
        self, histogram_max_value: float = 1e9, histogram_sub_buckets: int = 32
    ) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._histogram_max_value = histogram_max_value
        self._histogram_sub_buckets = histogram_sub_buckets

    # -- instrument creation ----------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}"
            )
        if help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        family = self._family(name, "counter", help)
        key = _label_key(labels)  # type: ignore[arg-type]
        instrument = family.series.get(key)
        if instrument is None:
            instrument = Counter()
            family.series[key] = instrument
        return instrument  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        family = self._family(name, "gauge", help)
        key = _label_key(labels)  # type: ignore[arg-type]
        instrument = family.series.get(key)
        if instrument is None:
            instrument = Gauge()
            family.series[key] = instrument
        return instrument  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        max_value: Optional[float] = None,
        sub_buckets: Optional[int] = None,
        **labels: object,
    ) -> Histogram:
        family = self._family(name, "histogram", help)
        key = _label_key(labels)  # type: ignore[arg-type]
        instrument = family.series.get(key)
        if instrument is None:
            instrument = Histogram(
                max_value=max_value or self._histogram_max_value,
                sub_buckets=sub_buckets or self._histogram_sub_buckets,
            )
            family.series[key] = instrument
        return instrument  # type: ignore[return-value]

    # -- introspection ----------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        """Families in registration order."""
        return list(self._families.values())

    def series(self) -> Iterator[Tuple[MetricFamily, LabelKey, object]]:
        """Every (family, labels, instrument) triple."""
        for family in self._families.values():
            for key, instrument in family.series.items():
                yield family, key, instrument

    def snapshot(self) -> Dict[str, float]:
        """Flat ``series-name -> value`` dict; the one diffable shape.

        Counters and gauges contribute their value; histograms contribute
        ``_count``/``_sum`` (rates) plus percentile/summary series.
        """
        out: Dict[str, float] = {}
        for family, key, instrument in self.series():
            base = format_series(family.name, key)
            if family.kind == "histogram":
                hist: Histogram = instrument  # type: ignore[assignment]
                for stat, value in hist.summary(SUMMARY_PERCENTILES).items():
                    out[f"{base}_{stat}"] = value
            else:
                out[base] = instrument.value  # type: ignore[attr-defined]
        return out

    def reset(self) -> None:
        """Zero resettable instruments (counters, histograms) — not gauges.

        This is the ``stats reset`` semantic: rate counters restart, but
        level-style facts (connections open, bytes live) are preserved,
        exactly as memcached keeps ``curr_items`` across a reset.
        """
        for family, _key, instrument in self.series():
            if family.kind != "gauge":
                instrument.reset()  # type: ignore[attr-defined]


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing and whose reads are zero.

    Every ``counter()``/``gauge()``/``histogram()`` call returns a shared
    no-op singleton, so instrumented code paths cost one no-op method call
    — and call sites that check :attr:`enabled` first cost nothing at all.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        max_value: Optional[float] = None,
        sub_buckets: Optional[int] = None,
        **labels: object,
    ) -> Histogram:
        return _NULL_HISTOGRAM
