"""Cross-worker metrics aggregation.

A sharded deployment (``repro.shard``) runs one metrics registry per
worker process; fleet-level telemetry is the numeric sum of the per-worker
``stats`` snapshots.  The helpers here are pure data-merging functions so
the same code backs the shard supervisor's aggregate view, the async
pool's :meth:`~repro.aio.pool.AsyncStorePool.aggregate_stats`, and any
offline report over saved snapshots.

Counters and most gauges (connection counts, live bytes, item counts) sum
meaningfully across shared-nothing workers; ratios and percentiles do not
— aggregate those from the summed raw series instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]


def as_number(value: object) -> Optional[Number]:
    """``value`` as an int (preferred) or float, or ``None`` if neither.

    Stats arrive over the wire as strings; integers are kept exact and
    anything float-ish (``"0.125"``) falls back to ``float``.  Booleans
    and non-numeric strings are rejected.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        pass
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def sum_numeric_stats(
    snapshots: Iterable[Mapping[str, object]],
) -> Dict[str, Number]:
    """Merge per-worker stats dicts by summing their numeric values.

    Non-numeric values (version strings, policy names) are dropped; keys
    present in only some snapshots still contribute.  The result keeps
    ints exact — a series only becomes float if some worker reported a
    float.
    """
    totals: Dict[str, Number] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            number = as_number(value)
            if number is None:
                continue
            totals[name] = totals.get(name, 0) + number
    return totals


def merge_trace_stats(
    per_shard: Mapping[str, Mapping[str, str]],
) -> Dict[str, object]:
    """Merge per-worker ``stats trace`` responses into one fleet view.

    Each worker's response carries ``trace:count:<kind>`` lifetime counts,
    a ``trace:buffered`` ring size, and ``trace:<seq>`` tail lines (or a
    single ``trace: disabled`` marker).  Counts and buffered totals sum;
    tail events keep their shard of origin and per-shard sequence number,
    ordered by shard name then sequence — per-shard order is exact, the
    cross-shard interleaving is approximate (no global clock), which the
    caller's rendering should say.

    Returns ``{"counts": {kind: total}, "buffered": n,
    "events": [(shard, seq, description), ...], "disabled": [shard, ...]}``.
    """
    counts: Dict[str, Number] = {}
    buffered: Number = 0
    events: List[Tuple[str, int, str]] = []
    disabled: List[str] = []
    for shard in sorted(per_shard):
        snapshot = per_shard[shard]
        if snapshot.get("trace") == "disabled":
            disabled.append(shard)
            continue
        for name, value in snapshot.items():
            if name.startswith("trace:count:"):
                number = as_number(value)
                if number is not None:
                    kind = name[len("trace:count:"):]
                    counts[kind] = counts.get(kind, 0) + number
            elif name == "trace:buffered":
                number = as_number(value)
                if number is not None:
                    buffered += number
            elif name.startswith("trace:"):
                seq = as_number(name[len("trace:"):])
                if seq is not None:
                    events.append((shard, int(seq), str(value)))
    events.sort(key=lambda entry: (entry[0], entry[1]))
    return {
        "counts": counts,
        "buffered": buffered,
        "events": events,
        "disabled": disabled,
    }
