"""Cross-worker metrics aggregation.

A sharded deployment (``repro.shard``) runs one metrics registry per
worker process; fleet-level telemetry is the numeric sum of the per-worker
``stats`` snapshots.  The helpers here are pure data-merging functions so
the same code backs the shard supervisor's aggregate view, the async
pool's :meth:`~repro.aio.pool.AsyncStorePool.aggregate_stats`, and any
offline report over saved snapshots.

Counters and most gauges (connection counts, live bytes, item counts) sum
meaningfully across shared-nothing workers; ratios and percentiles do not
— aggregate those from the summed raw series instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Union

Number = Union[int, float]


def as_number(value: object) -> Optional[Number]:
    """``value`` as an int (preferred) or float, or ``None`` if neither.

    Stats arrive over the wire as strings; integers are kept exact and
    anything float-ish (``"0.125"``) falls back to ``float``.  Booleans
    and non-numeric strings are rejected.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        pass
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def sum_numeric_stats(
    snapshots: Iterable[Mapping[str, object]],
) -> Dict[str, Number]:
    """Merge per-worker stats dicts by summing their numeric values.

    Non-numeric values (version strings, policy names) are dropped; keys
    present in only some snapshots still contribute.  The result keeps
    ints exact — a series only becomes float if some worker reported a
    float.
    """
    totals: Dict[str, Number] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            number = as_number(value)
            if number is None:
                continue
            totals[name] = totals.get(name, 0) + number
    return totals
