"""Offline trace collection: merge span files, rebuild trees, find the tail.

Every traced process exports its :class:`~repro.obs.tracing.SpanBuffer`
to a JSONL file (one span per line); this module is the other half —
load a directory of those files, group spans by trace id, reconstruct
each trace's parent/child tree, compute the critical path, and render
the per-hop breakdowns behind ``gdwheel-repro trace show`` / ``trace
top``.

Everything here is pure data plumbing over
:class:`~repro.obs.tracing.Span`; nothing imports the live serving
stack, so the collector works on span files from any mix of processes
(or machines, clock skew permitting).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.tracing import Span

__all__ = [
    "TraceTree",
    "critical_path",
    "group_traces",
    "load_span_dir",
    "load_span_file",
    "render_trace",
    "render_trace_top",
    "slowest_traces",
]


def load_span_file(path: str) -> List[Span]:
    """Spans from one JSONL export; malformed lines are skipped.

    Tolerating bad lines matters operationally: a worker killed mid-write
    leaves a torn tail, and one torn span must not hide every trace.
    """
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                continue
    return spans


def load_span_dir(directory: str) -> List[Span]:
    """Every span from every ``*.jsonl`` file under ``directory``."""
    spans: List[Span] = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".jsonl"):
            spans.extend(load_span_file(os.path.join(directory, name)))
    return spans


def group_traces(spans: Sequence[Span]) -> Dict[int, List[Span]]:
    """Spans bucketed by trace id, each bucket sorted by start time."""
    traces: Dict[int, List[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    for bucket in traces.values():
        bucket.sort(key=lambda s: (s.start_us, -s.duration_us))
    return traces


class TraceTree:
    """One trace's spans assembled into a parent/child tree.

    Roots are spans whose parent is absent from the trace — normally the
    client's request span, but also any orphan whose parent was dropped
    by a full ring or a killed process (a *missing hop* renders as a
    second root, which is exactly the signal chaos tests assert on).
    """

    def __init__(self, spans: Sequence[Span]) -> None:
        if not spans:
            raise ValueError("a trace needs at least one span")
        self.spans = sorted(spans, key=lambda s: (s.start_us, -s.duration_us))
        self.trace_id = self.spans[0].trace_id
        by_id = {span.span_id: span for span in self.spans}
        self.children: Dict[int, List[Span]] = {}
        self.roots: List[Span] = []
        for span in self.spans:
            if span.parent_id is not None and span.parent_id in by_id:
                self.children.setdefault(span.parent_id, []).append(span)
            else:
                self.roots.append(span)

    @property
    def root(self) -> Span:
        """The primary root: earliest-starting parentless span."""
        return self.roots[0]

    @property
    def start_us(self) -> int:
        return min(span.start_us for span in self.spans)

    @property
    def duration_us(self) -> float:
        """End-to-end wall time covered by the trace's spans."""
        return max(span.end_us for span in self.spans) - self.start_us

    def depth_of(self, span: Span) -> int:
        by_id = {s.span_id: s for s in self.spans}
        depth = 0
        current = span
        while current.parent_id is not None and current.parent_id in by_id:
            current = by_id[current.parent_id]
            depth += 1
        return depth

    def walk(self):
        """Yield ``(span, depth)`` depth-first from each root."""
        def visit(span: Span, depth: int):
            yield span, depth
            for child in self.children.get(span.span_id, ()):
                yield from visit(child, depth + 1)

        for root in self.roots:
            yield from visit(root, 0)

    def processes(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.process not in seen:
                seen.append(span.process)
        return seen

    def span_names(self) -> List[str]:
        return [span.name for span in self.spans]


def critical_path(tree: TraceTree) -> List[Span]:
    """The chain of spans that bounds the trace's wall time.

    Walk from the primary root, descending at every step into the child
    that finishes last — the hop the request was actually waiting on.
    The returned list (root first) is where an optimizer should look.
    """
    path = [tree.root]
    while True:
        children = tree.children.get(path[-1].span_id)
        if not children:
            return path
        path.append(max(children, key=lambda s: s.end_us))


def slowest_traces(
    traces: Dict[int, List[Span]], count: int = 10
) -> List[TraceTree]:
    """The ``count`` longest traces, slowest first."""
    trees = [TraceTree(spans) for spans in traces.values()]
    trees.sort(key=lambda t: t.duration_us, reverse=True)
    return trees[:count]


def render_trace(tree: TraceTree) -> str:
    """One trace as an indented tree with per-hop offsets and durations.

    Offsets are relative to the trace start, so the gap between a client
    send span and the server dispatch span *is* the network + queue +
    parse time of that hop.
    """
    critical = {span.span_id for span in critical_path(tree)}
    lines = [
        f"trace {tree.trace_id:016x}  "
        f"({tree.duration_us / 1000:.2f} ms, {len(tree.spans)} spans, "
        f"processes: {', '.join(tree.processes())})"
    ]
    for span, depth in tree.walk():
        offset_ms = (span.start_us - tree.start_us) / 1000
        marker = "*" if span.span_id in critical else " "
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
        lines.append(
            f" {marker}{'  ' * depth}{span.name:<{24 - 2 * min(depth, 8)}} "
            f"+{offset_ms:8.2f}ms {span.duration_us / 1000:8.2f}ms "
            f"[{span.process}]{attrs}"
        )
    lines.append(" (* = critical path)")
    return "\n".join(lines)


def render_trace_top(
    traces: Dict[int, List[Span]],
    count: int = 10,
    slow_log: Optional[Sequence[dict]] = None,
) -> str:
    """The ``trace top`` table: slowest traces + slow-query exemplars."""
    trees = slowest_traces(traces, count)
    lines = [
        f"{'trace':<17} {'ms':>9} {'spans':>6} {'critical path'}",
    ]
    for tree in trees:
        path = critical_path(tree)
        chain = " > ".join(span.name for span in path)
        lines.append(
            f"{tree.trace_id:016x}  {tree.duration_us / 1000:8.2f} "
            f"{len(tree.spans):>6} {chain}"
        )
    forced = [
        span
        for spans in traces.values()
        for span in spans
        if span.attrs.get("forced")
    ]
    exemplars = list(slow_log or ())
    if forced or exemplars:
        lines.append("")
        lines.append("slow-query exemplars (key fingerprints, never keys):")
        for span in sorted(forced, key=lambda s: -s.duration_us)[:count]:
            fp = span.attrs.get("key_fp")
            lines.append(
                f"  {span.name} {span.duration_us / 1000:.2f}ms "
                f"reason={span.attrs['forced']}"
                + (f" key_fp={fp:#010x}" if isinstance(fp, int) else "")
            )
        for entry in exemplars[:count]:
            fp = entry.get("key_fp")
            lines.append(
                f"  {entry['op']} {entry['dur_us'] / 1000:.2f}ms "
                f"reason={entry['reason']}"
                + (f" key_fp={fp:#010x}" if isinstance(fp, int) else "")
            )
    return "\n".join(lines)
