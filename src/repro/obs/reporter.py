"""Periodic snapshot/diff reporting — counters to rates-per-second.

The load generator (and any long-running serving process) wants "what is
happening *now*", not lifetime totals.  :class:`SnapshotReporter` samples a
registry's flat snapshot, diffs it against the previous sample, and turns
monotonic series (counters, histogram ``_count``/``_sum``) into per-second
rates while passing gauges and percentiles through as levels.

:func:`diff_snapshots` is the one snapshot-diff implementation in the repo;
the simulation driver uses it to subtract warmup stats from final stats
instead of hand-rolling the dict arithmetic.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List, Optional

from repro.obs.registry import MetricsRegistry

#: suffixes of monotonic snapshot series (diffed into rates); everything
#: else — gauges, percentiles, means — is a level and passes through.
_MONOTONIC_SUFFIXES = ("_total", "_count", "_sum", "_clamped")


def is_monotonic_series(name: str) -> bool:
    base = name.split("{", 1)[0]
    if base.endswith(_MONOTONIC_SUFFIXES):
        return True
    # histogram summary series look like name{...}_count / name{...}_sum
    return name.endswith(_MONOTONIC_SUFFIXES)


def diff_snapshots(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Per-key ``after - before`` over ``after``'s keys (missing = 0)."""
    return {name: value - before.get(name, 0) for name, value in after.items()}


class SnapshotReporter:
    """Diffs registry snapshots into per-second rate reports.

    Args:
        registry: the registry to sample.
        emit: sink for formatted report strings (default ``print``).
        time_source: monotonic clock, injectable for tests.
        include: only report series containing this substring (optional).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        emit: Callable[[str], None] = print,
        time_source: Callable[[], float] = time.monotonic,
        include: Optional[str] = None,
    ) -> None:
        self.registry = registry
        self.emit = emit
        self._time = time_source
        self.include = include
        self._last_snapshot: Optional[Dict[str, float]] = None
        self._last_time = 0.0
        #: number of samples taken so far
        self.samples = 0

    def sample(self) -> Dict[str, float]:
        """Take a snapshot; return rates/levels since the previous sample.

        The first call primes the baseline and returns an empty dict.
        """
        now = self._time()
        snapshot = self.registry.snapshot()
        previous, self._last_snapshot = self._last_snapshot, snapshot
        elapsed, self._last_time = now - self._last_time, now
        self.samples += 1
        if previous is None or elapsed <= 0:
            return {}
        out: Dict[str, float] = {}
        for name, value in snapshot.items():
            if self.include is not None and self.include not in name:
                continue
            if is_monotonic_series(name):
                out[f"{name}/s"] = (value - previous.get(name, 0)) / elapsed
            else:
                out[name] = value
        return out

    def format_rates(self, rates: Dict[str, float], top: int = 0) -> str:
        """One report line per active series, highest rate first."""
        rows = [
            (name, value)
            for name, value in rates.items()
            if value != 0
        ]
        rows.sort(key=lambda row: (-abs(row[1]), row[0]))
        if top:
            rows = rows[:top]
        if not rows:
            return "(no activity)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"  {name:<{width}}  {value:>14,.1f}" for name, value in rows)

    def sample_and_emit(self, title: str = "snapshot") -> Dict[str, float]:
        """Sample, format, and push one report through :attr:`emit`."""
        rates = self.sample()
        if rates:
            self.emit(f"-- {title} (rates /s, levels as-is) --\n"
                      f"{self.format_rates(rates)}")
        return rates

    async def run_async(
        self,
        interval: float = 1.0,
        stop: Optional[asyncio.Event] = None,
        title: str = "snapshot",
    ) -> None:
        """Emit a report every ``interval`` seconds until ``stop`` is set.

        Designed to run alongside the asyncio load generator:
        ``asyncio.create_task(reporter.run_async(...))`` and set/cancel
        when the run finishes.
        """
        self.sample()  # prime the baseline
        while stop is None or not stop.is_set():
            if stop is None:
                await asyncio.sleep(interval)
            else:
                try:
                    await asyncio.wait_for(stop.wait(), timeout=interval)
                    break
                except asyncio.TimeoutError:
                    pass
            self.sample_and_emit(title=title)


def format_snapshot(snapshot: Dict[str, float], include: Optional[str] = None) -> str:
    """Plain ``name value`` lines for a flat snapshot (debugging helper)."""
    lines: List[str] = []
    for name in sorted(snapshot):
        if include is not None and include not in name:
            continue
        value = snapshot[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{name} {rendered}")
    return "\n".join(lines)
