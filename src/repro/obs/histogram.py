"""Log-bucketed bounded-relative-error histogram (HdrHistogram-style).

The paper reports average and 99th-percentile latencies over 100 M
requests; a real harness cannot keep every sample, so production systems
record into histograms with bounded relative error.  This one mirrors
HdrHistogram's layout: values are bucketed by magnitude (powers of two)
with a fixed number of linear sub-buckets per magnitude, giving a
configurable worst-case relative error at O(1) record cost and O(buckets)
memory, independent of the sample count.

:class:`BoundedHistogram` is the one histogram implementation in the repo:
the simulation harness records request latencies into it (as
``repro.sim.histogram.LatencyHistogram``, a backwards-compatible alias),
and the :mod:`repro.obs` metrics registry wraps it for live per-command
latency series.  It is interchangeable with exact percentiles for
validation (the tests check the error bound against numpy's exact
percentile).
"""

from __future__ import annotations

from math import frexp as _frexp
from typing import Iterator, List, Tuple

import numpy as np


class BoundedHistogram:
    """Bounded-relative-error value histogram with percentile queries."""

    def __init__(self, max_value: float = 1e9, sub_buckets: int = 32) -> None:
        """
        Args:
            max_value: largest recordable value; higher records clamp (and
                are counted in :attr:`clamped`).
            sub_buckets: linear sub-buckets per power-of-two magnitude —
                the relative error bound is ``1 / sub_buckets``.
        """
        if max_value <= 1:
            raise ValueError("max_value must exceed 1")
        if sub_buckets < 2:
            raise ValueError("sub_buckets must be >= 2")
        self.max_value = float(max_value)
        self.sub_buckets = sub_buckets
        self._magnitudes = int(np.ceil(np.log2(max_value))) + 1
        # plain Python list: a scalar list increment is ~10x faster than a
        # numpy indexed increment, and record() is on every hot path
        self._counts = [0] * (self._magnitudes * sub_buckets)
        self._total = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        #: records above max_value (clamped into the top bucket)
        self.clamped = 0

    # -- recording ----------------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        if value < 1.0:
            return 0
        magnitude = int(value).bit_length() - 1  # floor(log2(value))
        base = 1 << magnitude
        sub = int((value - base) * self.sub_buckets / base)
        sub = min(sub, self.sub_buckets - 1)
        index = magnitude * self.sub_buckets + sub
        return min(index, len(self._counts) - 1)

    def record(self, value: float) -> None:
        """Record one sample; negative values are rejected.

        This is the per-operation hot path (two records per served command
        when fully instrumented), so :meth:`_bucket_index` is inlined and
        branches replace ``min``/``max`` calls.
        """
        if value < 0:
            raise ValueError("cannot record negative values")
        if value > self.max_value:
            self.clamped += 1
            value = self.max_value
        if value < 1.0:
            index = 0
        else:
            # frexp gives value = m * 2^e with 0.5 <= m < 1, so the
            # magnitude is e-1 and (2m - 1) is the position inside it
            mantissa, exponent = _frexp(value)
            sub = int((2.0 * mantissa - 1.0) * self.sub_buckets)
            if sub >= self.sub_buckets:
                sub = self.sub_buckets - 1
            index = (exponent - 1) * self.sub_buckets + sub
            last = len(self._counts) - 1
            if index > last:
                index = last
        self._counts[index] += 1
        self._total += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record_many(self, values: np.ndarray) -> None:
        """Vectorized bulk record."""
        values = np.asarray(values, dtype=np.float64)
        if (values < 0).any():
            raise ValueError("cannot record negative values")
        over = values > self.max_value
        self.clamped += int(over.sum())
        values = np.minimum(values, self.max_value)
        clipped = np.maximum(values, 1.0)
        magnitudes = np.floor(np.log2(clipped)).astype(np.int64)
        bases = np.power(2.0, magnitudes)
        subs = np.minimum(
            ((clipped - bases) * self.sub_buckets / bases).astype(np.int64),
            self.sub_buckets - 1,
        )
        indices = np.where(
            values < 1.0, 0, magnitudes * self.sub_buckets + subs
        )
        indices = np.minimum(indices, len(self._counts) - 1)
        bucket_counts = np.bincount(indices, minlength=len(self._counts))
        for index in np.nonzero(bucket_counts)[0]:
            self._counts[index] += int(bucket_counts[index])
        self._total += len(values)
        self._sum += float(values.sum())
        if len(values):
            self._min = min(self._min, float(values.min()))
            self._max = max(self._max, float(values.max()))

    # -- queries --------------------------------------------------------------------

    def __len__(self) -> int:
        return self._total

    @property
    def total(self) -> int:
        """Number of recorded samples (including clamped ones)."""
        return self._total

    @property
    def sum(self) -> float:
        """Sum of all recorded values (clamped values count as max_value)."""
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @property
    def min(self) -> float:
        return self._min if self._total else 0.0

    @property
    def max(self) -> float:
        return self._max

    def _bucket_upper_bound(self, index: int) -> float:
        magnitude, sub = divmod(index, self.sub_buckets)
        base = 1 << magnitude
        return base + (sub + 1) * base / self.sub_buckets

    def percentile(self, pct: float) -> float:
        """Value at ``pct`` (0-100], within ``1/sub_buckets`` relative error.

        An empty histogram answers 0.0 for every percentile.
        """
        if not 0 < pct <= 100:
            raise ValueError("pct must be in (0, 100]")
        if self._total == 0:
            return 0.0
        target = int(np.ceil(self._total * pct / 100.0))
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, target))
        return min(self._bucket_upper_bound(index), self._max)

    def merge(self, other: "BoundedHistogram") -> None:
        """Fold another histogram (same geometry) into this one."""
        if (
            other.sub_buckets != self.sub_buckets
            or other._magnitudes != self._magnitudes
        ):
            raise ValueError("histograms have different geometry")
        self._counts = [a + b for a, b in zip(self._counts, other._counts)]
        self._total += other._total
        self._sum += other._sum
        self.clamped += other.clamped
        if other._total:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    def reset(self) -> None:
        """Drop every recorded sample (geometry is kept)."""
        self._counts = [0] * len(self._counts)
        self._total = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        self.clamped = 0

    def nonzero_buckets(self) -> Iterator[Tuple[float, int]]:
        """(upper bound, count) for every populated bucket."""
        for index, count in enumerate(self._counts):
            if count:
                yield self._bucket_upper_bound(index), count

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) per populated bucket, ascending.

        This is the Prometheus histogram shape (``le`` buckets); the final
        ``+Inf`` bucket is implied by :attr:`total`.
        """
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, count in self.nonzero_buckets():
            running += count
            out.append((upper, running))
        return out

    def summary(self, percentiles: Tuple[float, ...] = (50, 95, 99)) -> dict:
        """count/mean/min/max plus the requested percentiles, as a flat dict."""
        out = {
            "count": self._total,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "clamped": self.clamped,
        }
        for pct in percentiles:
            label = f"{pct:g}".replace(".", "_")
            out[f"p{label}"] = self.percentile(pct)
        return out


#: Backwards-compatible name — the histogram began life in ``repro.sim``.
LatencyHistogram = BoundedHistogram
