"""Distributed request tracing: context propagation, spans, sampling.

One sampled request produces one *trace* — a tree of timed *spans*, each
recorded by whichever process did the work (client, router, shard server,
store, tier).  The pieces:

:class:`TraceContext`
    The 17 bytes that ride the wire: a 64-bit trace id, the sender's
    64-bit span id (the receiver's parent), and a sampled flag.  Two
    codecs carry it over the existing protocol without breaking old
    peers:

    * **text**: :func:`encode_token` renders the context as a
      ``tctx:<hex>.<hex>.<flag>`` *pseudo-key* appended to a ``get``
      line.  The token is a valid memcached key, so an old server
      treats it as one more requested key and answers a harmless miss;
      a trace-aware parser strips it off and hands the context to the
      dispatcher.  Storage commands reject unknown tokens in old
      parsers, so propagation deliberately rides GETs only — SETs are
      still traced client-side.
    * **binary**: :func:`pack_trace_extras` packs the same 17 bytes into
      a GET request's extras field, which the stock dispatcher ignores
      entirely (GET requests normally carry no extras).

:class:`Span` / :class:`SpanBuffer`
    A span is ``(trace, span, parent, name, process, start_us,
    duration_us, attrs)``; start is epoch microseconds (cross-process
    comparable on one host), duration comes from ``perf_counter`` (no
    clock-step jitter).  Spans land in a bounded per-process ring that
    serializes to JSONL for the offline collector
    (:mod:`repro.obs.tracecollect`).

:class:`Tracer`
    Owns the buffer, the 1-in-N head-sampling decision (default 1/100),
    the slow-query log, and the span lifecycle.  The *active* span lives
    in a :data:`contextvars.ContextVar`, so concurrent asyncio requests
    each see their own trace and a shard server's synchronous dispatch
    sees the span opened around it — :func:`child_span` lets deep layers
    (the store's tier fallthrough) attach spans without any plumbing.

Overhead contract: with no tracer attached nothing here runs at all —
every integration point guards on ``tracer is not None``.  With a tracer
attached, an unsampled request costs one counter bump and two
``perf_counter`` reads (kept so slow or shed requests can still be
force-sampled into the buffer retroactively); the CI guard
(``benchmarks/test_trace_overhead.py``) holds enabled-at-1/100 within 3%
of tracing-off end to end.
"""

from __future__ import annotations

import json
import random
import struct
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional

__all__ = [
    "TOKEN_PREFIX",
    "TRACE_EXTRAS_LEN",
    "Span",
    "SpanBuffer",
    "TraceContext",
    "Tracer",
    "activate",
    "child_span",
    "current_span",
    "deactivate",
    "decode_token",
    "encode_token",
    "finish_span",
    "pack_trace_extras",
    "suppress",
    "unpack_trace_extras",
]


class TraceContext(NamedTuple):
    """What crosses a process boundary: ids plus the sampling decision."""

    trace_id: int
    span_id: int
    sampled: bool = True


# -- wire codecs -------------------------------------------------------------------

#: text-protocol pseudo-key prefix; the full token is a valid memcached key
TOKEN_PREFIX = b"tctx:"

_TOKEN_FLAG_SAMPLED = b"1"


def encode_token(context: TraceContext) -> bytes:
    """``tctx:<trace_hex16>.<span_hex16>.<flag>`` — 40 bytes, key-safe."""
    return b"tctx:%016x.%016x.%s" % (
        context.trace_id,
        context.span_id,
        _TOKEN_FLAG_SAMPLED if context.sampled else b"0",
    )


def decode_token(token: bytes) -> Optional[TraceContext]:
    """Parse a text trace token; ``None`` for anything malformed.

    Malformed tokens are *not* errors: a key that merely starts with the
    prefix must degrade to "no context", never break the request.
    """
    if not token.startswith(TOKEN_PREFIX):
        return None
    parts = token[len(TOKEN_PREFIX):].split(b".")
    if len(parts) != 3 or len(parts[0]) != 16 or len(parts[1]) != 16:
        return None
    try:
        trace_id = int(parts[0], 16)
        span_id = int(parts[1], 16)
    except ValueError:
        return None
    if parts[2] not in (b"0", b"1"):
        return None
    return TraceContext(trace_id, span_id, parts[2] == b"1")


#: binary-protocol carrier: trace id, parent span id, flags — rides the
#: extras of a GET request, which stock dispatchers ignore
_TRACE_EXTRAS = struct.Struct(">QQB")
TRACE_EXTRAS_LEN = _TRACE_EXTRAS.size  # 17

_EXTRAS_FLAG_SAMPLED = 0x01


def pack_trace_extras(context: TraceContext) -> bytes:
    return _TRACE_EXTRAS.pack(
        context.trace_id,
        context.span_id,
        _EXTRAS_FLAG_SAMPLED if context.sampled else 0,
    )


def unpack_trace_extras(extras: bytes) -> Optional[TraceContext]:
    """Parse binary trace extras; ``None`` when absent or malformed."""
    if len(extras) != TRACE_EXTRAS_LEN:
        return None
    trace_id, span_id, flags = _TRACE_EXTRAS.unpack(extras)
    return TraceContext(trace_id, span_id, bool(flags & _EXTRAS_FLAG_SAMPLED))


# -- spans -------------------------------------------------------------------------


class Span:
    """One timed unit of work inside a trace.

    ``start_us`` is epoch microseconds (``time.time_ns() // 1000``) so
    spans from different processes on one host line up on a shared axis;
    ``duration_us`` is measured with ``perf_counter`` so it never absorbs
    a wall-clock step.
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "process",
        "start_us", "duration_us", "attrs", "tracer", "_t0",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        process: str,
        start_us: int,
        duration_us: float = 0.0,
        attrs: Optional[dict] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.process = process
        self.start_us = start_us
        self.duration_us = duration_us
        self.attrs = attrs if attrs is not None else {}
        self.tracer: Optional["Tracer"] = None
        self._t0 = 0.0

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    def context(self) -> TraceContext:
        """The context a downstream hop should inherit from this span."""
        return TraceContext(self.trace_id, self.span_id, True)

    def to_dict(self) -> dict:
        data = {
            "trace": f"{self.trace_id:016x}",
            "span": f"{self.span_id:016x}",
            "parent": f"{self.parent_id:016x}" if self.parent_id else None,
            "name": self.name,
            "proc": self.process,
            "start_us": self.start_us,
            "dur_us": round(self.duration_us, 1),
        }
        if self.attrs:
            data["attrs"] = self.attrs
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        parent = data.get("parent")
        return cls(
            trace_id=int(data["trace"], 16),
            span_id=int(data["span"], 16),
            parent_id=int(parent, 16) if parent else None,
            name=data["name"],
            process=data.get("proc", "?"),
            start_us=int(data["start_us"]),
            duration_us=float(data["dur_us"]),
            attrs=data.get("attrs") or {},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r} trace={self.trace_id:016x} "
            f"dur={self.duration_us:.0f}us proc={self.process})"
        )


class SpanBuffer:
    """Bounded per-process span ring; oldest spans drop first.

    ``recorded`` counts every span ever offered, so ``recorded -
    len(buffer)`` is the drop count — exported traces may be partial
    under sustained sampling and the collector can say so.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, span: Span) -> None:
        self.recorded += 1
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._spans)

    def spans(self) -> List[Span]:
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def export_jsonl(self, path: str, append: bool = True) -> int:
        """Write every buffered span as one JSON object per line."""
        spans = self.spans()
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict()) + "\n")
        return len(spans)


# -- the active span ---------------------------------------------------------------

#: The span currently doing work in this task/thread.  Three states:
#: ``None`` (nothing upstream traces), a live :class:`Span` (sampled —
#: children attach here), or :data:`NOT_SAMPLED` (an upstream sampler
#: already said no; downstream layers must not re-sample).
CURRENT: ContextVar = ContextVar("gdwheel_active_span", default=None)

#: sentinel marking "sampling decided upstream: no" (see :data:`CURRENT`)
NOT_SAMPLED = object()


def current_span() -> Optional[Span]:
    """The live sampled span in this context, if any."""
    live = CURRENT.get()
    return live if isinstance(live, Span) else None


def activate(span: Span):
    """Make ``span`` the active parent; returns a reset token."""
    return CURRENT.set(span)


def suppress():
    """Mark this context not-sampled (downstream samplers stand down)."""
    return CURRENT.set(NOT_SAMPLED)


def deactivate(token) -> None:
    CURRENT.reset(token)


def child_span(name: str, **attrs) -> Optional[Span]:
    """Start a child of the active span, or ``None`` when untraced.

    This is the zero-plumbing hook for deep layers (store tier paths):
    one ContextVar read decides, and untraced requests pay nothing else.
    """
    live = CURRENT.get()
    if not isinstance(live, Span):
        return None
    tracer = live.tracer
    if tracer is None:
        return None
    return tracer.start_span(name, parent=live, **attrs)


def finish_span(span: Optional[Span], **attrs) -> None:
    """End a span from :func:`child_span`; a no-op on ``None``."""
    if span is None:
        return
    tracer = span.tracer
    if tracer is not None:
        tracer.end(span, **attrs)


# -- the tracer --------------------------------------------------------------------


class Tracer:
    """Per-process span factory: sampling, lifecycle, slow-query log.

    Args:
        process: name stamped on every span (``"client"``, ``"shard-0"``).
        capacity: span-ring size.
        sample_interval: head-sample 1 request in N (1 = every request).
        slow_threshold_us: requests at or above this are force-sampled
            even when the head decision said no, and logged as slow-query
            exemplars (key fingerprints only — never keys).
        slow_log_size: bounded slow-query exemplar count.
        rng: id source (inject for deterministic tests).
        clock / perf_counter: time sources (injectable for tests).
    """

    def __init__(
        self,
        process: str,
        capacity: int = 4096,
        sample_interval: int = 100,
        slow_threshold_us: float = 50_000.0,
        slow_log_size: int = 128,
        rng: Optional[random.Random] = None,
        clock: Callable[[], int] = time.time_ns,
        perf_counter: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.process = process
        self.buffer = SpanBuffer(capacity)
        self.sample_interval = sample_interval
        self.slow_threshold_us = slow_threshold_us
        self.slow_log = deque(maxlen=slow_log_size)
        self.forced_samples = 0
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._perf_counter = perf_counter
        self._ticker = 0

    # -- sampling --------------------------------------------------------------

    def sample(self) -> bool:
        """The head decision: trace this request?  (1st, N+1th, ...)."""
        self._ticker += 1
        return (self._ticker - 1) % self.sample_interval == 0

    def new_id(self) -> int:
        """A fresh non-zero 64-bit id."""
        value = 0
        while not value:
            value = self._rng.getrandbits(64)
        return value

    # -- span lifecycle --------------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        trace_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        **attrs,
    ) -> Span:
        """Begin a span now; finish it with :meth:`end`.

        ``parent`` (a live span) wins over explicit ``trace_id`` /
        ``parent_id`` (used when the parent lives in another process and
        arrived as a :class:`TraceContext`).  With neither, the span
        roots a new trace.
        """
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif trace_id is None:
            trace_id = self.new_id()
        span = Span(
            trace_id=trace_id,
            span_id=self.new_id(),
            parent_id=parent_id,
            name=name,
            process=self.process,
            start_us=self._clock() // 1000,
            attrs=attrs if attrs else None,
        )
        span.tracer = self
        span._t0 = self._perf_counter()
        return span

    def end(self, span: Span, **attrs) -> None:
        span.duration_us = (self._perf_counter() - span._t0) * 1e6
        if attrs:
            span.attrs.update(attrs)
        self.buffer.record(span)

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        trace_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        **attrs,
    ):
        """``with tracer.span("server.dispatch", ...) as s:`` — started,
        activated as the context's parent, deactivated and ended on exit."""
        live = self.start_span(
            name, parent=parent, trace_id=trace_id, parent_id=parent_id, **attrs
        )
        token = activate(live)
        try:
            yield live
        finally:
            deactivate(token)
            self.end(live)

    def record_complete(
        self,
        name: str,
        start_us: int,
        duration_us: float,
        trace_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        **attrs,
    ) -> Span:
        """Record an already-finished span (retroactive force-sampling)."""
        span = Span(
            trace_id=trace_id if trace_id is not None else self.new_id(),
            span_id=self.new_id(),
            parent_id=parent_id,
            name=name,
            process=self.process,
            start_us=start_us,
            duration_us=duration_us,
            attrs=attrs if attrs else None,
        )
        span.tracer = self
        self.buffer.record(span)
        return span

    # -- slow-query exemplars --------------------------------------------------

    def note_slow(
        self,
        op: str,
        duration_us: float,
        key_fp: Optional[int] = None,
        trace_id: Optional[int] = None,
        reason: str = "slow",
    ) -> None:
        """Log one slow/shed exemplar (fingerprints, never raw keys)."""
        self.forced_samples += 1
        self.slow_log.append(
            {
                "op": op,
                "dur_us": round(duration_us, 1),
                "key_fp": key_fp,
                "trace": f"{trace_id:016x}" if trace_id else None,
                "reason": reason,
            }
        )

    def slow_queries(self) -> List[dict]:
        return list(self.slow_log)

    # -- store instrumentation -------------------------------------------------

    def instrument_store(self, store) -> None:
        """Shadow store operations with span-aware wrappers.

        Covers the per-key ops (``get``/``set``/``delete``) and the
        vectored batch ops (``get_many``/``set_many``) so an MGET frame's
        store work lands as one child span under the frame's
        ``server.dispatch`` — sharing the batch's trace id — instead of N
        per-key spans.  The wrapper charges untraced operations exactly
        one ContextVar read (the same instance-attribute shadowing trick
        the metrics registry uses); with no tracer attached to the server
        the store is never wrapped at all.
        """
        for op in ("get", "set", "delete", "get_many", "set_many"):
            fn = getattr(store, op, None)
            if fn is not None:
                setattr(store, op, self._traced_op(fn, f"store.{op}"))

    def _traced_op(self, fn, name: str):
        get_active = CURRENT.get

        def traced(key, *args, **kwargs):
            live = get_active()
            # a live store.* parent means we're inside a vectored op
            # (get_many fans out to self.get): the batch span already
            # covers the work, so per-key children stay unrecorded
            if not isinstance(live, Span) or live.name.startswith("store."):
                return fn(key, *args, **kwargs)
            span = self.start_span(name, parent=live)
            token = CURRENT.set(span)
            try:
                return fn(key, *args, **kwargs)
            finally:
                CURRENT.reset(token)
                self.end(span)

        return traced

    # -- export ----------------------------------------------------------------

    def export(self, path: str, append: bool = True) -> int:
        """Flush the span ring to a JSONL file; returns spans written."""
        return self.buffer.export_jsonl(path, append=append)


def attach_context(commands: Iterable, context: TraceContext) -> List:
    """Attach ``context`` to a batch for the text protocol.

    GET commands grow the pseudo-key token (old servers answer it as a
    miss); an MGET frame fills its first-class ``trace_token`` slot —
    exactly one context for the whole batch, never one per key.  Every
    other command is forwarded untouched, because old parsers reject
    unknown tokens on storage lines — those hops stay client-side-only
    in the trace.
    """
    from dataclasses import replace

    from repro.protocol.commands import GetCommand, MultiGetCommand

    token = encode_token(context)
    out = []
    for command in commands:
        if isinstance(command, GetCommand):
            out.append(replace(command, keys=command.keys + (token,)))
        elif isinstance(command, MultiGetCommand):
            out.append(replace(command, trace_token=token))
        else:
            out.append(command)
    return out
