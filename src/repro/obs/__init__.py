"""repro.obs — the observability spine (registry, trace, exposition).

One :class:`MetricsRegistry` carries every counter, gauge, and latency
histogram for a store and the servers in front of it; one
:class:`EventTrace` carries the structured eviction/cascade/slab-move
events.  Exposition is pull (``stats metrics`` / ``stats trace`` over the
memcached protocol, Prometheus text via :mod:`repro.obs.promtext`) or push
(:class:`SnapshotReporter` rate reports).

Pass ``registry=NullRegistry()`` to a :class:`~repro.kvstore.store.KVStore`
or server to turn the whole subsystem into no-ops; the overhead-guard
benchmark (``benchmarks/test_obs_overhead.py``) holds the instrumented
path to within 10% of that baseline.

Since the tracing PR the spine also follows *individual requests* across
processes: :mod:`repro.obs.tracing` samples per-request distributed
traces whose context rides the wire protocol,
:mod:`repro.obs.tracecollect` merges the exported span files back into
trace trees, and :mod:`repro.obs.top` renders the live cluster health
table.
"""

from repro.obs.aggregate import as_number, merge_trace_stats, sum_numeric_stats
from repro.obs.histogram import BoundedHistogram, LatencyHistogram
from repro.obs.promtext import parse_sample_lines, render_registry
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    format_series,
)
from repro.obs.reporter import SnapshotReporter, diff_snapshots, format_snapshot
from repro.obs.trace import (
    BreakerTransitionEvent,
    CascadeEvent,
    ConnectionRejectedEvent,
    EventTrace,
    EvictionEvent,
    IdleDisconnectEvent,
    OverloadShedEvent,
    SlabMoveEvent,
    SpillEvent,
    TierGCEvent,
    TraceEvent,
    key_fingerprint,
)
from repro.obs.tracing import (
    Span,
    SpanBuffer,
    TraceContext,
    Tracer,
    child_span,
    current_span,
    decode_token,
    encode_token,
    finish_span,
    pack_trace_extras,
    unpack_trace_extras,
)

__all__ = [
    "BoundedHistogram",
    "BreakerTransitionEvent",
    "CascadeEvent",
    "ConnectionRejectedEvent",
    "Counter",
    "EventTrace",
    "EvictionEvent",
    "Gauge",
    "IdleDisconnectEvent",
    "OverloadShedEvent",
    "Histogram",
    "LatencyHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "SlabMoveEvent",
    "SnapshotReporter",
    "Span",
    "SpanBuffer",
    "SpillEvent",
    "TierGCEvent",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "as_number",
    "child_span",
    "current_span",
    "decode_token",
    "diff_snapshots",
    "encode_token",
    "finish_span",
    "format_series",
    "format_snapshot",
    "key_fingerprint",
    "merge_trace_stats",
    "pack_trace_extras",
    "parse_sample_lines",
    "render_registry",
    "sum_numeric_stats",
    "unpack_trace_extras",
]
