"""The live cluster health table behind ``gdwheel-repro top``.

Two registry snapshots per shard, one interval apart, become one table
row per shard: throughput (ops/s over the interval), GET p99, hit rate,
eviction and tier spill rates, tier hit share, and shed counts.  Breaker
state is a *client-side* fact (breakers live in pools, not servers), so
callers that own a pool can pass its breaker states for an extra column;
pure server-side callers get ``-``.

Pure functions over plain stats dicts — the same data arrives whether
the caller is a :class:`~repro.shard.supervisor.ShardSupervisor`
(short-lived local connections) or the CLI dialing ``host:port``
endpoints directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.obs.aggregate import as_number

__all__ = ["build_top_rows", "render_top", "top_table"]

#: stats fetcher shape: subcommand -> {shard: {stat: value}}
StatsFetch = Callable[[str], Dict[str, Dict[str, str]]]


def _num(snapshot: Mapping[str, object], key: str) -> float:
    value = as_number(snapshot.get(key, 0))
    return float(value) if value is not None else 0.0


def _rate(before: Mapping[str, object], after: Mapping[str, object],
          key: str, seconds: float) -> float:
    return max(0.0, _num(after, key) - _num(before, key)) / seconds


def build_top_rows(
    before: Dict[str, Dict[str, str]],
    after: Dict[str, Dict[str, str]],
    metrics: Dict[str, Dict[str, str]],
    seconds: float,
    breakers: Optional[Mapping[str, str]] = None,
    replica_groups: Optional[Mapping[str, str]] = None,
) -> List[Dict[str, object]]:
    """One row dict per shard from two ``stats`` snapshots + one ``stats
    metrics`` read.

    ``before``/``after`` are default-``stats`` snapshots (cumulative store
    counters — deltas give rates); ``metrics`` supplies the level-style
    latency summaries that do not delta (p99 over the histogram's life).
    ``replica_groups`` (worker name -> group name) is opt-in: when given,
    each row carries a ``group`` field, rows sort group-first so replica
    members render adjacent, and the rendered table grows a ``group``
    column.  Without it the table shape is byte-for-byte the old one.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    rows: List[Dict[str, object]] = []
    if replica_groups is not None:
        ordered = sorted(
            after, key=lambda s: (replica_groups.get(s, s), s)
        )
    else:
        ordered = sorted(after)
    for shard in ordered:
        first = before.get(shard, {})
        second = after[shard]
        shard_metrics = metrics.get(shard, {})
        gets = _rate(first, second, "gets", seconds)
        hits = _rate(first, second, "get_hits", seconds)
        sets = _rate(first, second, "sets", seconds)
        tier_hits = _rate(first, second, "tier_hits", seconds)
        shed = sum(
            _num(shard_metrics, key)
            for key in shard_metrics
            if key.startswith("server_shed_commands_total")
        )
        rows.append(
            {
                "shard": shard,
                "ops_per_sec": gets + sets,
                "get_p99_us": _num(shard_metrics, "cmd_latency_us{cmd=get}_p99"),
                "hit_rate": hits / gets if gets else 0.0,
                "evictions_per_sec": _rate(first, second, "evictions", seconds),
                "tier_hit_share": tier_hits / gets if gets else 0.0,
                "tier_spills_per_sec": _rate(first, second, "tier_spills", seconds),
                "shed_total": shed,
                "curr_items": int(_num(second, "curr_items")),
                "breaker": (breakers or {}).get(shard, "-"),
            }
        )
        if replica_groups is not None:
            rows[-1]["group"] = replica_groups.get(shard, "-")
    return rows


def render_top(rows: List[Dict[str, object]], seconds: float) -> str:
    """The fixed-width cluster table (one header, one line per shard).

    Rows carrying a ``group`` field (see ``build_top_rows``'s
    ``replica_groups``) add a ``group`` column; plain rows render the
    original table untouched.
    """
    with_group = bool(rows) and "group" in rows[0]
    group_header = f" {'group':<10}" if with_group else ""
    lines = [
        f"cluster top — rates over {seconds:.1f}s",
        f"{'shard':<10}{group_header} {'ops/s':>9} {'p99us':>8} {'hit%':>6} "
        f"{'evic/s':>7} {'tierhit%':>8} {'spill/s':>8} {'shed':>6} "
        f"{'items':>8} {'breaker':>8}",
    ]
    for row in rows:
        group_cell = f" {str(row['group']):<10}" if with_group else ""
        lines.append(
            f"{row['shard']:<10}{group_cell} {row['ops_per_sec']:>9,.0f} "
            f"{row['get_p99_us']:>8,.0f} {row['hit_rate'] * 100:>5.1f}% "
            f"{row['evictions_per_sec']:>7,.1f} "
            f"{row['tier_hit_share'] * 100:>7.2f}% "
            f"{row['tier_spills_per_sec']:>8,.1f} {row['shed_total']:>6,.0f} "
            f"{row['curr_items']:>8,} {str(row['breaker']):>8}"
        )
    return "\n".join(lines)


def top_table(
    stats_fetch: StatsFetch,
    seconds: float = 1.0,
    sleep: Optional[Callable[[float], None]] = None,
    breakers: Optional[Mapping[str, str]] = None,
    replica_groups: Optional[Mapping[str, str]] = None,
) -> str:
    """Sample the fleet twice, ``seconds`` apart, and render the table."""
    import time as _time

    sleeper = sleep if sleep is not None else _time.sleep
    before = stats_fetch("")
    started = _time.perf_counter()
    sleeper(seconds)
    elapsed = max(_time.perf_counter() - started, 1e-6)
    after = stats_fetch("")
    metrics = stats_fetch("metrics")
    return render_top(
        build_top_rows(before, after, metrics, elapsed, breakers=breakers,
                       replica_groups=replica_groups),
        elapsed,
    )
