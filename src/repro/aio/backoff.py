"""Retry policy: capped exponential backoff with jitter.

Memcached client libraries retry transient connect/timeout failures with
exponentially growing, jittered delays so a fleet of clients hammered by
one slow server doesn't reconnect in lockstep.  The policy is a frozen
value object; randomness is injected (``random.Random``) so tests are
deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to sleep between attempts.

    ``delay_for(attempt)`` for attempt 1, 2, ... is::

        min(max_delay, base_delay * factor ** (attempt - 1)) * jitter_draw

    where ``jitter_draw`` is uniform in ``[1 - jitter, 1]`` ("equal jitter"
    shaved downward so the cap is still honoured).
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.max_delay, self.base_delay * self.factor ** (attempt - 1))
        if self.jitter and rng is not None:
            delay *= 1.0 - self.jitter * rng.random()
        elif self.jitter:
            delay *= 1.0 - self.jitter * random.random()
        return delay

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The full retry schedule: ``max_attempts - 1`` sleeps."""
        for attempt in range(1, self.max_attempts):
            yield self.delay_for(attempt, rng)


#: No sleeping, no second chances — for tests that want failures to surface.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)
