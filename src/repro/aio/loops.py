"""Optional uvloop acceleration with a graceful stdlib fallback.

uvloop's libuv-based event loop implements the same ``BufferedProtocol``
and flow-control callbacks the transport layer targets, typically 2-4×
faster on the syscall-heavy paths — but it is an *optional* accelerant:
nothing in this package requires it, imports it at module scope, or
fails without it.  Benchmarks and examples opt in via::

    asyncio.set_event_loop_policy(loop_policy())

which returns uvloop's policy when the package is importable and the
stdlib default policy otherwise.  :func:`install` is the one-line
variant; :func:`uvloop_available` answers which branch you got.
"""

from __future__ import annotations

import asyncio


def _import_uvloop():
    """The single import point, split out so tests can cover both
    branches by planting/poisoning ``sys.modules['uvloop']``."""
    try:
        import uvloop
    except ImportError:
        return None
    return uvloop


def uvloop_available() -> bool:
    """Is the uvloop accelerant importable in this environment?"""
    return _import_uvloop() is not None


def loop_policy() -> asyncio.AbstractEventLoopPolicy:
    """The best available event-loop policy: uvloop's if importable,
    the stdlib default otherwise.  Never raises on a missing uvloop."""
    uvloop = _import_uvloop()
    if uvloop is not None:
        return uvloop.EventLoopPolicy()
    return asyncio.DefaultEventLoopPolicy()


def install() -> bool:
    """Set the process-wide policy from :func:`loop_policy`.

    Returns ``True`` when uvloop was installed, ``False`` on the stdlib
    fallback — callers that want to report which engine a benchmark ran
    on (``bench_env``) use the return value.
    """
    uvloop = _import_uvloop()
    asyncio.set_event_loop_policy(
        uvloop.EventLoopPolicy() if uvloop is not None
        else asyncio.DefaultEventLoopPolicy()
    )
    return uvloop is not None
