"""Scatter/gather fan-out over a consistent-hash ring of async clients.

:class:`AsyncStorePool` is the async sibling of
:class:`repro.cluster.pool.StorePool`: the same ketama ring picks the
owning node per key, but node requests run *concurrently* — a
``multi_get`` over N nodes costs one slowest-node round trip, not the sum.
That scatter/gather shape is exactly how memcached web tiers issue the
hundreds of gets behind one page load.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aio.client import AsyncStoreClient
from repro.cluster.consistent import ConsistentHashRing
from repro.obs.aggregate import sum_numeric_stats


class AsyncStorePool:
    """One logical cache over many async clients behind a hash ring.

    Args:
        clients: node name -> connected :class:`AsyncStoreClient`.
        replicas: virtual ring points per node (ketama-style).
    """

    def __init__(self, clients: Dict[str, AsyncStoreClient], replicas: int = 100) -> None:
        if not clients:
            raise ValueError("a pool needs at least one client")
        self._clients = dict(clients)
        self._ring = ConsistentHashRing(list(clients), replicas=replicas)
        #: per-node operation counters, for balance diagnostics
        self.node_ops: Dict[str, int] = {name: 0 for name in clients}

    @property
    def clients(self) -> Dict[str, AsyncStoreClient]:
        return dict(self._clients)

    def node_for(self, key: bytes) -> str:
        node = self._ring.node_for(key)
        assert node is not None
        return node

    def client_for(self, key: bytes) -> AsyncStoreClient:
        return self._clients[self.node_for(key)]

    def group_by_node(self, keys: Sequence[bytes]) -> Dict[str, List[bytes]]:
        """Partition ``keys`` by owning node, preserving per-node order."""
        grouped: Dict[str, List[bytes]] = {}
        for key in keys:
            grouped.setdefault(self.node_for(key), []).append(key)
        return grouped

    # -- single-key ops (routed) -----------------------------------------------

    async def get(self, key: bytes) -> Optional[bytes]:
        node = self.node_for(key)
        self.node_ops[node] += 1
        return await self._clients[node].get(key)

    async def set(self, key: bytes, value: bytes, cost: int = 0,
                  exptime: float = 0) -> bool:
        node = self.node_for(key)
        self.node_ops[node] += 1
        return await self._clients[node].set(key, value, cost=cost, exptime=exptime)

    async def delete(self, key: bytes) -> bool:
        node = self.node_for(key)
        self.node_ops[node] += 1
        return await self._clients[node].delete(key)

    # -- scatter/gather --------------------------------------------------------

    async def multi_get(self, keys: Sequence[bytes]) -> Dict[bytes, bytes]:
        """Concurrent multi-key GET: group per node, fan out, merge.

        Each node receives one pipelined ``get`` carrying all its keys;
        the node requests run concurrently under ``asyncio.gather``.
        """
        grouped = self.group_by_node(keys)
        if not grouped:
            return {}
        nodes = list(grouped)
        results = await asyncio.gather(
            *(self._clients[node].get_many(grouped[node]) for node in nodes)
        )
        merged: Dict[bytes, bytes] = {}
        for node, found in zip(nodes, results):
            self.node_ops[node] += 1
            merged.update(found)
        return merged

    async def multi_set(
        self, items: Sequence[Tuple[bytes, bytes, int]], exptime: float = 0
    ) -> int:
        """Concurrent pipelined SETs of (key, value, cost); returns #stored."""
        grouped: Dict[str, List[Tuple[bytes, bytes, int]]] = {}
        for item in items:
            grouped.setdefault(self.node_for(item[0]), []).append(item)
        if not grouped:
            return 0
        nodes = list(grouped)
        counts = await asyncio.gather(
            *(self._clients[node].set_many(grouped[node], exptime=exptime)
              for node in nodes)
        )
        for node in nodes:
            self.node_ops[node] += 1
        return sum(counts)

    # -- fleet management ------------------------------------------------------

    async def aggregate_stats(self) -> Dict[str, int]:
        """Summed numeric server stats across every node (concurrently).

        Merging lives in :func:`repro.obs.aggregate.sum_numeric_stats`, the
        same helper the shard supervisor uses for its fleet view.
        """
        nodes = list(self._clients)
        snapshots = await asyncio.gather(
            *(self._clients[node].stats() for node in nodes)
        )
        return sum_numeric_stats(snapshots)

    async def per_node_stats(self) -> Dict[str, Dict[str, str]]:
        """Raw server stats per node, gathered concurrently."""
        nodes = list(self._clients)
        snapshots = await asyncio.gather(
            *(self._clients[node].stats() for node in nodes)
        )
        return dict(zip(nodes, snapshots))

    async def flush_all(self) -> None:
        await asyncio.gather(*(c.flush_all() for c in self._clients.values()))

    async def aclose(self) -> None:
        await asyncio.gather(*(c.aclose() for c in self._clients.values()))

    async def __aenter__(self) -> "AsyncStorePool":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
