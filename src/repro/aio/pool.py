"""Scatter/gather fan-out over a consistent-hash ring of async clients.

:class:`AsyncStorePool` is the async sibling of
:class:`repro.cluster.pool.StorePool`: the same ketama ring picks the
owning node per key, but node requests run *concurrently* — a
``multi_get`` over N nodes costs one slowest-node round trip, not the sum.
That scatter/gather shape is exactly how memcached web tiers issue the
hundreds of gets behind one page load.

The pool holds no wire code of its own: every node leg rides
:class:`AsyncStoreClient`, so the BufferedProtocol transport — tuned
sockets, future-per-batch completion, single lazy deadline timer — is
what each fan-out arm actually runs on.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aio.client import AsyncStoreClient
from repro.cluster.consistent import ConsistentHashRing
from repro.obs import tracing
from repro.obs.aggregate import sum_numeric_stats
from repro.obs.trace import key_fingerprint


class MultiGetResult(Dict[bytes, bytes]):
    """A ``multi_get`` result: the merged hits, plus per-key attribution.

    Behaves exactly like the plain ``{key: value}`` dict older callers
    expect.  :attr:`errors` adds the partial-failure attribution: for
    every key whose owning node's request failed, the exception that
    killed that node's batch — so a caller can distinguish "miss" (absent
    from both) from "unknown, the shard was down" (present in
    :attr:`errors`) and retry exactly the affected keys.
    """

    __slots__ = ("errors",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: key -> the exception its owning node's request raised
        self.errors: Dict[bytes, BaseException] = {}

    @property
    def complete(self) -> bool:
        """True when every key was actually answered by a live node."""
        return not self.errors


class AsyncStorePool:
    """One logical cache over many async clients behind a hash ring.

    Args:
        clients: node name -> connected :class:`AsyncStoreClient`.
        replicas: virtual ring points per node (ketama-style).
        tracer: optional :class:`~repro.obs.tracing.Tracer`.  The pool is
            then the root sampler: sampled routed ops open a
            ``client.request`` root plus per-node ``router.route`` spans,
            under which each node's client records its own hop spans.
            Unsampled ops run with sampling *suppressed* downstream, so a
            client sharing the tracer never re-rolls the decision.
    """

    def __init__(
        self,
        clients: Dict[str, AsyncStoreClient],
        replicas: int = 100,
        tracer: Optional["tracing.Tracer"] = None,
        read_fallback: bool = False,
    ) -> None:
        if not clients:
            raise ValueError("a pool needs at least one client")
        self._clients = dict(clients)
        self._ring = ConsistentHashRing(list(clients), replicas=replicas)
        self.tracer = tracer
        #: when True, ``multi_get`` re-issues keys owned by a failed or
        #: breaker-open node to the next *healthy* ring node instead of
        #: burning the dead node's retry budget (see :meth:`multi_get`)
        self.read_fallback = read_fallback
        #: per-node operation counters, for balance diagnostics
        self.node_ops: Dict[str, int] = {name: 0 for name in clients}
        #: per-node failed fan-out requests (multi_get partial accounting)
        self.node_failures: Dict[str, int] = {}
        #: fan-out legs redirected to a fallback node (read_fallback only)
        self.node_fallbacks: Dict[str, int] = {}

    @property
    def breakers(self) -> Dict[str, object]:
        """Per-node circuit breakers for clients that carry one."""
        return {
            name: client.breaker
            for name, client in self._clients.items()
            if client.breaker is not None
        }

    @property
    def clients(self) -> Dict[str, AsyncStoreClient]:
        return dict(self._clients)

    @property
    def batch_support(self) -> Dict[str, Optional[bool]]:
        """Negotiated MGET/MSET support per node.

        ``None`` = not probed yet, ``True``/``False`` once the node's
        client has negotiated (the outcome is cached on the client, so a
        mixed-version fleet settles after one probe per node).
        """
        return {
            name: client.batch_supported
            for name, client in self._clients.items()
        }

    def node_for(self, key: bytes) -> str:
        node = self._ring.node_for(key)
        assert node is not None
        return node

    def client_for(self, key: bytes) -> AsyncStoreClient:
        return self._clients[self.node_for(key)]

    def group_by_node(self, keys: Sequence[bytes]) -> Dict[str, List[bytes]]:
        """Partition ``keys`` by owning node, preserving per-node order."""
        grouped: Dict[str, List[bytes]] = {}
        for key in keys:
            grouped.setdefault(self.node_for(key), []).append(key)
        return grouped

    def _breaker_open(self, node: str) -> bool:
        """Is ``node``'s breaker hard-open right now?

        Reads ``.state`` rather than calling ``allow()`` — ``allow()``
        consumes half-open probe budget, and a routing *pre-check* must
        never eat the probe that would have closed the breaker.
        """
        breaker = self._clients[node].breaker
        return breaker is not None and breaker.state == "open"

    def fallback_node(self, key: bytes, exclude) -> Optional[str]:
        """The first healthy non-excluded node on ``key``'s ring walk.

        Healthy = breaker not hard-open.  Returns ``None`` when every
        other node is excluded or open (the caller then sticks with the
        original owner — failing there beats failing nowhere).
        """
        for node in self._ring.nodes_for(key):
            if node in exclude or self._breaker_open(node):
                continue
            return node
        return None

    # -- single-key ops (routed) -----------------------------------------------

    async def _routed(self, op: str, key: bytes, node: str, call):
        """Run one routed op under the pool's root + route spans.

        Only reached when :attr:`tracer` is set.  An unsampled op costs
        one counter bump plus a suppressed-context set/reset; the node's
        client (sharing the tracer) still force-samples it if it turns
        out slow or shed.
        """
        tracer = self.tracer
        if not tracer.sample():
            token = tracing.suppress()
            try:
                return await call()
            finally:
                tracing.deactivate(token)
        root = tracer.start_span(
            "client.request", op=op, key_fp=key_fingerprint(key)
        )
        root_token = tracing.activate(root)
        try:
            route = tracer.start_span("router.route", parent=root, shard=node)
            route_token = tracing.activate(route)
            try:
                return await call()
            finally:
                tracing.deactivate(route_token)
                tracer.end(route)
        finally:
            tracing.deactivate(root_token)
            tracer.end(root)

    async def get(self, key: bytes) -> Optional[bytes]:
        node = self.node_for(key)
        self.node_ops[node] += 1
        if self.tracer is None:
            return await self._clients[node].get(key)
        return await self._routed(
            "get", key, node, lambda: self._clients[node].get(key)
        )

    async def set(self, key: bytes, value: bytes, cost: int = 0,
                  exptime: float = 0) -> bool:
        node = self.node_for(key)
        self.node_ops[node] += 1
        if self.tracer is None:
            return await self._clients[node].set(
                key, value, cost=cost, exptime=exptime
            )
        return await self._routed(
            "set", key, node,
            lambda: self._clients[node].set(key, value, cost=cost,
                                            exptime=exptime),
        )

    async def delete(self, key: bytes) -> bool:
        node = self.node_for(key)
        self.node_ops[node] += 1
        if self.tracer is None:
            return await self._clients[node].delete(key)
        return await self._routed(
            "delete", key, node, lambda: self._clients[node].delete(key)
        )

    # -- scatter/gather --------------------------------------------------------

    async def multi_get(
        self, keys: Sequence[bytes], partial: bool = False
    ) -> MultiGetResult:
        """Concurrent multi-key GET: group per node, fan out, merge.

        Each node receives exactly **one** MGET frame carrying all its
        keys (the client negotiates a per-key fallback against old
        servers); the node requests run concurrently under
        ``asyncio.gather``.

        Partial-failure contract: by default a node whose request fails
        (after the client's own retries, or fast via an open circuit
        breaker) makes the *whole* call raise that node's error — but only
        after every other node's request has completed, so no fan-out task
        is left running.  With ``partial=True`` the call instead returns a
        :class:`MultiGetResult`: the merged hits from the live nodes, and
        — the per-key attribution the old all-or-nothing shape lost —
        ``result.errors[key]`` holding the failed node's exception for
        every key that node owned, so "miss" and "shard down" are
        distinguishable and callers can retry exactly the affected keys.
        Per-node failures are also tallied in :attr:`node_failures`.
        Breaker short-circuiting preserves both shapes — it only changes
        how fast the dead node's error arrives.

        With ``read_fallback=True`` the pool routes around trouble
        instead: keys owned by a node whose breaker is already open are
        sent straight to the next healthy ring node (no retry budget is
        spent dialing a node known to be dead), and keys whose owner
        failed this call get one fallback round on a different healthy
        node before the error is surfaced.  Without replication the
        fallback node answers a miss for data it never held — an
        acceptable degraded answer for a cache, and the exact read path
        replica groups make lossless.
        """
        grouped = self.group_by_node(keys)
        if not grouped:
            return MultiGetResult()
        if self.read_fallback:
            grouped = self._redirect_open_breakers(grouped)
        nodes = list(grouped)
        tracer = self.tracer
        root = None
        context_token = None
        if tracer is not None:
            if tracer.sample():
                root = tracer.start_span(
                    "client.request", op="multi_get",
                    nkeys=len(keys), nodes=len(nodes),
                )
                context_token = tracing.activate(root)
            else:
                context_token = tracing.suppress()
        try:
            if root is None:
                results = await asyncio.gather(
                    *(self._clients[node].get_many(grouped[node])
                      for node in nodes),
                    return_exceptions=True,
                )
            else:
                # each fan-out leg activates its own route span inside its
                # task, so concurrent legs nest correctly under one root
                results = await asyncio.gather(
                    *(self._traced_get_many(tracer, root, node, grouped[node])
                      for node in nodes),
                    return_exceptions=True,
                )
        finally:
            if context_token is not None:
                tracing.deactivate(context_token)
            if root is not None:
                tracer.end(root)
        merged = MultiGetResult()
        first_error: Optional[BaseException] = None
        failed_nodes = set()
        for node, found in zip(nodes, results):
            self.node_ops[node] += 1
            if isinstance(found, BaseException):
                self.node_failures[node] = self.node_failures.get(node, 0) + 1
                failed_nodes.add(node)
                for key in grouped[node]:
                    merged.errors[key] = found
                if first_error is None:
                    first_error = found
                continue
            merged.update(found)
        if self.read_fallback and merged.errors:
            await self._fallback_round(merged, failed_nodes)
            first_error = next(iter(merged.errors.values()), None)
        if first_error is not None and not partial:
            raise first_error
        return merged

    def _redirect_open_breakers(
        self, grouped: Dict[str, List[bytes]]
    ) -> Dict[str, List[bytes]]:
        """Reroute keys owned by hard-open-breaker nodes before fan-out.

        A node the breaker already condemned gets no traffic at all this
        call — its keys ride the next healthy node's MGET frame instead
        (tallied in :attr:`node_fallbacks`).  When every node is open the
        original grouping stands, so the caller still gets a fast
        :class:`~repro.resilience.BreakerOpenError` rather than nothing.
        """
        open_nodes = {node for node in grouped if self._breaker_open(node)}
        if not open_nodes or len(open_nodes) == len(self._clients):
            return grouped
        regrouped: Dict[str, List[bytes]] = {}
        for node, node_keys in grouped.items():
            if node not in open_nodes:
                regrouped.setdefault(node, []).extend(node_keys)
                continue
            for key in node_keys:
                alt = self.fallback_node(key, open_nodes)
                target = alt if alt is not None else node
                if alt is not None:
                    self.node_fallbacks[node] = (
                        self.node_fallbacks.get(node, 0) + 1
                    )
                regrouped.setdefault(target, []).append(key)
        return regrouped

    async def _fallback_round(self, merged: MultiGetResult, failed_nodes) -> None:
        """One retry round for failed keys, on different healthy nodes.

        Successful keys drop out of ``merged.errors``; keys whose
        fallback also failed keep their *original* error attribution.
        """
        retry_groups: Dict[str, List[bytes]] = {}
        for key in merged.errors:
            alt = self.fallback_node(key, failed_nodes)
            if alt is not None:
                retry_groups.setdefault(alt, []).append(key)
        if not retry_groups:
            return
        alt_nodes = list(retry_groups)
        results = await asyncio.gather(
            *(self._clients[node].get_many(retry_groups[node])
              for node in alt_nodes),
            return_exceptions=True,
        )
        for node, found in zip(alt_nodes, results):
            self.node_ops[node] += 1
            if isinstance(found, BaseException):
                continue
            for key in retry_groups[node]:
                merged.errors.pop(key, None)
            self.node_fallbacks[node] = (
                self.node_fallbacks.get(node, 0) + len(retry_groups[node])
            )
            merged.update(found)

    async def _traced_get_many(self, tracer, root, node: str, keys):
        """One sampled fan-out leg: a ``router.route`` span around the
        node's pipelined GET (the node's client hops nest beneath it)."""
        route = tracer.start_span(
            "router.route", parent=root, shard=node, nkeys=len(keys)
        )
        token = tracing.activate(route)
        try:
            return await self._clients[node].get_many(keys)
        finally:
            tracing.deactivate(token)
            tracer.end(route)

    async def multi_set(
        self, items: Sequence[Tuple[bytes, bytes, int]], exptime: float = 0
    ) -> int:
        """Concurrent pipelined SETs of (key, value, cost); returns #stored."""
        grouped: Dict[str, List[Tuple[bytes, bytes, int]]] = {}
        for item in items:
            grouped.setdefault(self.node_for(item[0]), []).append(item)
        if not grouped:
            return 0
        nodes = list(grouped)
        counts = await asyncio.gather(
            *(self._clients[node].set_many(grouped[node], exptime=exptime)
              for node in nodes)
        )
        for node in nodes:
            self.node_ops[node] += 1
        return sum(counts)

    # -- fleet management ------------------------------------------------------

    async def aggregate_stats(self) -> Dict[str, int]:
        """Summed numeric server stats across every node (concurrently).

        Merging lives in :func:`repro.obs.aggregate.sum_numeric_stats`, the
        same helper the shard supervisor uses for its fleet view.
        """
        nodes = list(self._clients)
        snapshots = await asyncio.gather(
            *(self._clients[node].stats() for node in nodes)
        )
        return sum_numeric_stats(snapshots)

    async def per_node_stats(self) -> Dict[str, Dict[str, str]]:
        """Raw server stats per node, gathered concurrently."""
        nodes = list(self._clients)
        snapshots = await asyncio.gather(
            *(self._clients[node].stats() for node in nodes)
        )
        return dict(zip(nodes, snapshots))

    async def flush_all(self) -> None:
        await asyncio.gather(*(c.flush_all() for c in self._clients.values()))

    async def aclose(self) -> None:
        await asyncio.gather(*(c.aclose() for c in self._clients.values()))

    async def __aenter__(self) -> "AsyncStorePool":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
