"""Scatter/gather fan-out over a consistent-hash ring of async clients.

:class:`AsyncStorePool` is the async sibling of
:class:`repro.cluster.pool.StorePool`: the same ketama ring picks the
owning node per key, but node requests run *concurrently* — a
``multi_get`` over N nodes costs one slowest-node round trip, not the sum.
That scatter/gather shape is exactly how memcached web tiers issue the
hundreds of gets behind one page load.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aio.client import AsyncStoreClient
from repro.cluster.consistent import ConsistentHashRing
from repro.obs.aggregate import sum_numeric_stats


class AsyncStorePool:
    """One logical cache over many async clients behind a hash ring.

    Args:
        clients: node name -> connected :class:`AsyncStoreClient`.
        replicas: virtual ring points per node (ketama-style).
    """

    def __init__(self, clients: Dict[str, AsyncStoreClient], replicas: int = 100) -> None:
        if not clients:
            raise ValueError("a pool needs at least one client")
        self._clients = dict(clients)
        self._ring = ConsistentHashRing(list(clients), replicas=replicas)
        #: per-node operation counters, for balance diagnostics
        self.node_ops: Dict[str, int] = {name: 0 for name in clients}
        #: per-node failed fan-out requests (multi_get partial accounting)
        self.node_failures: Dict[str, int] = {}

    @property
    def breakers(self) -> Dict[str, object]:
        """Per-node circuit breakers for clients that carry one."""
        return {
            name: client.breaker
            for name, client in self._clients.items()
            if client.breaker is not None
        }

    @property
    def clients(self) -> Dict[str, AsyncStoreClient]:
        return dict(self._clients)

    def node_for(self, key: bytes) -> str:
        node = self._ring.node_for(key)
        assert node is not None
        return node

    def client_for(self, key: bytes) -> AsyncStoreClient:
        return self._clients[self.node_for(key)]

    def group_by_node(self, keys: Sequence[bytes]) -> Dict[str, List[bytes]]:
        """Partition ``keys`` by owning node, preserving per-node order."""
        grouped: Dict[str, List[bytes]] = {}
        for key in keys:
            grouped.setdefault(self.node_for(key), []).append(key)
        return grouped

    # -- single-key ops (routed) -----------------------------------------------

    async def get(self, key: bytes) -> Optional[bytes]:
        node = self.node_for(key)
        self.node_ops[node] += 1
        return await self._clients[node].get(key)

    async def set(self, key: bytes, value: bytes, cost: int = 0,
                  exptime: float = 0) -> bool:
        node = self.node_for(key)
        self.node_ops[node] += 1
        return await self._clients[node].set(key, value, cost=cost, exptime=exptime)

    async def delete(self, key: bytes) -> bool:
        node = self.node_for(key)
        self.node_ops[node] += 1
        return await self._clients[node].delete(key)

    # -- scatter/gather --------------------------------------------------------

    async def multi_get(
        self, keys: Sequence[bytes], partial: bool = False
    ) -> Dict[bytes, bytes]:
        """Concurrent multi-key GET: group per node, fan out, merge.

        Each node receives one pipelined ``get`` carrying all its keys;
        the node requests run concurrently under ``asyncio.gather``.

        Partial-failure contract: by default a node whose request fails
        (after the client's own retries, or fast via an open circuit
        breaker) makes the *whole* call raise that node's error — but only
        after every other node's request has completed, so no fan-out task
        is left running.  With ``partial=True`` the failed node's keys are
        instead treated as misses and the merged dict carries whatever the
        live nodes returned; per-node failures are tallied in
        :attr:`node_failures`.  Breaker short-circuiting preserves both
        shapes — it only changes how fast the dead node's error arrives.
        """
        grouped = self.group_by_node(keys)
        if not grouped:
            return {}
        nodes = list(grouped)
        results = await asyncio.gather(
            *(self._clients[node].get_many(grouped[node]) for node in nodes),
            return_exceptions=True,
        )
        merged: Dict[bytes, bytes] = {}
        first_error: Optional[BaseException] = None
        for node, found in zip(nodes, results):
            self.node_ops[node] += 1
            if isinstance(found, BaseException):
                self.node_failures[node] = self.node_failures.get(node, 0) + 1
                if first_error is None:
                    first_error = found
                continue
            merged.update(found)
        if first_error is not None and not partial:
            raise first_error
        return merged

    async def multi_set(
        self, items: Sequence[Tuple[bytes, bytes, int]], exptime: float = 0
    ) -> int:
        """Concurrent pipelined SETs of (key, value, cost); returns #stored."""
        grouped: Dict[str, List[Tuple[bytes, bytes, int]]] = {}
        for item in items:
            grouped.setdefault(self.node_for(item[0]), []).append(item)
        if not grouped:
            return 0
        nodes = list(grouped)
        counts = await asyncio.gather(
            *(self._clients[node].set_many(grouped[node], exptime=exptime)
              for node in nodes)
        )
        for node in nodes:
            self.node_ops[node] += 1
        return sum(counts)

    # -- fleet management ------------------------------------------------------

    async def aggregate_stats(self) -> Dict[str, int]:
        """Summed numeric server stats across every node (concurrently).

        Merging lives in :func:`repro.obs.aggregate.sum_numeric_stats`, the
        same helper the shard supervisor uses for its fleet view.
        """
        nodes = list(self._clients)
        snapshots = await asyncio.gather(
            *(self._clients[node].stats() for node in nodes)
        )
        return sum_numeric_stats(snapshots)

    async def per_node_stats(self) -> Dict[str, Dict[str, str]]:
        """Raw server stats per node, gathered concurrently."""
        nodes = list(self._clients)
        snapshots = await asyncio.gather(
            *(self._clients[node].stats() for node in nodes)
        )
        return dict(zip(nodes, snapshots))

    async def flush_all(self) -> None:
        await asyncio.gather(*(c.flush_all() for c in self._clients.values()))

    async def aclose(self) -> None:
        await asyncio.gather(*(c.aclose() for c in self._clients.values()))

    async def __aenter__(self) -> "AsyncStorePool":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
