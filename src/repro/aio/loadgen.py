"""Closed-loop async load generator (YCSB-style) over real sockets.

The paper's serving experiments drive memcached with 8 closed-loop client
threads; this is the asyncio equivalent: ``concurrency`` workers, each
issuing one pipelined batch at a time against a live server and waiting
for the reply before sending the next (closed loop — offered load adapts
to service rate, so the numbers are honest under overload).

Key popularity, per-key cost, and value size all come from
:mod:`repro.workloads` (the paper's Table 2/3 distributions); latency is
recorded per batch into :class:`repro.sim.histogram.LatencyHistogram` so
the report has bounded-error p50/p95/p99 without keeping every sample.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.aio.client import AsyncStoreClient
from repro.obs.reporter import SnapshotReporter
from repro.sim.histogram import LatencyHistogram
from repro.workloads.ycsb import Workload


def _new_histogram() -> LatencyHistogram:
    # microseconds; 1e9 us = 1000 s ceiling is plenty for loopback
    return LatencyHistogram(max_value=1e9, sub_buckets=32)


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    operations: int
    batches: int
    duration_seconds: float
    get_hits: int
    get_misses: int
    sets: int
    errors: int
    retries: int
    #: batch round-trip latency in microseconds
    latency: LatencyHistogram = field(default_factory=_new_histogram)

    @property
    def throughput(self) -> float:
        """Operations per second (individual commands, not batches)."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.operations / self.duration_seconds

    @property
    def hit_rate(self) -> float:
        gets = self.get_hits + self.get_misses
        return self.get_hits / gets if gets else 0.0

    def percentile_us(self, pct: float) -> float:
        return self.latency.percentile(pct)

    def format(self, title: str = "load report") -> str:
        lines = [
            f"== {title} ==",
            f"operations      {self.operations}",
            f"duration        {self.duration_seconds:.3f} s",
            f"throughput      {self.throughput:,.0f} ops/s",
            f"get hit rate    {self.hit_rate:.3f}"
            f" ({self.get_hits} hits / {self.get_misses} misses)",
            f"sets            {self.sets}",
            f"errors          {self.errors}   retries {self.retries}",
            "batch latency (us):",
            f"  mean {self.latency.mean:10.1f}",
            f"  p50  {self.percentile_us(50):10.1f}",
            f"  p95  {self.percentile_us(95):10.1f}",
            f"  p99  {self.percentile_us(99):10.1f}",
            f"  max  {self.latency.max:10.1f}",
        ]
        return "\n".join(lines)


async def run_closed_loop(
    host: str,
    port: int,
    workload: Workload,
    total_ops: int = 10_000,
    concurrency: int = 8,
    batch_size: int = 8,
    read_fraction: float = 0.95,
    warmup_keys: Optional[int] = None,
    set_on_miss: bool = True,
    timeout: float = 5.0,
    seed: int = 0,
    client: Optional[AsyncStoreClient] = None,
    reporter: Optional[SnapshotReporter] = None,
    report_interval: float = 1.0,
    batching: str = "mget",
) -> LoadReport:
    """Drive a live server and measure throughput + latency percentiles.

    Args:
        workload: a materialized :class:`Workload`; supplies Zipf-sampled
            key ids plus each key's cost and value size.
        total_ops: total commands across all workers (approximate: rounded
            up to whole batches).
        concurrency: closed-loop workers (the paper uses 8 client threads).
        batch_size: commands pipelined per round trip.
        read_fraction: probability a slot is a GET (YCSB-B is 0.95).
        warmup_keys: SETs issued before timing starts (defaults to the
            whole key universe, like the paper's warmup phase).
        set_on_miss: cache-aside — a GET miss appends a SET of that key
            (with its workload cost) to the next batch.
        client: drive an existing client (e.g. one per-node pool member);
            when omitted a client with ``pool_size=concurrency`` is built
            and closed on exit.
        reporter: optional :class:`~repro.obs.reporter.SnapshotReporter`;
            while the timed phase runs, it emits a rate-per-second report
            every ``report_interval`` seconds (live server-side telemetry
            alongside the client-side closed-loop numbers).
        batching: wire mode for the generator's own client (ignored when
            ``client`` is passed in).  The default ``"mget"`` puts each
            GET window on the wire as one MGET frame and each SET window
            as one MSET frame, so the generator amortizes per-command
            framing exactly like the serving path and is never the
            bottleneck; ``"none"`` forces per-key frames (the A/B
            baseline the net benchmark drives).
    """
    if total_ops < 1:
        raise ValueError("total_ops must be >= 1")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    own_client = client is None
    if client is None:
        client = AsyncStoreClient(
            host, port, pool_size=concurrency, timeout=timeout,
            batching=batching,
        )

    # warmup: load keys so the timed phase measures a warm cache
    count = workload.num_keys if warmup_keys is None else warmup_keys
    order = workload.warmup_order(count=count, seed=seed + 99)
    for start in range(0, len(order), 64):
        chunk = order[start : start + 64]
        await client.set_many(
            [
                (workload.key_bytes(k), workload.value_of(k), workload.cost_of(k))
                for k in chunk
            ]
        )

    report = LoadReport(
        operations=0, batches=0, duration_seconds=0.0,
        get_hits=0, get_misses=0, sets=0, errors=0, retries=0,
    )
    ops_per_worker = -(-total_ops // concurrency)  # ceil
    batches_per_worker = -(-ops_per_worker // batch_size)  # ceil

    async def worker(worker_id: int):
        """One closed-loop worker; returns raw counters + latency array.

        The timed loop does no histogram bucketing and no attribute
        writes: per-batch latencies land in a preallocated list-backed
        array by index, counters are local ints, and ``perf_counter`` is
        bound once — the PR 5 sim-driver treatment, so the generator's
        own bookkeeping never under-reports server gains.  The histogram
        is filled in after the run, outside the timed window.
        """
        perf_counter = time.perf_counter  # bound: no attr lookup per batch
        rng = np.random.default_rng(seed * 1009 + worker_id)
        key_ids = workload.sample_requests(ops_per_worker)
        reads = rng.random(ops_per_worker) < read_fraction
        # preallocated per-batch arrays, indexed — never appended to —
        # inside the timed loop
        latencies = [0.0] * batches_per_worker
        operations = 0
        nbatches = 0
        get_hits = 0
        get_misses = 0
        sets = 0
        errors = 0
        pending_sets = []  # key ids missed last batch (cache-aside refill)
        issued = 0
        while issued < ops_per_worker:
            window = key_ids[issued : issued + batch_size]
            get_ids = []
            get_keys = []
            set_items = []
            for offset, key_id in enumerate(window):
                key_id = int(key_id)
                if reads[issued + offset]:
                    get_ids.append(key_id)
                    get_keys.append(workload.key_bytes(key_id))
                else:
                    set_items.append(key_id)
            issued += len(window)
            set_items.extend(pending_sets)
            pending_sets = []
            started = perf_counter()
            try:
                if get_keys:
                    found = await client.get_many(get_keys)
                    # per requested key: Zipf repeats count
                    missing = [
                        key_id
                        for key_id, key in zip(get_ids, get_keys)
                        if key not in found
                    ]
                    get_misses += len(missing)
                    get_hits += len(get_keys) - len(missing)
                if set_items:
                    stored = await client.set_many(
                        [
                            (
                                workload.key_bytes(k),
                                workload.value_of(k),
                                workload.cost_of(k),
                            )
                            for k in set_items
                        ]
                    )
                    sets += stored
                if set_on_miss and get_keys:
                    pending_sets = missing
            except (ConnectionError, OSError, asyncio.TimeoutError):
                errors += 1
                continue
            latencies[nbatches] = (perf_counter() - started) * 1e6
            operations += len(window)
            nbatches += 1
        return (
            operations, nbatches, get_hits, get_misses, sets, errors,
            latencies,
        )

    report_stop: Optional[asyncio.Event] = None
    report_task: Optional[asyncio.Task] = None
    if reporter is not None:
        report_stop = asyncio.Event()
        report_task = asyncio.create_task(
            reporter.run_async(
                interval=report_interval, stop=report_stop, title="loadgen"
            )
        )
    started = time.perf_counter()
    try:
        locals_ = await asyncio.gather(*(worker(i) for i in range(concurrency)))
    finally:
        if report_task is not None:
            report_stop.set()
            await report_task
    report.duration_seconds = time.perf_counter() - started
    # histogram bucketing happens here, after the clock stopped — the
    # timed loop only stamped raw floats into preallocated arrays
    record = report.latency.record
    for operations, nbatches, hits, misses, sets, errors, latencies in locals_:
        report.operations += operations
        report.batches += nbatches
        report.get_hits += hits
        report.get_misses += misses
        report.sets += sets
        report.errors += errors
        for index in range(nbatches):
            record(latencies[index])
    report.retries = client.request_retries + client.connect_retries
    if own_client:
        await client.aclose()
    return report


def run_closed_loop_sync(*args, **kwargs) -> LoadReport:
    """Blocking wrapper: run the load generator from sync code."""
    return asyncio.run(run_closed_loop(*args, **kwargs))
