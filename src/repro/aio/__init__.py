"""``repro.aio`` — the asyncio serving stack.

The simulation side of the reproduction measures *policies*; this package
is the serving layer the paper's throughput/latency figures (7-9) assume:
a real networked store multiplexing many client connections.  One event
loop replaces the thread-per-connection model, and both ends of the wire
run on low-level ``BufferedProtocol`` transports (zero-copy receive,
callback-driven backpressure):

* :class:`AsyncTCPStoreServer` — asyncio TCP server over the same
  byte-in/byte-out :class:`~repro.protocol.server.StoreServer` dispatcher,
  with request pipelining, transport-level write backpressure
  (``pause_writing``/``resume_writing``), connection limits, and graceful
  shutdown.
* :class:`AsyncStoreClient` — pooled, pipelining client with
  future-per-pipeline-slot completion, per-batch timeouts, and retry
  (exponential backoff + jitter) on connect/timeout failures.
* :class:`AsyncStorePool` — scatter/gather fan-out over a
  :class:`~repro.cluster.consistent.ConsistentHashRing` of async clients.
* :func:`run_closed_loop` — a closed-loop YCSB-style load generator
  reporting throughput and p50/p95/p99 latency.
* :func:`loop_policy` / :func:`install` — optional uvloop acceleration
  with a graceful stdlib fallback.
* :func:`tune_socket` — the shared TCP tuning policy (NODELAY + explicit
  buffer sizing) every connect/accept path applies.
"""

from repro.aio.backoff import RetryPolicy
from repro.aio.client import AsyncStoreClient, BatchResult
from repro.aio.loadgen import LoadReport, run_closed_loop, run_closed_loop_sync
from repro.aio.loops import install, loop_policy, uvloop_available
from repro.aio.pool import AsyncStorePool
from repro.aio.server import AsyncTCPStoreServer
from repro.protocol.sockopt import tune_socket

__all__ = [
    "AsyncStoreClient",
    "AsyncStorePool",
    "AsyncTCPStoreServer",
    "BatchResult",
    "LoadReport",
    "RetryPolicy",
    "install",
    "loop_policy",
    "run_closed_loop",
    "run_closed_loop_sync",
    "tune_socket",
    "uvloop_available",
]
