"""``repro.aio`` — the asyncio serving stack.

The simulation side of the reproduction measures *policies*; this package
is the serving layer the paper's throughput/latency figures (7-9) assume:
a real networked store multiplexing many client connections.  One event
loop replaces the thread-per-connection model:

* :class:`AsyncTCPStoreServer` — asyncio TCP server over the same
  byte-in/byte-out :class:`~repro.protocol.server.StoreServer` dispatcher,
  with request pipelining, write backpressure, connection limits, and
  graceful shutdown.
* :class:`AsyncStoreClient` — pooled, pipelining client with per-request
  timeouts and retry (exponential backoff + jitter) on connect/timeout
  failures.
* :class:`AsyncStorePool` — scatter/gather fan-out over a
  :class:`~repro.cluster.consistent.ConsistentHashRing` of async clients.
* :func:`run_closed_loop` — a closed-loop YCSB-style load generator
  reporting throughput and p50/p95/p99 latency.
"""

from repro.aio.backoff import RetryPolicy
from repro.aio.client import AsyncStoreClient, BatchResult
from repro.aio.loadgen import LoadReport, run_closed_loop, run_closed_loop_sync
from repro.aio.pool import AsyncStorePool
from repro.aio.server import AsyncTCPStoreServer

__all__ = [
    "AsyncStoreClient",
    "AsyncStorePool",
    "AsyncTCPStoreServer",
    "BatchResult",
    "LoadReport",
    "RetryPolicy",
    "run_closed_loop",
    "run_closed_loop_sync",
]
