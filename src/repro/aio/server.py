"""Asyncio TCP server over the transport-agnostic ``StoreServer`` engine.

One event loop multiplexes every connection; each connection carries its
own :class:`~repro.protocol.server.StoreConnection` (incremental parser +
dispatcher), so a single read that contains many pipelined commands is
answered with one coalesced write.  Backpressure comes from
``StreamWriter.drain()``: a client that stops reading suspends only its
own coroutine, never the loop.

Shutdown is graceful: stop accepting, nudge in-flight connections closed,
and wait for their handler tasks to finish.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Set, Tuple

from repro.kvstore.store import KVStore
from repro.protocol.server import StoreConnection, StoreServer

#: Per-read chunk; large enough that a deep pipeline arrives in few reads.
READ_SIZE = 65536

TOO_MANY_CONNECTIONS = b"SERVER_ERROR too many connections\r\n"


class AsyncTCPStoreServer:
    """An asyncio TCP server speaking the extended memcached protocol.

    Args:
        store: the backing :class:`KVStore` (or pass ``engine=`` to share a
            prebuilt :class:`StoreServer`, e.g. with the threaded server).
        host/port: bind address; port 0 binds an ephemeral port, exposed
            via :attr:`address` once started.
        max_connections: beyond this many concurrent connections, new
            clients get ``SERVER_ERROR too many connections`` and are
            closed (memcached's ``-c`` limit behaviour).  ``None`` = no cap.
    """

    def __init__(
        self,
        store: Optional[KVStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: Optional[int] = None,
        engine: Optional[StoreServer] = None,
    ) -> None:
        if engine is None:
            if store is None:
                raise ValueError("either store or engine is required")
            engine = StoreServer(store)
        self.engine = engine
        self._host = host
        self._port = port
        self.max_connections = max_connections
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        # -- observability -----------------------------------------------------
        self.current_connections = 0
        self.peak_connections = 0
        self.total_connections = 0
        self.rejected_connections = 0
        self.bytes_in = 0
        self.bytes_out = 0

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — the real port even when created with 0."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close connections, wait.

        Safe to call more than once.
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()
        self._writers.clear()

    async def __aenter__(self) -> "AsyncTCPStoreServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- per-connection loop ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        if (
            self.max_connections is not None
            and self.current_connections >= self.max_connections
        ):
            self.rejected_connections += 1
            try:
                writer.write(TOO_MANY_CONNECTIONS)
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            await self._close_writer(writer)
            return
        self._writers.add(writer)
        self.current_connections += 1
        self.total_connections += 1
        self.peak_connections = max(self.peak_connections, self.current_connections)
        connection = StoreConnection(self.engine)
        try:
            while connection.open:
                data = await reader.read(READ_SIZE)
                if not data:
                    break
                self.bytes_in += len(data)
                # one feed may dispatch many pipelined commands; the
                # responses come back as one coalesced buffer
                response = connection.feed(data)
                if response:
                    self.bytes_out += len(response)
                    writer.write(response)
                    # backpressure: suspend this connection (only) until the
                    # client drains its receive window
                    await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self.current_connections -= 1
            self._writers.discard(writer)
            await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
