"""Asyncio TCP server over the transport-agnostic ``StoreServer`` engine.

One event loop multiplexes every connection; each connection carries its
own :class:`~repro.protocol.server.StoreConnection` (incremental parser +
dispatcher), so a single read that contains many pipelined commands is
answered with one coalesced write.  Backpressure comes from
``StreamWriter.drain()``: a client that stops reading suspends only its
own coroutine, never the loop.

Shutdown is graceful: stop accepting, nudge in-flight connections closed,
and wait for their handler tasks to finish.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional, Set, Tuple

from repro.kvstore.store import KVStore
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import ConnectionRejectedEvent, IdleDisconnectEvent
from repro.protocol.server import StoreConnection, StoreServer
from repro.resilience.overload import OverloadPolicy

#: Per-read chunk; large enough that a deep pipeline arrives in few reads.
READ_SIZE = 65536

#: Adaptive write coalescing: responses below this skip the ``drain()``
#: handshake (it only ever blocks above the transport's high-water mark),
#: saving one coroutine hop per pipelined batch.  Undrained bytes are
#: tracked cumulatively so a client that stops reading still backpressures
#: within one cork window.
CORK_BYTES = 64 * 1024

TOO_MANY_CONNECTIONS = b"SERVER_ERROR too many connections\r\n"


class AsyncTCPStoreServer:
    """An asyncio TCP server speaking the extended memcached protocol.

    Args:
        store: the backing :class:`KVStore` (or pass ``engine=`` to share a
            prebuilt :class:`StoreServer`, e.g. with the threaded server).
        host/port: bind address; port 0 binds an ephemeral port, exposed
            via :attr:`address` once started.
        max_connections: beyond this many concurrent connections, new
            clients get ``SERVER_ERROR too many connections`` and are
            closed (memcached's ``-c`` limit behaviour).  ``None`` = no cap.
        overload: an :class:`~repro.resilience.OverloadPolicy` arming idle
            timeouts, per-batch request deadlines, and queue-depth/latency
            load shedding (``SERVER_ERROR busy``).  ``None`` (default)
            keeps the unprotected fast path byte-for-byte.
        tracer: optional :class:`~repro.obs.tracing.Tracer` forwarded to
            the protocol engine so sampled requests record server-side
            spans (see :meth:`StoreServer.dispatch`).
        accept_batch: forwarded to :class:`StoreServer` — ``False``
            emulates a pre-MGET build (compat-matrix tests).
    """

    def __init__(
        self,
        store: Optional[KVStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: Optional[int] = None,
        engine: Optional[StoreServer] = None,
        registry: Optional[MetricsRegistry] = None,
        overload: Optional[OverloadPolicy] = None,
        tracer=None,
        accept_batch: bool = True,
    ) -> None:
        if engine is None:
            if store is None:
                raise ValueError("either store or engine is required")
            engine = StoreServer(store, tracer=tracer, accept_batch=accept_batch)
        elif tracer is not None and engine.tracer is None:
            engine.tracer = tracer
        self.engine = engine
        self._host = host
        self._port = port
        self.max_connections = max_connections
        self.overload = (
            overload if overload is not None and overload.enabled else None
        )
        self._inflight = 0          # batches between read and fully-sent reply
        self._latency_ewma_us = 0.0  # smoothed per-batch dispatch latency
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        # -- observability -----------------------------------------------------
        # Connection/byte accounting lives in a metrics registry (labeled
        # transport="async").  The max_connections gate reads the current-
        # connections gauge, so when the attached registry is a no-op
        # NullRegistry a private live registry keeps the accounting real.
        base = registry if registry is not None else engine.metrics
        self.metrics = base if base.enabled else MetricsRegistry()
        self._current = self.metrics.gauge(
            "server_current_connections", help="open client connections",
            transport="async",
        )
        self._peak = self.metrics.gauge(
            "server_peak_connections", help="peak concurrent connections",
            transport="async",
        )
        self._total = self.metrics.counter(
            "server_connections_total", help="connections accepted",
            transport="async",
        )
        self._rejected = self.metrics.counter(
            "server_rejected_connections_total",
            help="connections refused over the max_connections cap",
            transport="async",
        )
        self._idle_closed = self.metrics.counter(
            "server_idle_disconnects_total",
            help="connections closed by the idle timeout",
            transport="async",
        )
        self._bytes_in = self.metrics.counter(
            "server_bytes_in_total", help="request bytes received",
            transport="async",
        )
        self._bytes_out = self.metrics.counter(
            "server_bytes_out_total", help="response bytes sent",
            transport="async",
        )

    # -- registry-backed views (the historical attribute API) -------------------

    @property
    def current_connections(self) -> int:
        return int(self._current.value)

    @property
    def peak_connections(self) -> int:
        return int(self._peak.value)

    @property
    def total_connections(self) -> int:
        return self._total.value

    @property
    def rejected_connections(self) -> int:
        return self._rejected.value

    @property
    def bytes_in(self) -> int:
        return self._bytes_in.value

    @property
    def bytes_out(self) -> int:
        return self._bytes_out.value

    @property
    def idle_disconnects(self) -> int:
        return self._idle_closed.value

    @property
    def dispatch_latency_ewma_us(self) -> float:
        """Smoothed per-batch dispatch latency (overload-protected mode)."""
        return self._latency_ewma_us

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — the real port even when created with 0."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close connections, wait.

        Safe to call more than once.
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()
        self._writers.clear()

    async def __aenter__(self) -> "AsyncTCPStoreServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- per-connection loop ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        if (
            self.max_connections is not None
            and self.current_connections >= self.max_connections
        ):
            self._rejected.inc()
            if self.engine.trace is not None:
                self.engine.trace.record(
                    ConnectionRejectedEvent(
                        current=self.current_connections,
                        limit=self.max_connections,
                    )
                )
            try:
                writer.write(TOO_MANY_CONNECTIONS)
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            await self._close_writer(writer)
            return
        self._writers.add(writer)
        self._current.inc()
        self._total.inc()
        self._peak.set(max(self._peak.value, self._current.value))
        connection = StoreConnection(self.engine)
        try:
            if self.overload is not None:
                await self._serve_protected(reader, writer, connection)
            else:
                undrained = 0
                while connection.open:
                    data = await reader.read(READ_SIZE)
                    if not data:
                        break
                    self._bytes_in.inc(len(data))
                    # one feed may dispatch many pipelined commands; the
                    # responses come back as one coalesced buffer
                    response = connection.feed(data)
                    if response:
                        self._bytes_out.inc(len(response))
                        writer.write(response)
                        # adaptive cork: small replies skip the drain
                        # handshake; backpressure (suspending only this
                        # connection) still kicks in within one cork
                        # window of unread bytes
                        undrained += len(response)
                        if undrained >= CORK_BYTES:
                            await writer.drain()
                            undrained = 0
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._current.dec()
            self._writers.discard(writer)
            await self._close_writer(writer)

    async def _serve_protected(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        connection: StoreConnection,
    ) -> None:
        """The overload-armed connection loop (self.overload is not None).

        Mirrors the fast path, adding: ``wait_for`` idle timeout around the
        read, queue-depth/latency shed decisions before dispatch (whole
        batch answered busy via ``budget=0``), a per-batch deadline budget,
        and EWMA latency tracking over the dispatch time.
        """
        policy = self.overload
        alpha = policy.latency_alpha
        while connection.open:
            if policy.idle_timeout is not None:
                try:
                    data = await asyncio.wait_for(
                        reader.read(READ_SIZE), policy.idle_timeout
                    )
                except asyncio.TimeoutError:
                    self._idle_closed.inc()
                    if self.engine.trace is not None:
                        self.engine.trace.record(
                            IdleDisconnectEvent(
                                idle_timeout=policy.idle_timeout
                            )
                        )
                    break
            else:
                data = await reader.read(READ_SIZE)
            if not data:
                break
            self._bytes_in.inc(len(data))
            budget = policy.request_deadline
            shed_reason = "deadline"
            if (
                policy.max_inflight is not None
                and self._inflight >= policy.max_inflight
            ):
                budget, shed_reason = 0.0, "queue_depth"
            elif (
                policy.shed_latency_us is not None
                and self._latency_ewma_us > policy.shed_latency_us
            ):
                budget, shed_reason = 0.0, "latency"
            self._inflight += 1
            try:
                started = time.perf_counter()
                response = connection.feed(
                    data, budget=budget, shed_reason=shed_reason
                )
                elapsed_us = (time.perf_counter() - started) * 1e6
                self._latency_ewma_us += alpha * (
                    elapsed_us - self._latency_ewma_us
                )
                if response:
                    self._bytes_out.inc(len(response))
                    writer.write(response)
                    await writer.drain()
            finally:
                self._inflight -= 1

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
