"""Asyncio TCP server on a low-level zero-copy transport.

One event loop multiplexes every connection; each connection is an
:class:`asyncio.BufferedProtocol` whose ``get_buffer()`` hands the kernel
a preallocated per-connection receive buffer.  Bytes land there and feed
the offset-cursor :class:`~repro.protocol.server.StoreConnection` parser
directly — no ``StreamReader``, no intermediate ``bytes`` object, no task
wakeup between ``recv`` and dispatch.  A read that contains many
pipelined commands is answered with one coalesced ``transport.write``;
the transport corks small writes at its own layer.

Backpressure is callback-driven instead of ``await writer.drain()``: when
a peer stops reading and the write buffer crosses the transport's
high-water mark, ``pause_writing`` fires and the connection suspends its
*own* reads (``pause_reading``), so a slow client stalls only itself —
request inflow stops, the write buffer stops growing, and ``resume_writing``
re-opens the tap once the peer drains.

Shutdown is graceful: stop accepting, close live transports, and wait for
their ``connection_lost`` callbacks.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional, Set, Tuple

from repro.kvstore.store import KVStore
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import ConnectionRejectedEvent, IdleDisconnectEvent
from repro.protocol.server import StoreConnection, StoreServer
from repro.protocol.sockopt import tune_socket
from repro.resilience.overload import OverloadPolicy

#: Per-connection receive buffer handed to the kernel via ``get_buffer``;
#: large enough that a deep pipeline arrives in few reads.
READ_SIZE = 65536

#: Default transport write high-water mark: above this many buffered
#: response bytes the connection pauses its own reads until the peer
#: drains (``pause_writing``/``resume_writing``).
WRITE_HIGH_WATER = 256 * 1024

TOO_MANY_CONNECTIONS = b"SERVER_ERROR too many connections\r\n"


class _StoreProtocol(asyncio.BufferedProtocol):
    """The unprotected fast path: recv buffer -> parser -> one write.

    Every callback here runs directly from the event loop's reader/writer
    machinery — there is no per-connection task, no coroutine scheduling
    between a ``recv`` and its dispatch, and no per-batch ``drain()``
    handshake.  That is the entire point of this class.
    """

    __slots__ = (
        "server",
        "connection",
        "transport",
        "closed",
        "write_paused",
        "_recv",
        "_recv_view",
        "_rejected",
        "_loop",
    )

    def __init__(self, server: "AsyncTCPStoreServer") -> None:
        self.server = server
        self.connection = StoreConnection(server.engine)
        self.transport: Optional[asyncio.Transport] = None
        self.closed: Optional[asyncio.Future] = None
        self.write_paused = False
        self._recv = bytearray(READ_SIZE)
        self._recv_view = memoryview(self._recv)
        self._rejected = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -------------------------------------------------------------

    def connection_made(self, transport) -> None:
        server = self.server
        self._loop = asyncio.get_event_loop()
        self.closed = self._loop.create_future()
        self.transport = transport
        tune_socket(transport.get_extra_info("socket"))
        if server.write_high_water is not None:
            transport.set_write_buffer_limits(high=server.write_high_water)
        if (
            server.max_connections is not None
            and server.current_connections >= server.max_connections
        ):
            # refused connections never enter the accounting: the reply
            # flushes from the transport buffer, then the FIN goes out
            self._rejected = True
            server._note_rejected()
            transport.write(TOO_MANY_CONNECTIONS)
            transport.close()
            return
        server._register(self)

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        if not self._rejected:
            self.server._unregister(self)
        if self.closed is not None and not self.closed.done():
            self.closed.set_result(None)

    def eof_received(self) -> bool:
        return False  # half-close = close; connection_lost follows

    # -- zero-copy receive path ------------------------------------------------

    def get_buffer(self, sizehint: int) -> memoryview:
        return self._recv_view

    def buffer_updated(self, nbytes: int) -> None:
        if self._rejected:
            return
        server = self.server
        server._bytes_in.inc(nbytes)
        try:
            # one feed may dispatch many pipelined commands; the responses
            # come back as one coalesced buffer for one transport.write
            response = self.connection.feed(self._recv_view[:nbytes])
        except ConnectionError:
            self.transport.close()
            return
        if response:
            server._bytes_out.inc(len(response))
            self.transport.write(response)
        if not self.connection.open:
            self.transport.close()

    # -- write backpressure ----------------------------------------------------

    def pause_writing(self) -> None:
        # the peer stopped reading and the write buffer crossed the
        # high-water mark: stop feeding it new requests.  Request inflow
        # halts, so the buffered backlog is bounded by what one recv's
        # worth of commands can produce plus the high-water mark itself.
        self.write_paused = True
        self.server._write_pauses.inc()
        if not self.transport.is_closing():
            self.transport.pause_reading()

    def resume_writing(self) -> None:
        self.write_paused = False
        if not self.transport.is_closing():
            self.transport.resume_reading()


class _ProtectedStoreProtocol(_StoreProtocol):
    """The overload-armed connection (``server.overload`` is set).

    Mirrors the fast path, adding: a lazily re-armed idle-timeout timer
    (one ``call_later`` outstanding per connection, re-armed on fire, not
    per read), queue-depth/latency shed decisions before dispatch (whole
    batch answered busy via ``budget=0``), a per-batch deadline budget,
    and EWMA latency tracking over the dispatch time.

    A batch counts as in-flight from the read that carried it until its
    reply is *accepted by the peer*: if the response write pauses this
    connection, the inflight slot stays held until ``resume_writing`` —
    the transport-level equivalent of the old per-batch ``drain()``, and
    what lets the queue-depth gate see clients that stop reading.
    """

    __slots__ = ("_idle_handle", "_last_activity", "_held_inflight")

    def __init__(self, server: "AsyncTCPStoreServer") -> None:
        super().__init__(server)
        self._idle_handle: Optional[asyncio.TimerHandle] = None
        self._last_activity = 0.0
        self._held_inflight = False

    def connection_made(self, transport) -> None:
        super().connection_made(transport)
        if self._rejected:
            return
        policy = self.server.overload
        if policy.idle_timeout is not None:
            self._last_activity = self._loop.time()
            self._idle_handle = self._loop.call_later(
                policy.idle_timeout, self._check_idle
            )

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        if self._idle_handle is not None:
            self._idle_handle.cancel()
            self._idle_handle = None
        if self._held_inflight:
            self._held_inflight = False
            self.server._inflight -= 1
        super().connection_lost(exc)

    def _check_idle(self) -> None:
        server = self.server
        idle_timeout = server.overload.idle_timeout
        idle = self._loop.time() - self._last_activity
        if idle < idle_timeout:
            # activity since arming: sleep out the remainder instead of
            # re-arming on every read (lazy timer, zero per-read cost)
            self._idle_handle = self._loop.call_later(
                idle_timeout - idle, self._check_idle
            )
            return
        self._idle_handle = None
        server._idle_closed.inc()
        if server.engine.trace is not None:
            server.engine.trace.record(
                IdleDisconnectEvent(idle_timeout=idle_timeout)
            )
        self.transport.close()

    def buffer_updated(self, nbytes: int) -> None:
        if self._rejected:
            return
        server = self.server
        policy = server.overload
        if self._idle_handle is not None:
            self._last_activity = self._loop.time()
        server._bytes_in.inc(nbytes)
        budget = policy.request_deadline
        shed_reason = "deadline"
        if (
            policy.max_inflight is not None
            and server._inflight >= policy.max_inflight
        ):
            budget, shed_reason = 0.0, "queue_depth"
        elif (
            policy.shed_latency_us is not None
            and server._latency_ewma_us > policy.shed_latency_us
        ):
            budget, shed_reason = 0.0, "latency"
        server._inflight += 1
        release = True
        try:
            started = time.perf_counter()
            try:
                response = self.connection.feed(
                    self._recv_view[:nbytes],
                    budget=budget,
                    shed_reason=shed_reason,
                )
            except ConnectionError:
                self.transport.close()
                return
            elapsed_us = (time.perf_counter() - started) * 1e6
            server._latency_ewma_us += policy.latency_alpha * (
                elapsed_us - server._latency_ewma_us
            )
            if response:
                server._bytes_out.inc(len(response))
                self.transport.write(response)
                if self.write_paused:
                    # peer is not accepting the reply: the batch stays
                    # in-flight until resume_writing (or connection_lost)
                    self._held_inflight = True
                    release = False
        finally:
            if release:
                server._inflight -= 1
        if not self.connection.open:
            self.transport.close()

    def resume_writing(self) -> None:
        if self._held_inflight:
            self._held_inflight = False
            self.server._inflight -= 1
        super().resume_writing()


class AsyncTCPStoreServer:
    """An asyncio TCP server speaking the extended memcached protocol.

    Args:
        store: the backing :class:`KVStore` (or pass ``engine=`` to share a
            prebuilt :class:`StoreServer`, e.g. with the threaded server).
        host/port: bind address; port 0 binds an ephemeral port, exposed
            via :attr:`address` once started.
        max_connections: beyond this many concurrent connections, new
            clients get ``SERVER_ERROR too many connections`` and are
            closed (memcached's ``-c`` limit behaviour).  ``None`` = no cap.
        overload: an :class:`~repro.resilience.OverloadPolicy` arming idle
            timeouts, per-batch request deadlines, and queue-depth/latency
            load shedding (``SERVER_ERROR busy``).  ``None`` (default)
            keeps the unprotected fast path byte-for-byte.
        tracer: optional :class:`~repro.obs.tracing.Tracer` forwarded to
            the protocol engine so sampled requests record server-side
            spans (see :meth:`StoreServer.dispatch`).
        accept_batch: forwarded to :class:`StoreServer` — ``False``
            emulates a pre-MGET build (compat-matrix tests).
        write_high_water: transport write-buffer high-water mark per
            connection; crossing it pauses that connection's reads until
            the peer drains.  ``None`` keeps asyncio's default limits.
    """

    def __init__(
        self,
        store: Optional[KVStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: Optional[int] = None,
        engine: Optional[StoreServer] = None,
        registry: Optional[MetricsRegistry] = None,
        overload: Optional[OverloadPolicy] = None,
        tracer=None,
        accept_batch: bool = True,
        write_high_water: Optional[int] = WRITE_HIGH_WATER,
    ) -> None:
        if engine is None:
            if store is None:
                raise ValueError("either store or engine is required")
            engine = StoreServer(store, tracer=tracer, accept_batch=accept_batch)
        elif tracer is not None and engine.tracer is None:
            engine.tracer = tracer
        self.engine = engine
        self._host = host
        self._port = port
        self.max_connections = max_connections
        self.write_high_water = write_high_water
        self.overload = (
            overload if overload is not None and overload.enabled else None
        )
        self._inflight = 0          # batches between read and fully-sent reply
        self._latency_ewma_us = 0.0  # smoothed per-batch dispatch latency
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_StoreProtocol] = set()
        # -- observability -----------------------------------------------------
        # Connection/byte accounting lives in a metrics registry (labeled
        # transport="async").  The max_connections gate reads the current-
        # connections gauge, so when the attached registry is a no-op
        # NullRegistry a private live registry keeps the accounting real.
        base = registry if registry is not None else engine.metrics
        self.metrics = base if base.enabled else MetricsRegistry()
        self._current = self.metrics.gauge(
            "server_current_connections", help="open client connections",
            transport="async",
        )
        self._peak = self.metrics.gauge(
            "server_peak_connections", help="peak concurrent connections",
            transport="async",
        )
        self._total = self.metrics.counter(
            "server_connections_total", help="connections accepted",
            transport="async",
        )
        self._rejected = self.metrics.counter(
            "server_rejected_connections_total",
            help="connections refused over the max_connections cap",
            transport="async",
        )
        self._idle_closed = self.metrics.counter(
            "server_idle_disconnects_total",
            help="connections closed by the idle timeout",
            transport="async",
        )
        self._bytes_in = self.metrics.counter(
            "server_bytes_in_total", help="request bytes received",
            transport="async",
        )
        self._bytes_out = self.metrics.counter(
            "server_bytes_out_total", help="response bytes sent",
            transport="async",
        )
        self._write_pauses = self.metrics.counter(
            "server_write_pauses_total",
            help="times a connection paused reads on write backpressure",
            transport="async",
        )

    # -- registry-backed views (the historical attribute API) -------------------

    @property
    def current_connections(self) -> int:
        return int(self._current.value)

    @property
    def peak_connections(self) -> int:
        return int(self._peak.value)

    @property
    def total_connections(self) -> int:
        return self._total.value

    @property
    def rejected_connections(self) -> int:
        return self._rejected.value

    @property
    def bytes_in(self) -> int:
        return self._bytes_in.value

    @property
    def bytes_out(self) -> int:
        return self._bytes_out.value

    @property
    def idle_disconnects(self) -> int:
        return self._idle_closed.value

    @property
    def write_pauses(self) -> int:
        """Times any connection hit write backpressure and paused reads."""
        return self._write_pauses.value

    @property
    def dispatch_latency_ewma_us(self) -> float:
        """Smoothed per-batch dispatch latency (overload-protected mode)."""
        return self._latency_ewma_us

    # -- connection accounting (protocol callbacks) -----------------------------

    def _register(self, protocol: _StoreProtocol) -> None:
        self._connections.add(protocol)
        self._current.inc()
        self._total.inc()
        self._peak.set(max(self._peak.value, self._current.value))

    def _unregister(self, protocol: _StoreProtocol) -> None:
        if protocol in self._connections:
            self._connections.discard(protocol)
            self._current.dec()

    def _note_rejected(self) -> None:
        self._rejected.inc()
        if self.engine.trace is not None:
            self.engine.trace.record(
                ConnectionRejectedEvent(
                    current=self.current_connections,
                    limit=self.max_connections,
                )
            )

    def _make_protocol(self) -> _StoreProtocol:
        """Protocol factory — the overload decision is made per class, so
        the unprotected fast path carries zero overload code.  Benchmarks
        override this to freeze a baseline protocol."""
        if self.overload is not None:
            return _ProtectedStoreProtocol(self)
        return _StoreProtocol(self)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        loop = asyncio.get_event_loop()
        self._server = await loop.create_server(
            self._make_protocol, self._host, self._port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — the real port even when created with 0."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close connections, wait.

        Safe to call more than once.
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        waiters = []
        for protocol in list(self._connections):
            if protocol.transport is not None:
                # abort, not close: a peer that stopped reading would
                # otherwise pin shutdown on its unflushed write buffer
                protocol.transport.abort()
            if protocol.closed is not None:
                waiters.append(protocol.closed)
        if waiters:
            await asyncio.gather(*waiters, return_exceptions=True)
        self._connections.clear()

    async def __aenter__(self) -> "AsyncTCPStoreServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()
