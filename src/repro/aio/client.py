"""Pooled, pipelining asyncio client for the extended memcached protocol.

The client keeps a bounded pool of TCP connections.  Each request checks a
connection out, writes *all* its commands in one ``send`` (pipelining),
reads the matching responses back, and returns the connection to the pool.
``get_many``/``set_many`` therefore cost one round trip regardless of key
count — the client-side half of the throughput story memcached deployments
rely on.

Each pooled connection is a low-level :class:`asyncio.BufferedProtocol`:
received bytes land in a preallocated buffer and feed the incremental
:class:`~repro.protocol.text.ResponseParser` straight from the event
loop's reader callback — no ``StreamReader``, no per-response read
coroutine.  Completion is a *future per pipeline slot*: ``execute()``
registers one future for its whole batch, writes the batch in one
transport send, and the protocol resolves the future when the last
response of the batch parses.  Deadlines are a single lazily re-armed
timer per connection (progress on the wire pushes it out) instead of an
``asyncio.wait_for`` timer per response.

Failure handling mirrors production clients: per-batch timeouts, and
transparent retry with exponential backoff + jitter on connect failures,
timeouts, and dropped connections.  A connection that failed is
discarded, never pooled again.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.aio.backoff import RetryPolicy
from repro.obs import tracing
from repro.obs.trace import key_fingerprint
from repro.protocol.commands import (
    DeleteCommand,
    DigestCommand,
    DigestResponse,
    FlushCommand,
    GetCommand,
    GetResponse,
    IncrCommand,
    KeyListCommand,
    KeyListResponse,
    MultiGetCommand,
    MultiSetCommand,
    MultiSetResponse,
    NumberResponse,
    ProtocolError,
    ServerBusyError,
    SimpleResponse,
    StatsCommand,
    StatsResponse,
    StoreCommand,
    TouchCommand,
)
from repro.resilience.breaker import BreakerOpenError, CircuitBreaker
from repro.protocol.sockopt import tune_socket
from repro.protocol.text import ResponseParser, encode_command_into

READ_SIZE = 65536

#: adaptive write coalescing: batches below this stay corked — the kernel
#: (and asyncio's transport buffer) flush them when we await the response,
#: and ``drain()`` only ever blocks above the transport's high-water mark
#: anyway, so the extra coroutine hop buys nothing for small frames
CORK_BYTES = 64 * 1024

#: the negotiation signal an old text server answers to ``mget``/``mset``
_UNKNOWN_COMMAND = b"CLIENT_ERROR unknown command"

#: Exceptions that mark a connection dead and the attempt retryable.
#: BreakerOpenError subclasses ConnectionError but is raised outside the
#: retry try-block, so it propagates without retry; ServerBusyError is a
#: ProtocolError and deliberately not retryable (see its docstring).
RETRYABLE = (ConnectionError, OSError, asyncio.TimeoutError)


def _unexpected(response, what: str) -> ProtocolError:
    """The error for a response of the wrong shape — busy-aware.

    Overload shedding answers any command with ``SERVER_ERROR busy``, so
    every "that's not the response type I sent a command for" path funnels
    through here to surface :class:`ServerBusyError` instead of a generic
    protocol error.
    """
    if isinstance(response, SimpleResponse) and response.line.startswith(
        b"SERVER_ERROR busy"
    ):
        return ServerBusyError("server is shedding load (SERVER_ERROR busy)")
    return ProtocolError(f"unexpected {what} response: {response!r}")


def _batch_summary(commands: Sequence[object]) -> Tuple[str, Optional[int]]:
    """(op label, first-key fingerprint) for span/slow-log attribution.

    Fingerprints — never raw keys — are what leave the process, matching
    the event-trace privacy stance.
    """
    first = commands[0]
    if isinstance(first, (GetCommand, MultiGetCommand)):
        op = "mget" if isinstance(first, MultiGetCommand) else "get"
        key = first.keys[0] if first.keys else None
    elif isinstance(first, MultiSetCommand):
        op = "mset"
        key = first.items[0].key if first.items else None
    else:
        op = getattr(first, "verb", None) or type(first).__name__.lower()
        key = getattr(first, "key", None)
    if len(commands) > 1:
        op = f"{op}[{len(commands)}]"
    return op, key_fingerprint(key) if key is not None else None


def _batch_shed(result: "BatchResult") -> bool:
    """Did any response in the batch come back ``SERVER_ERROR busy``?"""
    for response in result:
        if isinstance(response, SimpleResponse) and response.line.startswith(
            b"SERVER_ERROR busy"
        ):
            return True
    return False


class BatchResult:
    """Responses of one pipelined batch, in command order."""

    __slots__ = ("responses",)

    def __init__(self, responses: Sequence[object]) -> None:
        self.responses = list(responses)

    def __len__(self) -> int:
        return len(self.responses)

    def __getitem__(self, index: int):
        return self.responses[index]

    def __iter__(self):
        return iter(self.responses)


class _ClientProtocol(asyncio.BufferedProtocol):
    """The wire side of one pooled connection.

    Receive path: the kernel writes into a preallocated buffer
    (``get_buffer``), ``buffer_updated`` feeds the incremental parser and
    walks completed responses into the head pipeline slot — all inside
    the loop's reader callback, with no task wakeup per response.

    Completion: ``expect(n)`` registers ``[remaining, responses, future]``
    in a FIFO deque (one slot per pipelined batch) and returns the
    future; the slot's future resolves with the response list when its
    ``n``-th response parses.  Responses arriving with no slot registered
    belong to a batch that already timed out — the owner is discarding
    this connection, so they are dropped.

    Deadline: one lazily re-armed ``call_later`` per connection.  Every
    chunk of received bytes (and every new batch) refreshes
    ``_last_activity``; when the timer fires it either re-arms for the
    remainder or fails every pending slot with ``asyncio.TimeoutError``
    (exactly what ``wait_for`` raised, so retry accounting is unchanged)
    and aborts the transport.  Progress-based rather than per-response,
    which is both cheaper and *stricter* for stalled peers.
    """

    __slots__ = (
        "parser",
        "transport",
        "closed",
        "_loop",
        "_recv",
        "_recv_view",
        "_pending",
        "_timeout",
        "_timer",
        "_last_activity",
        "_write_paused",
        "_drain_waiters",
        "_closed_waiter",
    )

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self.parser = ResponseParser()
        self.transport: Optional[asyncio.Transport] = None
        self.closed = False
        self._loop = loop
        self._recv = bytearray(READ_SIZE)
        self._recv_view = memoryview(self._recv)
        # FIFO of [remaining, responses, future] — one slot per batch
        self._pending: Deque[list] = deque()
        self._timeout: Optional[float] = None
        self._timer: Optional[asyncio.TimerHandle] = None
        self._last_activity = 0.0
        self._write_paused = False
        self._drain_waiters: Deque[asyncio.Future] = deque()
        self._closed_waiter = loop.create_future()

    # -- lifecycle -------------------------------------------------------------

    def connection_made(self, transport) -> None:
        self.transport = transport
        tune_socket(transport.get_extra_info("socket"))

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        self.closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        error = exc if exc is not None else ConnectionError(
            "server closed the connection"
        )
        self._fail_pending(error)
        if not self._closed_waiter.done():
            self._closed_waiter.set_result(None)

    def eof_received(self) -> bool:
        return False  # server half-close = dead connection

    async def wait_closed(self) -> None:
        await self._closed_waiter

    # -- zero-copy receive path ------------------------------------------------

    def get_buffer(self, sizehint: int) -> memoryview:
        return self._recv_view

    def buffer_updated(self, nbytes: int) -> None:
        parser = self.parser
        parser.feed(self._recv_view[:nbytes])
        if self._timer is not None:
            self._last_activity = self._loop.time()
        pending = self._pending
        while True:
            try:
                response = parser.try_parse()
            except ProtocolError as exc:
                self._fail_pending(exc)
                if self.transport is not None:
                    self.transport.abort()
                return
            if response is None:
                return
            if not pending:
                # late reply for a batch that already timed out; the
                # owner discards this connection — drop it
                continue
            slot = pending[0]
            slot[1].append(response)
            slot[0] -= 1
            if slot[0] == 0:
                pending.popleft()
                future = slot[2]
                if not future.done():
                    future.set_result(slot[1])

    # -- batch registration / deadline ----------------------------------------

    def expect(self, count: int, timeout: Optional[float]) -> asyncio.Future:
        """One future for a batch of ``count`` pipelined responses."""
        if self.closed:
            raise ConnectionError("connection is closed")
        future = self._loop.create_future()
        self._pending.append([count, [], future])
        if timeout is not None:
            self._timeout = timeout
            self._last_activity = self._loop.time()
            if self._timer is None:
                self._timer = self._loop.call_later(timeout, self._check_deadline)
        return future

    def _check_deadline(self) -> None:
        if not self._pending:
            # idle between batches: disarm; the next expect() re-arms
            self._timer = None
            return
        idle = self._loop.time() - self._last_activity
        if idle < self._timeout:
            self._timer = self._loop.call_later(
                self._timeout - idle, self._check_deadline
            )
            return
        self._timer = None
        # same exception type wait_for raised, so the retry loop's
        # RETRYABLE/timeouts accounting is unchanged (asyncio.TimeoutError
        # is not builtin TimeoutError on py3.9/3.10)
        self._fail_pending(asyncio.TimeoutError())
        if self.transport is not None:
            self.transport.abort()

    def _fail_pending(self, error: BaseException) -> None:
        while self._pending:
            slot = self._pending.popleft()
            future = slot[2]
            if not future.done():
                future.set_exception(error)
        while self._drain_waiters:
            waiter = self._drain_waiters.popleft()
            if not waiter.done():
                waiter.set_exception(ConnectionError("connection is closed"))

    # -- write backpressure ----------------------------------------------------

    def pause_writing(self) -> None:
        self._write_paused = True

    def resume_writing(self) -> None:
        self._write_paused = False
        while self._drain_waiters:
            waiter = self._drain_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    async def drain(self) -> None:
        """Wait out write backpressure — only huge batches ever block."""
        if self.closed:
            raise ConnectionError("connection is closed")
        if not self._write_paused:
            return
        waiter = self._loop.create_future()
        self._drain_waiters.append(waiter)
        await waiter


class _Connection:
    """One live TCP connection: transport + protocol + encode scratch."""

    __slots__ = ("transport", "protocol", "scratch")

    def __init__(self, transport: asyncio.Transport, protocol: _ClientProtocol) -> None:
        self.transport = transport
        self.protocol = protocol
        # reusable encode buffer: the whole pipelined batch serializes into
        # it (scatter-gather style) and goes out in ONE transport write
        self.scratch = bytearray()

    async def execute(self, commands: Sequence[object], timeout: Optional[float]) -> List[object]:
        scratch = self.scratch
        del scratch[:]
        for command in commands:
            encode_command_into(scratch, command)
        # register before writing so a same-callback response can't race
        # the slot; the transport corks/coalesces the actual send
        future = self.protocol.expect(len(commands), timeout)
        self.transport.write(bytes(scratch))
        if len(scratch) >= CORK_BYTES:
            # only a payload that can cross the transport's high-water
            # mark can pause the transport; small frames never block
            await self.protocol.drain()
        return await future

    async def aclose(self) -> None:
        try:
            self.transport.close()
        except (ConnectionError, OSError):
            pass
        await self.protocol.wait_closed()


class AsyncStoreClient:
    """Async cost-aware client with a bounded connection pool.

    Args:
        host/port: server address.
        pool_size: max concurrent connections; extra requests queue.
        timeout: per-response timeout in seconds (also bounds connect).
        retry: backoff schedule for retryable failures.
        rng: randomness source for jitter (inject for determinism).
        breaker: optional per-host circuit breaker.  When it is open,
            requests fail fast with
            :class:`~repro.resilience.BreakerOpenError` — no dial, no
            backoff sleeps.  The breaker observes transport results only
            (connect failures, timeouts, drops); ``SERVER_ERROR busy``
            shedding replies do not count against it.
        tracer: optional :class:`~repro.obs.tracing.Tracer`.  Sampled
            requests record client-side spans and propagate trace context
            to the server on GET lines; slow/shed/breaker-rejected
            requests are force-sampled even when the head decision said
            no.  ``None`` (default) keeps the request path untouched.
        batching: how :meth:`get_many`/:meth:`set_many` hit the wire.
            ``"mget"`` (default) sends one first-class MGET/MSET frame and
            transparently falls back to per-key commands against an old
            server (negotiated once, cached in :attr:`batch_supported`);
            ``"get"`` sends the legacy multi-key ``get`` line; ``"none"``
            sends one frame per key — the A/B baseline the net benchmark
            measures against.
    """

    #: batching modes accepted by the constructor
    BATCHING_MODES = ("mget", "get", "none")

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        timeout: Optional[float] = 5.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        breaker: Optional[CircuitBreaker] = None,
        tracer: Optional["tracing.Tracer"] = None,
        batching: str = "mget",
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if batching not in self.BATCHING_MODES:
            raise ValueError(f"batching must be one of {self.BATCHING_MODES}")
        self.batching = batching
        #: MGET/MSET support on the far side: ``None`` until the first
        #: batched call negotiates it, then ``True``/``False`` for the
        #: client's lifetime (one probe per endpoint, not per call)
        self.batch_supported: Optional[bool] = None
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        self.tracer = tracer
        self._rng = rng if rng is not None else random.Random()
        self._idle: Deque[_Connection] = deque()
        self._slots: Optional[asyncio.Semaphore] = None
        self._closing: Optional[asyncio.Event] = None
        self._closed = False
        # -- observability -----------------------------------------------------
        self.connects = 0
        self.connect_retries = 0
        self.request_retries = 0
        self.timeouts = 0
        self.requests = 0

    def _semaphore(self) -> asyncio.Semaphore:
        # created lazily so the client can be built outside a running loop
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.pool_size)
        return self._slots

    def _closing_event(self) -> asyncio.Event:
        # lazy for the same reason as the semaphore
        if self._closing is None:
            self._closing = asyncio.Event()
        return self._closing

    # -- pool management -------------------------------------------------------

    async def _dial(self) -> _Connection:
        # single attempt; the execute() loop owns retry + backoff
        loop = asyncio.get_event_loop()
        transport, protocol = await asyncio.wait_for(
            loop.create_connection(
                lambda: _ClientProtocol(loop), self.host, self.port
            ),
            self.timeout,
        )
        self.connects += 1
        return _Connection(transport, protocol)

    async def execute(self, commands: Sequence[object]) -> BatchResult:
        """Run a pipelined batch; one response per command, in order.

        Commands must expect a reply (no ``noreply``, no ``quit``).  On a
        retryable failure the dead connection is dropped and the *whole
        batch* is retried on a fresh one — idempotent cache semantics make
        that safe the same way memcached client retries are.

        With a tracer attached, sampled batches record ``client.request``
        / ``pool.acquire`` / ``client.send_await`` spans and propagate the
        context to the server on GET lines (see :meth:`_execute_sampled`).

        Sampling is decided once per request tree: an active upstream span
        (a routed pool op) means "sampled, attach here"; the
        :data:`~repro.obs.tracing.NOT_SAMPLED` sentinel means an upstream
        sampler already declined (so this layer must not re-roll); with
        neither, this client is the root sampler.  Unsampled requests pay
        one sample-counter bump plus two ``perf_counter`` reads — all
        attribution work (fingerprints, wall-clock stamps) is deferred to
        the rare force-sample, because the paper's tail requests are
        exactly the ones a 1-in-N head sample would miss.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        if not commands:
            return BatchResult(())
        self.requests += 1
        tracer = self.tracer
        if tracer is None:
            return await self._execute(commands, None)
        upstream = tracing.CURRENT.get()
        if isinstance(upstream, tracing.Span):
            return await self._execute_sampled(commands, upstream)
        if upstream is not tracing.NOT_SAMPLED and tracer.sample():
            return await self._execute_sampled(commands, None)
        # unsampled fast path, inline so it costs no extra coroutine hop
        t0 = time.perf_counter()
        try:
            result = await self._execute(commands, None)
        except BreakerOpenError:
            self._force_sample(commands, (time.perf_counter() - t0) * 1e6,
                               "breaker_open")
            raise
        elapsed_us = (time.perf_counter() - t0) * 1e6
        if _batch_shed(result):
            self._force_sample(commands, elapsed_us, "shed")
        elif elapsed_us >= tracer.slow_threshold_us:
            self._force_sample(commands, elapsed_us, "slow")
        return result

    def _force_sample(self, commands, elapsed_us: float, reason: str) -> None:
        """Retroactively record an unsampled request that turned out to
        matter (slow / shed / breaker-rejected).  Off the fast path, so
        this is where the batch summary and wall-clock stamp get paid."""
        tracer = self.tracer
        op, key_fp = _batch_summary(commands)
        start_us = time.time_ns() // 1000 - int(elapsed_us)
        span = tracer.record_complete(
            "client.request", start_us, elapsed_us,
            forced=reason, op=op, key_fp=key_fp,
        )
        tracer.note_slow(op, elapsed_us, key_fp, span.trace_id, reason=reason)

    async def _execute_sampled(
        self, commands: Sequence[object], parent: Optional["tracing.Span"]
    ) -> BatchResult:
        """The sampled request path: record the root and hop spans."""
        tracer = self.tracer
        op, key_fp = _batch_summary(commands)
        # root sampler here => "client.request"; under a pool's root span
        # this hop is the per-node batch leg
        root = tracer.start_span(
            "client.request" if parent is None else "client.batch",
            parent=parent, op=op, ncmds=len(commands), key_fp=key_fp,
        )
        token = tracing.activate(root)
        try:
            result = await self._execute(commands, root)
            if _batch_shed(result):
                root.attrs["shed"] = True
            return result
        except BreakerOpenError:
            root.attrs["error"] = "breaker_open"
            raise
        except RETRYABLE as exc:
            root.attrs["error"] = type(exc).__name__
            raise
        finally:
            tracing.deactivate(token)
            tracer.end(root)

    async def _execute(
        self, commands: Sequence[object], root: Optional["tracing.Span"]
    ) -> BatchResult:
        """The retry loop; ``root`` (a live span) turns on span recording."""
        breaker = self.breaker
        attempt = 0
        slots = self._semaphore()
        while True:
            if breaker is not None and not breaker.allow():
                raise BreakerOpenError(
                    f"circuit open for {self.host}:{self.port}"
                )
            if root is None:
                await slots.acquire()
            else:
                acquire_span = self.tracer.start_span("pool.acquire", parent=root)
                await slots.acquire()
                self.tracer.end(acquire_span)
            connection: Optional[_Connection] = None
            try:
                connection = self._idle.popleft() if self._idle else await self._dial()
                if root is None:
                    responses = await connection.execute(commands, self.timeout)
                else:
                    # the send/await span is the server's parent: its id
                    # rides the wire, so the server hop nests right here
                    send_span = self.tracer.start_span(
                        "client.send_await", parent=root, attempt=attempt,
                    )
                    try:
                        responses = await connection.execute(
                            tracing.attach_context(commands, send_span.context()),
                            self.timeout,
                        )
                    finally:
                        self.tracer.end(send_span)
                self._idle.append(connection)
                if breaker is not None:
                    breaker.record_success()
                return BatchResult(responses)
            except RETRYABLE as exc:
                if breaker is not None:
                    breaker.record_failure()
                if isinstance(exc, asyncio.TimeoutError):
                    self.timeouts += 1
                if connection is not None:
                    await connection.aclose()
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise
                if connection is None:
                    self.connect_retries += 1
                else:
                    self.request_retries += 1
                delay = self.retry.delay_for(attempt, self._rng)
            finally:
                slots.release()
            await self._backoff_sleep(delay)

    async def _backoff_sleep(self, delay: float) -> None:
        """Sleep between retry attempts, interruptible by :meth:`aclose`.

        A plain ``asyncio.sleep`` here would let a closed client sleep
        through its backoff and redial; instead the sleep races the
        closing event and the loop re-checks ``_closed`` afterwards, so
        ``aclose()`` cuts in-flight retry loops short.
        """
        if delay > 0:
            closing = self._closing_event()
            try:
                await asyncio.wait_for(closing.wait(), delay)
            except asyncio.TimeoutError:
                pass
        if self._closed:
            raise ConnectionError("client closed during retry backoff")

    async def aclose(self) -> None:
        self._closed = True
        if self._closing is not None:
            self._closing.set()  # wake any retry loop out of its backoff
        while self._idle:
            await self._idle.popleft().aclose()

    async def __aenter__(self) -> "AsyncStoreClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- single-key commands ---------------------------------------------------

    async def get(self, key: bytes) -> Optional[bytes]:
        result = await self.execute([GetCommand(keys=(key,))])
        response = result[0]
        if not isinstance(response, GetResponse):
            raise _unexpected(response, "GET")
        return response.values[0].value if response.values else None

    async def set(
        self,
        key: bytes,
        value: bytes,
        cost: int = 0,
        exptime: float = 0,
        flags: int = 0,
        version: int = 0,
    ) -> bool:
        result = await self.execute(
            [
                StoreCommand(
                    verb="set", key=key, flags=flags, exptime=exptime,
                    value=value, cost=cost, version=version,
                )
            ]
        )
        return self._check_stored(result[0])

    async def delete(self, key: bytes) -> bool:
        result = await self.execute([DeleteCommand(key=key)])
        response = result[0]
        return isinstance(response, SimpleResponse) and response.line == b"DELETED"

    async def touch(self, key: bytes, exptime: float) -> bool:
        result = await self.execute([TouchCommand(key=key, exptime=exptime)])
        response = result[0]
        return isinstance(response, SimpleResponse) and response.line == b"TOUCHED"

    async def incr(self, key: bytes, delta: int = 1) -> Optional[int]:
        result = await self.execute([IncrCommand(key=key, delta=delta)])
        response = result[0]
        if isinstance(response, NumberResponse):
            return response.value
        if isinstance(response, SimpleResponse) and response.line == b"NOT_FOUND":
            return None
        raise _unexpected(response, "INCR")

    async def flush_all(self) -> bool:
        result = await self.execute([FlushCommand()])
        response = result[0]
        return isinstance(response, SimpleResponse) and response.line == b"OK"

    async def stats(self, subcommand: str = "") -> Dict[str, str]:
        result = await self.execute([StatsCommand(subcommand=subcommand)])
        response = result[0]
        if not isinstance(response, StatsResponse):
            raise _unexpected(response, "STATS")
        return dict(response.stats)

    async def stats_reset(self) -> bool:
        """``stats reset``: zero the server's resettable counters."""
        result = await self.execute([StatsCommand(subcommand="reset")])
        response = result[0]
        return isinstance(response, SimpleResponse) and response.line == b"RESET"

    # -- pipelined batches -----------------------------------------------------

    @staticmethod
    def _batch_refused(response) -> bool:
        """Did the server answer ``CLIENT_ERROR unknown command``?

        That is the negotiation signal from a build that predates
        MGET/MSET; the text server also closes the connection after a
        protocol error, but the reply flushes first, so the client sees
        it.  Callers must follow up with :meth:`_discard_refused` so the
        per-key replay never checks out the dead connection.
        """
        return isinstance(response, SimpleResponse) and response.line.startswith(
            _UNKNOWN_COMMAND
        )

    async def _discard_refused(self) -> None:
        """Drop idle pooled connections after a batch refusal.

        The old server closed the connection that saw the unknown
        command, and that connection was just returned to the idle pool;
        closing the idle set (a one-time negotiation event) guarantees
        the fallback replay dials fresh even under ``NO_RETRY``.
        """
        self.batch_supported = False
        while self._idle:
            await self._idle.popleft().aclose()

    async def get_many(self, keys: Sequence[bytes]) -> Dict[bytes, bytes]:
        """Multi-key GET; ``{key: value}`` of the hits.

        One MGET frame per call under ``batching="mget"`` (one parse, one
        vectored dispatch, one response encode server-side); against an
        old server the first call negotiates the fallback — per-key GET
        frames, still pipelined in one round trip — and the outcome is
        cached in :attr:`batch_supported` for the client's lifetime.
        """
        if not keys:
            return {}
        if self.batching == "mget" and self.batch_supported is not False:
            result = await self.execute([MultiGetCommand(keys=tuple(keys))])
            response = result[0]
            if isinstance(response, GetResponse):
                self.batch_supported = True
                return {v.key: v.value for v in response.values}
            if not self._batch_refused(response):
                raise _unexpected(response, "MGET")
            await self._discard_refused()
        if self.batching == "none" or (
            self.batching == "mget" and self.batch_supported is False
        ):
            # per-key frames (fallback, or the explicit A/B baseline),
            # still pipelined into one round trip
            commands = [GetCommand(keys=(key,)) for key in keys]
            result = await self.execute(commands)
            out: Dict[bytes, bytes] = {}
            for key, response in zip(keys, result):
                if not isinstance(response, GetResponse):
                    raise _unexpected(response, "GET")
                if response.values:
                    out[key] = response.values[0].value
            return out
        result = await self.execute([GetCommand(keys=tuple(keys))])
        response = result[0]
        if not isinstance(response, GetResponse):
            raise _unexpected(response, "GET")
        return {v.key: v.value for v in response.values}

    async def set_many(
        self, items: Sequence[Tuple[bytes, bytes, int]], exptime: float = 0
    ) -> int:
        """SETs of (key, value, cost[, version]) tuples; returns #stored.

        One MSET frame per call under ``batching="mget"``, with the same
        negotiated per-key fallback as :meth:`get_many`.  A 4th tuple
        element carries a replication version (0 / omitted = none).
        """
        statuses = await self.set_many_statuses(items, exptime=exptime)
        return sum(1 for status in statuses if status == b"STORED")

    async def set_many_statuses(
        self, items: Sequence[Tuple[bytes, bytes, int]], exptime: float = 0
    ) -> List[bytes]:
        """Like :meth:`set_many` but returns per-item status words.

        The replication pool needs per-key attribution, not just a count:
        ``NOT_STORED`` (a last-writer-wins reject — the replica already
        holds something *newer*, so the write is durably resolved) must
        count as an ack, while ``OOM``/``TOO_LARGE``/``ERROR`` must not.
        Statuses come back verbatim from the MSET response; the per-key
        fallback path maps each SimpleResponse line to the same
        vocabulary.
        """
        if not items:
            return []
        normalized = [
            item if len(item) == 4 else (item[0], item[1], item[2], 0)
            for item in items
        ]
        if self.batching == "mget" and self.batch_supported is not False:
            command = MultiSetCommand(
                items=tuple(
                    StoreCommand(verb="set", key=key, flags=0,
                                 exptime=exptime, value=value, cost=cost,
                                 version=version)
                    for key, value, cost, version in normalized
                )
            )
            result = await self.execute([command])
            response = result[0]
            if isinstance(response, MultiSetResponse):
                self.batch_supported = True
                if len(response.statuses) != len(items):
                    raise ProtocolError(
                        "MSET answered %d statuses for %d items"
                        % (len(response.statuses), len(items))
                    )
                return list(response.statuses)
            if not self._batch_refused(response):
                raise _unexpected(response, "MSET")
            await self._discard_refused()
        commands = [
            StoreCommand(verb="set", key=key, flags=0, exptime=exptime,
                         value=value, cost=cost, version=version)
            for key, value, cost, version in normalized
        ]
        result = await self.execute(commands)
        statuses = []
        for response in result:
            if not isinstance(response, SimpleResponse):
                raise _unexpected(response, "store")
            if response.line.startswith(b"SERVER_ERROR busy"):
                raise ServerBusyError(
                    "server is shedding load (SERVER_ERROR busy)"
                )
            if response.line == b"STORED":
                statuses.append(b"STORED")
            elif response.line == b"NOT_STORED":
                statuses.append(b"NOT_STORED")
            elif response.line.startswith(b"SERVER_ERROR object too large"):
                statuses.append(b"TOO_LARGE")
            elif response.line.startswith(b"SERVER_ERROR out of memory"):
                statuses.append(b"OOM")
            else:
                statuses.append(b"ERROR")
        return statuses

    async def digest(self, nslots: int) -> DigestResponse:
        """Anti-entropy digest: per-slot (count, hash) over live keys."""
        result = await self.execute([DigestCommand(nslots=nslots)])
        response = result[0]
        if not isinstance(response, DigestResponse):
            raise _unexpected(response, "DIGEST")
        return response

    async def key_entries(self, slot: int, nslots: int) -> KeyListResponse:
        """One digest slot's (key, version, cost, flags, exptime) entries."""
        result = await self.execute([KeyListCommand(slot=slot, nslots=nslots)])
        response = result[0]
        if not isinstance(response, KeyListResponse):
            raise _unexpected(response, "KEYS")
        return response

    @staticmethod
    def _check_stored(response) -> bool:
        if not isinstance(response, SimpleResponse):
            raise _unexpected(response, "store")
        if response.line == b"STORED":
            return True
        if response.line == b"NOT_STORED":
            return False
        if response.line.startswith(b"SERVER_ERROR busy"):
            raise ServerBusyError(
                "server is shedding load (SERVER_ERROR busy)"
            )
        raise ProtocolError(response.line.decode())
