"""Pooled, pipelining asyncio client for the extended memcached protocol.

The client keeps a bounded pool of TCP connections.  Each request checks a
connection out, writes *all* its commands in one ``send`` (pipelining),
reads the matching responses back, and returns the connection to the pool.
``get_many``/``set_many`` therefore cost one round trip regardless of key
count — the client-side half of the throughput story memcached deployments
rely on.

Failure handling mirrors production clients: per-request timeouts
(``asyncio.wait_for`` around each response), and transparent retry with
exponential backoff + jitter on connect failures, timeouts, and dropped
connections.  A connection that failed is discarded, never pooled again.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.aio.backoff import RetryPolicy
from repro.protocol.commands import (
    DeleteCommand,
    FlushCommand,
    GetCommand,
    GetResponse,
    IncrCommand,
    NumberResponse,
    ProtocolError,
    ServerBusyError,
    SimpleResponse,
    StatsCommand,
    StatsResponse,
    StoreCommand,
    TouchCommand,
)
from repro.resilience.breaker import BreakerOpenError, CircuitBreaker
from repro.protocol.text import ResponseParser, encode_command

READ_SIZE = 65536

#: Exceptions that mark a connection dead and the attempt retryable.
#: BreakerOpenError subclasses ConnectionError but is raised outside the
#: retry try-block, so it propagates without retry; ServerBusyError is a
#: ProtocolError and deliberately not retryable (see its docstring).
RETRYABLE = (ConnectionError, OSError, asyncio.TimeoutError)


def _unexpected(response, what: str) -> ProtocolError:
    """The error for a response of the wrong shape — busy-aware.

    Overload shedding answers any command with ``SERVER_ERROR busy``, so
    every "that's not the response type I sent a command for" path funnels
    through here to surface :class:`ServerBusyError` instead of a generic
    protocol error.
    """
    if isinstance(response, SimpleResponse) and response.line.startswith(
        b"SERVER_ERROR busy"
    ):
        return ServerBusyError("server is shedding load (SERVER_ERROR busy)")
    return ProtocolError(f"unexpected {what} response: {response!r}")


class BatchResult:
    """Responses of one pipelined batch, in command order."""

    __slots__ = ("responses",)

    def __init__(self, responses: Sequence[object]) -> None:
        self.responses = list(responses)

    def __len__(self) -> int:
        return len(self.responses)

    def __getitem__(self, index: int):
        return self.responses[index]

    def __iter__(self):
        return iter(self.responses)


class _Connection:
    """One live TCP connection with its incremental response parser."""

    __slots__ = ("reader", "writer", "parser")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.parser = ResponseParser()

    async def execute(self, commands: Sequence[object], timeout: Optional[float]) -> List[object]:
        payload = b"".join(encode_command(c) for c in commands)
        self.writer.write(payload)
        await self.writer.drain()
        responses = []
        for _ in commands:
            responses.append(
                await asyncio.wait_for(self._next_response(), timeout)
            )
        return responses

    async def _next_response(self):
        while True:
            response = self.parser.try_parse()
            if response is not None:
                return response
            data = await self.reader.read(READ_SIZE)
            if not data:
                raise ConnectionError("server closed the connection")
            self.parser.feed(data)

    async def aclose(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class AsyncStoreClient:
    """Async cost-aware client with a bounded connection pool.

    Args:
        host/port: server address.
        pool_size: max concurrent connections; extra requests queue.
        timeout: per-response timeout in seconds (also bounds connect).
        retry: backoff schedule for retryable failures.
        rng: randomness source for jitter (inject for determinism).
        breaker: optional per-host circuit breaker.  When it is open,
            requests fail fast with
            :class:`~repro.resilience.BreakerOpenError` — no dial, no
            backoff sleeps.  The breaker observes transport results only
            (connect failures, timeouts, drops); ``SERVER_ERROR busy``
            shedding replies do not count against it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        timeout: Optional[float] = 5.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        self._rng = rng if rng is not None else random.Random()
        self._idle: Deque[_Connection] = deque()
        self._slots: Optional[asyncio.Semaphore] = None
        self._closing: Optional[asyncio.Event] = None
        self._closed = False
        # -- observability -----------------------------------------------------
        self.connects = 0
        self.connect_retries = 0
        self.request_retries = 0
        self.timeouts = 0
        self.requests = 0

    def _semaphore(self) -> asyncio.Semaphore:
        # created lazily so the client can be built outside a running loop
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.pool_size)
        return self._slots

    def _closing_event(self) -> asyncio.Event:
        # lazy for the same reason as the semaphore
        if self._closing is None:
            self._closing = asyncio.Event()
        return self._closing

    # -- pool management -------------------------------------------------------

    async def _dial(self) -> _Connection:
        # single attempt; the execute() loop owns retry + backoff
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        self.connects += 1
        return _Connection(reader, writer)

    async def execute(self, commands: Sequence[object]) -> BatchResult:
        """Run a pipelined batch; one response per command, in order.

        Commands must expect a reply (no ``noreply``, no ``quit``).  On a
        retryable failure the dead connection is dropped and the *whole
        batch* is retried on a fresh one — idempotent cache semantics make
        that safe the same way memcached client retries are.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        if not commands:
            return BatchResult(())
        breaker = self.breaker
        self.requests += 1
        attempt = 0
        slots = self._semaphore()
        while True:
            if breaker is not None and not breaker.allow():
                raise BreakerOpenError(
                    f"circuit open for {self.host}:{self.port}"
                )
            await slots.acquire()
            connection: Optional[_Connection] = None
            try:
                connection = self._idle.popleft() if self._idle else await self._dial()
                responses = await connection.execute(commands, self.timeout)
                self._idle.append(connection)
                if breaker is not None:
                    breaker.record_success()
                return BatchResult(responses)
            except RETRYABLE as exc:
                if breaker is not None:
                    breaker.record_failure()
                if isinstance(exc, asyncio.TimeoutError):
                    self.timeouts += 1
                if connection is not None:
                    await connection.aclose()
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise
                if connection is None:
                    self.connect_retries += 1
                else:
                    self.request_retries += 1
                delay = self.retry.delay_for(attempt, self._rng)
            finally:
                slots.release()
            await self._backoff_sleep(delay)

    async def _backoff_sleep(self, delay: float) -> None:
        """Sleep between retry attempts, interruptible by :meth:`aclose`.

        A plain ``asyncio.sleep`` here would let a closed client sleep
        through its backoff and redial; instead the sleep races the
        closing event and the loop re-checks ``_closed`` afterwards, so
        ``aclose()`` cuts in-flight retry loops short.
        """
        if delay > 0:
            closing = self._closing_event()
            try:
                await asyncio.wait_for(closing.wait(), delay)
            except asyncio.TimeoutError:
                pass
        if self._closed:
            raise ConnectionError("client closed during retry backoff")

    async def aclose(self) -> None:
        self._closed = True
        if self._closing is not None:
            self._closing.set()  # wake any retry loop out of its backoff
        while self._idle:
            await self._idle.popleft().aclose()

    async def __aenter__(self) -> "AsyncStoreClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- single-key commands ---------------------------------------------------

    async def get(self, key: bytes) -> Optional[bytes]:
        result = await self.execute([GetCommand(keys=(key,))])
        response = result[0]
        if not isinstance(response, GetResponse):
            raise _unexpected(response, "GET")
        return response.values[0].value if response.values else None

    async def set(
        self,
        key: bytes,
        value: bytes,
        cost: int = 0,
        exptime: float = 0,
        flags: int = 0,
    ) -> bool:
        result = await self.execute(
            [
                StoreCommand(
                    verb="set", key=key, flags=flags, exptime=exptime,
                    value=value, cost=cost,
                )
            ]
        )
        return self._check_stored(result[0])

    async def delete(self, key: bytes) -> bool:
        result = await self.execute([DeleteCommand(key=key)])
        response = result[0]
        return isinstance(response, SimpleResponse) and response.line == b"DELETED"

    async def touch(self, key: bytes, exptime: float) -> bool:
        result = await self.execute([TouchCommand(key=key, exptime=exptime)])
        response = result[0]
        return isinstance(response, SimpleResponse) and response.line == b"TOUCHED"

    async def incr(self, key: bytes, delta: int = 1) -> Optional[int]:
        result = await self.execute([IncrCommand(key=key, delta=delta)])
        response = result[0]
        if isinstance(response, NumberResponse):
            return response.value
        if isinstance(response, SimpleResponse) and response.line == b"NOT_FOUND":
            return None
        raise _unexpected(response, "INCR")

    async def flush_all(self) -> bool:
        result = await self.execute([FlushCommand()])
        response = result[0]
        return isinstance(response, SimpleResponse) and response.line == b"OK"

    async def stats(self, subcommand: str = "") -> Dict[str, str]:
        result = await self.execute([StatsCommand(subcommand=subcommand)])
        response = result[0]
        if not isinstance(response, StatsResponse):
            raise _unexpected(response, "STATS")
        return dict(response.stats)

    async def stats_reset(self) -> bool:
        """``stats reset``: zero the server's resettable counters."""
        result = await self.execute([StatsCommand(subcommand="reset")])
        response = result[0]
        return isinstance(response, SimpleResponse) and response.line == b"RESET"

    # -- pipelined batches -----------------------------------------------------

    async def get_many(self, keys: Sequence[bytes]) -> Dict[bytes, bytes]:
        """Multi-key GET in one round trip."""
        if not keys:
            return {}
        result = await self.execute([GetCommand(keys=tuple(keys))])
        response = result[0]
        if not isinstance(response, GetResponse):
            raise _unexpected(response, "GET")
        return {v.key: v.value for v in response.values}

    async def set_many(
        self, items: Sequence[Tuple[bytes, bytes, int]], exptime: float = 0
    ) -> int:
        """Pipelined SETs of (key, value, cost) triples; returns #stored."""
        if not items:
            return 0
        commands = [
            StoreCommand(verb="set", key=key, flags=0, exptime=exptime,
                         value=value, cost=cost)
            for key, value, cost in items
        ]
        result = await self.execute(commands)
        return sum(1 for response in result if self._check_stored(response))

    @staticmethod
    def _check_stored(response) -> bool:
        if not isinstance(response, SimpleResponse):
            raise _unexpected(response, "store")
        if response.line == b"STORED":
            return True
        if response.line == b"NOT_STORED":
            return False
        if response.line.startswith(b"SERVER_ERROR busy"):
            raise ServerBusyError(
                "server is shedding load (SERVER_ERROR busy)"
            )
        raise ProtocolError(response.line.decode())
