"""Per-operation CPU cost of the replacement structures (Figures 7 and 8).

The paper's Figure 7 shows that GD-PQ's SET latency grows with the cache
size (its priority queue is O(log n)) while LRU's and GD-Wheel's stay flat,
and Figure 8 shows the matching throughput loss.  Those effects are about
the *CPU work inside the replacement structure*, not the network, so the
reproduction measures actual wall-clock time per policy operation at
several resident-item counts and feeds it into the paper's latency model:

* GET latency: the policy update happens after the response is sent
  (Section 6.4.1), so the modeled GET latency is the flat hit latency for
  every policy.
* SET latency: modeled as a fixed base service time plus the measured
  replacement-structure work for one eviction + one insertion.
* Throughput: modeled as ``1 / (base CPU + per-request policy CPU)``,
  scaled by the thread count, so a policy that costs more CPU per request
  proportionally lowers attainable throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.policy import PolicyEntry, ReplacementPolicy


@dataclass(frozen=True)
class OpCostSample:
    """Measured per-operation times (seconds) at one resident size."""

    policy: str
    resident_items: int
    touch_seconds: float
    evict_insert_seconds: float


def measure_policy_opcost(
    policy_factory: Callable[[], ReplacementPolicy],
    policy_name: str,
    resident_items: int,
    ops: int = 20_000,
    max_cost: int = 450,
    seed: int = 0,
    repeats: int = 3,
) -> OpCostSample:
    """Fill a policy to ``resident_items`` and time touches and evict+inserts.

    The mix mirrors the measurement phase: ~95% of requests only touch
    (GET hits), ~5% evict one entry and insert a new one (miss + SET).
    Each timing is the **minimum over ``repeats`` passes** — the standard
    microbenchmark defence against scheduler noise.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rng = np.random.default_rng(seed)
    policy = policy_factory()
    entries: List[PolicyEntry] = []
    costs = rng.integers(1, max_cost + 1, size=resident_items + ops * repeats)
    for i in range(resident_items):
        entry = PolicyEntry(key=i)
        policy.insert(entry, int(costs[i]))
        entries.append(entry)

    # -- touch timing --------------------------------------------------------
    touch_seconds = float("inf")
    for _ in range(repeats):
        touch_targets = rng.integers(0, resident_items, size=ops).tolist()
        started = time.perf_counter()
        for idx in touch_targets:
            policy.touch(entries[idx])
        touch_seconds = min(
            touch_seconds, (time.perf_counter() - started) / ops
        )

    # -- evict + insert timing -------------------------------------------------
    evict_insert_seconds = float("inf")
    next_key = resident_items
    for rep in range(repeats):
        replacement_entries = [
            PolicyEntry(key=next_key + i) for i in range(ops)
        ]
        next_key += ops
        base = resident_items + rep * ops
        started = time.perf_counter()
        for i, entry in enumerate(replacement_entries):
            policy.select_victim()
            policy.insert(entry, int(costs[base + i]))
        evict_insert_seconds = min(
            evict_insert_seconds, (time.perf_counter() - started) / ops
        )
    return OpCostSample(
        policy=policy_name,
        resident_items=resident_items,
        touch_seconds=touch_seconds,
        evict_insert_seconds=evict_insert_seconds,
    )


@dataclass(frozen=True)
class RequestLatencyModel:
    """Figure 7/8 modeling constants (testbed analogues, Section 6.2).

    ``base_get_us`` / ``base_set_us`` are the network + service components
    (flat across policies); ``miss_rate`` weights how often a SET-side
    eviction happens per request when modeling throughput.
    """

    base_get_us: float = 220.0
    base_set_us: float = 230.0
    threads: int = 8
    miss_rate: float = 0.05
    #: CPU available per request on the server, excluding the policy (µs).
    base_cpu_us: float = 14.0

    def get_latency_us(self, sample: OpCostSample) -> float:
        """GET latency is policy-independent (update happens post-response)."""
        return self.base_get_us

    def set_latency_us(self, sample: OpCostSample) -> float:
        return self.base_set_us + sample.evict_insert_seconds * 1e6

    def throughput_ops(self, sample: OpCostSample) -> float:
        """Attainable ops/sec given per-request CPU including policy work."""
        policy_cpu_us = (
            sample.touch_seconds * 1e6
            + self.miss_rate * sample.evict_insert_seconds * 1e6
        )
        per_request_us = self.base_cpu_us + policy_cpu_us
        return self.threads * 1e6 / per_request_us


def sweep_opcost(
    factories: Sequence,
    sizes: Sequence[int],
    ops: int = 20_000,
    seed: int = 0,
) -> List[OpCostSample]:
    """Measure every (policy, resident size) cell.

    ``factories`` is a sequence of (name, zero-arg factory) pairs.
    """
    samples = []
    for name, factory in factories:
        for size in sizes:
            samples.append(
                measure_policy_opcost(
                    factory, name, resident_items=size, ops=ops, seed=seed
                )
            )
    return samples
