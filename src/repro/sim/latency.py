"""The paper's application read-access latency model (Section 6.4.1).

There is no real database layer in the paper's evaluation either; the
authors convert costs to latency as follows:

* a GET **hit** costs the measured average GET latency, 220 µs;
* the smallest recomputation cost in the workloads (10) is *defined* to be
  twice the hit latency, 440 µs, so one unit of cost = **44 µs**;
* a GET **miss** therefore reads in ``220 µs + 44 µs × cost``.

The same constants reproduce the paper's headline numbers exactly in form:
e.g. "GD-Wheel keeps the tail latencies no larger than 1364 µs" is
``220 + 44 × 26`` — a miss at the top of the 10-30 cost band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PAPER_HIT_LATENCY_US = 220.0
PAPER_COST_UNIT_US = 44.0


@dataclass(frozen=True)
class LatencyModel:
    """Converts per-request incurred recomputation cost into read latency."""

    hit_latency_us: float = PAPER_HIT_LATENCY_US
    cost_unit_us: float = PAPER_COST_UNIT_US

    def read_latency_us(self, incurred_cost: int) -> float:
        """Latency of one read; ``incurred_cost`` is 0 for a hit."""
        return self.hit_latency_us + self.cost_unit_us * incurred_cost

    def latencies(self, incurred_costs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read_latency_us` over a request log."""
        return self.hit_latency_us + self.cost_unit_us * incurred_costs.astype(
            np.float64
        )

    def average_latency_us(self, incurred_costs: np.ndarray) -> float:
        return float(np.mean(self.latencies(incurred_costs)))

    def percentile_latency_us(self, incurred_costs: np.ndarray,
                              percentile: float = 99.0) -> float:
        return float(np.percentile(self.latencies(incurred_costs), percentile))


#: The model used throughout the experiments (the paper's constants).
PAPER_LATENCY_MODEL = LatencyModel()
