"""Simulation machinery: the YCSB-style driver, latency model, metrics,
warmup calibration, per-operation cost measurement, and result containers."""

from repro.sim.calibrate import (
    calibrate_num_keys,
    capacity_items_for,
    lru_hit_rate,
)
from repro.sim.histogram import LatencyHistogram
from repro.sim.driver import (
    DEFAULT_REQUEST_INTERVAL_S,
    PAPER_REBALANCER_CHECKS,
    SimConfig,
    estimate_capacity_items,
    make_policy_factory,
    make_rebalancer,
    resolve_num_keys,
    run_simulation,
)
from repro.sim.latency import (
    LatencyModel,
    PAPER_COST_UNIT_US,
    PAPER_HIT_LATENCY_US,
    PAPER_LATENCY_MODEL,
)
from repro.sim.metrics import (
    GroupShares,
    RequestLog,
    cost_cdf,
    normalized,
    reduction_percent,
    summarize_reductions,
)
from repro.sim.opcost import (
    OpCostSample,
    RequestLatencyModel,
    measure_policy_opcost,
    sweep_opcost,
)
from repro.sim.results import Comparison, SimResult, summarize

__all__ = [
    "Comparison",
    "DEFAULT_REQUEST_INTERVAL_S",
    "GroupShares",
    "LatencyHistogram",
    "LatencyModel",
    "OpCostSample",
    "PAPER_COST_UNIT_US",
    "PAPER_HIT_LATENCY_US",
    "PAPER_LATENCY_MODEL",
    "PAPER_REBALANCER_CHECKS",
    "RequestLatencyModel",
    "RequestLog",
    "SimConfig",
    "SimResult",
    "calibrate_num_keys",
    "capacity_items_for",
    "cost_cdf",
    "estimate_capacity_items",
    "lru_hit_rate",
    "make_policy_factory",
    "make_rebalancer",
    "measure_policy_opcost",
    "normalized",
    "reduction_percent",
    "resolve_num_keys",
    "run_simulation",
    "summarize",
    "summarize_reductions",
    "sweep_opcost",
]
