"""Log-bucketed latency histogram — now the shared :mod:`repro.obs` one.

The implementation moved to :mod:`repro.obs.histogram` when the metrics
registry grew latency histograms of its own; the simulation harness and
the live servers record into the *same* bounded-relative-error structure
(HdrHistogram-style log buckets), so sim percentiles and ``stats metrics``
percentiles are directly comparable.  This module keeps the historical
import path and name alive.
"""

from __future__ import annotations

from repro.obs.histogram import BoundedHistogram, LatencyHistogram

__all__ = ["BoundedHistogram", "LatencyHistogram"]
