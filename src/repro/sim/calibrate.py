"""Warmup calibration: pick the key-universe size for a target LRU hit rate.

The paper "controlled the number of SET requests in the warmup phase to
keep the hit rate during the measurement phase at about 95% for LRU"
(Section 6.2), aiming at the ~5% capacity-miss rate seen at Facebook.  In
this reproduction the equivalent knob is the ratio of key-universe size to
cache capacity: the warmup loads the whole universe in random order (so
residency is uncorrelated with popularity), the cache retains a
capacity-sized subset, and the Zipf skew plus that ratio determine the LRU
hit rate.

:func:`calibrate_num_keys` binary-searches the universe size using a fast
key-level LRU simulation (an ``OrderedDict``; no slab machinery needed —
all single-size items behave identically), and results are memoized per
geometry so a workload suite calibrates once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from repro.workloads.zipf import ZipfSampler


def lru_hit_rate(
    num_keys: int,
    capacity_items: int,
    theta: float,
    sample_requests: int = 150_000,
    seed: int = 7,
) -> float:
    """Measured LRU hit rate for a Zipf stream after a full-universe warmup."""
    if capacity_items < 1:
        raise ValueError("capacity_items must be >= 1")
    if num_keys <= capacity_items:
        return 1.0
    sampler = ZipfSampler(num_keys, theta=theta, seed=seed)
    # Warmup: the cache ends up holding a uniformly random capacity-sized
    # subset of the universe (mirror of the driver's warmup_order SETs).
    import numpy as np

    warm = np.random.default_rng(seed + 1).permutation(num_keys)[-capacity_items:]
    cache: "OrderedDict[int, None]" = OrderedDict((int(k), None) for k in warm)
    # Popularity must be decorrelated from id, like Workload's permutation.
    rank_to_key = np.random.default_rng(seed + 2).permutation(num_keys)
    requests = rank_to_key[sampler.sample(sample_requests)]
    hits = 0
    for key in requests.tolist():
        if key in cache:
            hits += 1
            cache.move_to_end(key)
        else:
            if len(cache) >= capacity_items:
                cache.popitem(last=False)
            cache[key] = None
    return hits / sample_requests


_CALIBRATION_CACHE: Dict[Tuple[int, float, float, int], int] = {}


def calibrate_num_keys(
    capacity_items: int,
    theta: float,
    target_hit_rate: float = 0.95,
    tolerance: float = 0.005,
    sample_requests: int = 150_000,
    seed: int = 7,
) -> int:
    """Universe size whose LRU hit rate lands within tolerance of the target.

    Monotonic: a larger universe means a lower hit rate.  Memoized on
    (capacity, theta, target, seed).
    """
    if not 0.0 < target_hit_rate < 1.0:
        raise ValueError("target_hit_rate must be in (0, 1)")
    cache_key = (capacity_items, theta, target_hit_rate, seed)
    cached = _CALIBRATION_CACHE.get(cache_key)
    if cached is not None:
        return cached
    lo = capacity_items + 1
    hi = capacity_items * 2
    # grow hi until the hit rate drops below target
    while lru_hit_rate(hi, capacity_items, theta, sample_requests, seed) > target_hit_rate:
        hi *= 2
        if hi > capacity_items * 1024:
            break
    best = hi
    while lo < hi:
        mid = (lo + hi) // 2
        rate = lru_hit_rate(mid, capacity_items, theta, sample_requests, seed)
        if abs(rate - target_hit_rate) <= tolerance:
            best = mid
            break
        if rate > target_hit_rate:
            lo = mid + 1
        else:
            best = mid
            hi = mid
    _CALIBRATION_CACHE[cache_key] = best
    return best


def capacity_items_for(
    memory_limit: int,
    slab_size: int,
    chunk_size: int,
) -> int:
    """How many equal-chunk items a store of this geometry can hold."""
    slabs = memory_limit // slab_size
    return slabs * (slab_size // chunk_size)
