"""The warmup + measurement driver — the reproduction's YCSB client loop.

One :func:`run_simulation` call is one of the paper's experiment cells:
build the store with a chosen replacement policy and rebalancer, load the
key universe (warmup phase, uncounted), then issue Zipf-distributed GETs;
every miss recomputes (accrues the key's cost) and SETs the value back with
its cost attached — the cache-aside loop of Figure 1 (Section 6.2).

The universe size is calibrated so that *LRU* sees roughly a 95% hit rate,
mirroring the paper's warmup control and Facebook's ~5% capacity-miss rate;
all policies then run with the identical universe, costs, and request
stream for a fair comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core import (
    CAMPPolicy,
    ClockPolicy,
    GDPQPolicy,
    GDSFPolicy,
    GDSPolicy,
    GDWheelPolicy,
    LRUKPolicy,
    LRUPolicy,
    NaiveGreedyDual,
    RandomPolicy,
    ReplacementPolicy,
)
from repro.kvstore import (
    CostAwareRebalancer,
    ITEM_HEADER_SIZE,
    KVStore,
    NullRebalancer,
    OriginalRebalancer,
    Rebalancer,
    SimClock,
)
from repro.obs.reporter import diff_snapshots
from repro.sim.calibrate import calibrate_num_keys, capacity_items_for
from repro.sim.metrics import RequestLog
from repro.sim.results import SimResult
from repro.workloads.ycsb import Workload, WorkloadSpec

#: Mean service time per request on the simulated clock; 50k req/s is the
#: order of magnitude Atikoglu et al. report for Facebook's general pool.
DEFAULT_REQUEST_INTERVAL_S = 1.0 / 50_000

#: The paper's measurement phase spans about 30 minutes of wall time, i.e.
#: ~180 ten-second rebalancer checks; the original rebalancer's cadence is
#: scaled so the checks-per-request ratio is preserved at simulation scale.
PAPER_REBALANCER_CHECKS = 180


@dataclass
class SimConfig:
    """Parameters of one simulation run."""

    spec: WorkloadSpec
    policy: str = "lru"
    rebalancer: str = "none"
    memory_limit: int = 32 * 1024 * 1024
    slab_size: int = 64 * 1024
    num_requests: int = 300_000
    #: key-universe size; None = calibrate for ``target_hit_rate`` under LRU
    num_keys: Optional[int] = None
    target_hit_rate: float = 0.95
    seed: int = 0
    request_interval_s: float = DEFAULT_REQUEST_INTERVAL_S
    policy_kwargs: Dict = field(default_factory=dict)
    rebalancer_kwargs: Dict = field(default_factory=dict)
    #: flash-tier capacity in bytes; 0 (the default) = no tier, and the
    #: request loop stays on the PR 5 single-tier hot path
    tier_bytes: int = 0
    tier_segment_bytes: int = 64 * 1024
    #: tier directory; None = a temporary directory deleted after the run
    tier_dir: Optional[str] = None


def make_policy_factory(
    name: str, capacity_items: int, max_cost: int, **kwargs
) -> Callable[[], ReplacementPolicy]:
    """Per-slab-class policy factory for the driver's policy names."""
    if name == "lru":
        return lambda: LRUPolicy(**kwargs)
    if name == "clock":
        return lambda: ClockPolicy(**kwargs)
    if name == "random":
        return lambda: RandomPolicy(**kwargs)
    if name == "gd-wheel":
        options = {"num_queues": 256, "num_wheels": 2}
        options.update(kwargs)
        wheel_capacity = options["num_queues"] ** options["num_wheels"] - 1
        if max_cost > wheel_capacity:
            raise ValueError(
                f"workload max cost {max_cost} exceeds wheel capacity "
                f"{wheel_capacity}; widen num_queues/num_wheels"
            )
        return lambda: GDWheelPolicy(**options)
    if name == "gd-pq":
        return lambda: GDPQPolicy(**kwargs)
    if name == "gd-naive":
        return lambda: NaiveGreedyDual(**kwargs)
    if name == "gds":
        return lambda: GDSPolicy(**kwargs)
    if name == "gdsf":
        return lambda: GDSFPolicy(**kwargs)
    if name == "camp":
        return lambda: CAMPPolicy(**kwargs)
    if name == "lru-k":
        return lambda: LRUKPolicy(**kwargs)
    if name == "2q":
        from repro.core import TwoQPolicy

        return lambda: TwoQPolicy(capacity=max(capacity_items, 1), **kwargs)
    if name == "arc":
        from repro.core import ARCPolicy

        return lambda: ARCPolicy(capacity=max(capacity_items, 1), **kwargs)
    raise ValueError(f"unknown policy {name!r}")


def make_rebalancer(name: str, measurement_seconds: float, **kwargs) -> Rebalancer:
    if name == "none":
        return NullRebalancer()
    if name == "original":
        options = {"check_interval": measurement_seconds / PAPER_REBALANCER_CHECKS}
        options.update(kwargs)
        return OriginalRebalancer(**options)
    if name == "cost-aware":
        return CostAwareRebalancer(**kwargs)
    raise ValueError(f"unknown rebalancer {name!r}")


def estimate_capacity_items(config: SimConfig, workload_probe: Workload) -> int:
    """Items the store can hold, given the workload's footprint mix.

    Exact for single-size workloads (one slab class); for multi-size
    workloads it uses the mix-weighted chunk size, which is accurate enough
    for warmup calibration.
    """
    from repro.kvstore.slab import SlabAllocator

    allocator = SlabAllocator(
        memory_limit=config.memory_limit, slab_size=config.slab_size
    )
    sizes = workload_probe.value_sizes
    import numpy as np

    unique, counts = np.unique(sizes, return_counts=True)
    total_weight = counts.sum()
    inv_chunk = 0.0
    for size, count in zip(unique, counts):
        footprint = ITEM_HEADER_SIZE + config.spec.key_size + int(size)
        chunk = allocator.class_for_size(footprint).chunk_size
        inv_chunk += (count / total_weight) / chunk
    avg_chunk = 1.0 / inv_chunk
    slabs = config.memory_limit // config.slab_size
    return int(slabs * config.slab_size / avg_chunk)


def resolve_num_keys(config: SimConfig) -> int:
    """The configured universe size, calibrating if unset."""
    if config.num_keys is not None:
        return config.num_keys
    probe = config.spec.materialize(num_keys=1024, seed=config.seed)
    capacity = estimate_capacity_items(config, probe)
    return calibrate_num_keys(
        capacity_items=capacity,
        theta=config.spec.theta,
        target_hit_rate=config.target_hit_rate,
    )


def run_simulation(config: SimConfig) -> SimResult:
    """Warmup, measure, and summarize one experiment cell.

    The request loop is batched: key ids are pre-sampled in one vectorized
    draw, and key bytes / costs / values are consumed from per-key tables
    materialized by the :class:`~repro.workloads.ycsb.Workload`, so each
    request costs a few list indexes plus the store call itself — no
    per-request method dispatch, numpy scalar conversion, or string
    formatting.  With no time-triggered machinery installed (no rebalancer
    cadence to honour, and the driver never sets expiries), the simulated
    clock is advanced once per run instead of once per request; results
    are byte-identical either way, which
    ``benchmarks/run_sim_bench.py`` asserts against the frozen copy of
    the per-request loop.
    """
    started = time.perf_counter()
    num_keys = resolve_num_keys(config)
    workload = config.spec.materialize(num_keys=num_keys, seed=config.seed)
    probe_capacity = estimate_capacity_items(config, workload)

    clock = SimClock()
    measurement_seconds = config.num_requests * config.request_interval_s
    policy_factory = make_policy_factory(
        config.policy, probe_capacity, workload.max_cost(), **config.policy_kwargs
    )
    rebalancer = make_rebalancer(
        config.rebalancer, measurement_seconds, **config.rebalancer_kwargs
    )
    tier = None
    tier_tmpdir = None
    if config.tier_bytes > 0:
        import tempfile

        from repro.tier import FlashTier, TierConfig

        tier_path = config.tier_dir
        if tier_path is None:
            tier_tmpdir = tempfile.TemporaryDirectory(prefix="repro-tier-")
            tier_path = tier_tmpdir.name
        tier = FlashTier(
            tier_path,
            TierConfig(
                capacity_bytes=config.tier_bytes,
                segment_bytes=config.tier_segment_bytes,
            ),
            clock=clock,
        )
    store = KVStore(
        memory_limit=config.memory_limit,
        policy_factory=policy_factory,
        rebalancer=rebalancer,
        slab_size=config.slab_size,
        clock=clock,
        hash_power=14,
        hash_func=hash,  # layout-only choice; FNV is 20x slower in Python
        tier=tier,
    )

    dt = config.request_interval_s
    keys = workload.key_list()
    costs = workload.cost_list()
    values = workload.value_list()
    # Only a time-triggered rebalancer observes *when* the clock moves; the
    # driver stores nothing with an expiry, so under the NullRebalancer the
    # clock can advance in one batched step per phase without changing a
    # single eviction decision or reported stat.
    stepwise_clock = type(rebalancer) is not NullRebalancer
    advance = clock.advance
    get = store.get
    set_ = store.set

    # --- warmup phase: load the whole universe in seeded random order ----------
    warmup_ids = workload.warmup_order(seed=config.seed + 101).tolist()
    if stepwise_clock:
        for key_id in warmup_ids:
            advance(dt)
            set_(keys[key_id], values[key_id], cost=costs[key_id])
    else:
        for key_id in warmup_ids:
            set_(keys[key_id], values[key_id], cost=costs[key_id])
        advance(dt * len(warmup_ids))

    # Warmup cold misses and eviction churn are excluded from the reported
    # store stats, as in the paper; diff against this snapshot at the end.
    warmup_stats = store.stats.snapshot()

    # --- measurement phase: Zipf GETs; miss -> recompute + SET ----------------
    request_ids = workload.sample_requests(config.num_requests).tolist()
    miss_costs: list = []
    record_miss = miss_costs.append
    if stepwise_clock:
        for key_id in request_ids:
            advance(dt)
            key = keys[key_id]
            if get(key) is None:
                cost = costs[key_id]
                record_miss(cost)
                set_(key, values[key_id], cost=cost)
    else:
        for key_id in request_ids:
            key = keys[key_id]
            if get(key) is None:
                cost = costs[key_id]
                record_miss(cost)
                set_(key, values[key_id], cost=cost)
        advance(dt * len(request_ids))
    log = RequestLog.from_misses(config.num_requests, miss_costs)

    store.check_invariants()
    tier_stats: Dict = {}
    if tier is not None:
        tier_stats = tier.snapshot()
        tier.close()
        if tier_tmpdir is not None:
            tier_tmpdir.cleanup()
    # one snapshot-diff code path for the whole repo (repro.obs.reporter)
    measured_stats = diff_snapshots(warmup_stats, store.stats.snapshot())
    return SimResult(
        workload_id=config.spec.workload_id,
        workload_name=config.spec.name,
        policy=config.policy,
        rebalancer=config.rebalancer,
        num_keys=num_keys,
        num_requests=config.num_requests,
        capacity_items=probe_capacity,
        hit_rate=log.hit_rate,
        total_recomputation_cost=log.total_recomputation_cost,
        average_latency_us=log.average_latency_us(),
        p99_latency_us=log.percentile_latency_us(99.0),
        miss_costs=log.miss_costs(),
        store_stats=measured_stats,
        class_stats=[vars(cs) for cs in store.class_stats()],
        wall_seconds=time.perf_counter() - started,
        tier_stats=tier_stats,
    )
