"""Result containers for simulation runs and cross-run comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.latency import LatencyModel, PAPER_LATENCY_MODEL
from repro.sim.metrics import normalized, reduction_percent


@dataclass
class SimResult:
    """Everything one warmup+measurement run produces."""

    workload_id: str
    workload_name: str
    policy: str
    rebalancer: str
    num_keys: int
    num_requests: int
    capacity_items: int
    hit_rate: float
    total_recomputation_cost: int
    average_latency_us: float
    p99_latency_us: float
    miss_costs: np.ndarray
    store_stats: Dict[str, int]
    class_stats: List[dict] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: flash-tier snapshot from the end of the run ({} when tier disabled)
    tier_stats: Dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        reb = "" if self.rebalancer == "none" else f"+{self.rebalancer}"
        return f"{self.policy}{reb}"

    def to_dict(self) -> dict:
        """JSON-friendly summary (drops the raw miss-cost array)."""
        return {
            "workload_id": self.workload_id,
            "workload_name": self.workload_name,
            "policy": self.policy,
            "rebalancer": self.rebalancer,
            "num_keys": self.num_keys,
            "num_requests": self.num_requests,
            "capacity_items": self.capacity_items,
            "hit_rate": self.hit_rate,
            "total_recomputation_cost": self.total_recomputation_cost,
            "average_latency_us": self.average_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "misses": int(len(self.miss_costs)),
            "store_stats": self.store_stats,
            "wall_seconds": self.wall_seconds,
            "tier_stats": self.tier_stats,
        }


@dataclass(frozen=True)
class Comparison:
    """A baseline-vs-candidate pairing for one workload (paper's framing)."""

    workload_id: str
    workload_name: str
    baseline: SimResult
    candidate: SimResult

    @property
    def latency_reduction_pct(self) -> float:
        return reduction_percent(
            self.baseline.average_latency_us, self.candidate.average_latency_us
        )

    @property
    def tail_reduction_pct(self) -> float:
        return reduction_percent(
            self.baseline.p99_latency_us, self.candidate.p99_latency_us
        )

    @property
    def cost_reduction_pct(self) -> float:
        return reduction_percent(
            self.baseline.total_recomputation_cost,
            self.candidate.total_recomputation_cost,
        )

    @property
    def normalized_cost(self) -> float:
        """Figure 10/14 representation: LRU = 100."""
        return normalized(
            self.baseline.total_recomputation_cost,
            self.candidate.total_recomputation_cost,
        )

    @property
    def hit_rate_delta_pct(self) -> float:
        """Absolute hit-rate difference in percentage points (E-HIT)."""
        return 100.0 * abs(self.baseline.hit_rate - self.candidate.hit_rate)


def summarize(comparisons: List[Comparison]) -> Dict[str, Dict[str, float]]:
    """Table 4 style: avg and max reductions over a comparison set."""
    if not comparisons:
        return {}
    lat = [c.latency_reduction_pct for c in comparisons]
    tail = [c.tail_reduction_pct for c in comparisons]
    cost = [c.cost_reduction_pct for c in comparisons]
    return {
        "avg_read_latency": {"avg": float(np.mean(lat)), "max": float(np.max(lat))},
        "tail_read_latency": {"avg": float(np.mean(tail)), "max": float(np.max(tail))},
        "total_recomputation_cost": {
            "avg": float(np.mean(cost)),
            "max": float(np.max(cost)),
        },
    }
