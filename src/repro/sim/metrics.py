"""Per-run measurement: request logs, percentiles, and cost CDFs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.latency import LatencyModel, PAPER_LATENCY_MODEL


class RequestLog:
    """Records the incurred recomputation cost of every measured request.

    A hit incurs cost 0; a miss incurs the key's recomputation cost.  The
    log is a preallocated numpy array, so recording is O(1) per request and
    all statistics are vectorized afterwards.

    The batched driver loop does not call :meth:`record_hit` /
    :meth:`record_miss` per request; it accumulates the miss costs in
    request order and builds the log in one shot via :meth:`from_misses`.
    """

    __slots__ = ("_incurred", "_missed", "_pos")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._incurred = np.zeros(capacity, dtype=np.int64)
        self._missed = np.zeros(capacity, dtype=bool)
        self._pos = 0

    @classmethod
    def from_misses(cls, num_requests: int, miss_costs: Sequence[int]) -> "RequestLog":
        """Build a full log from the miss costs of ``num_requests`` requests.

        ``miss_costs`` must be in request order.  Miss *positions* are not
        retained (the misses occupy the first slots): every derived
        statistic — hit rate, totals, :meth:`miss_costs`, and the
        order-free latency aggregates — is identical to a log recorded
        request by request.
        """
        misses = len(miss_costs)
        if misses > num_requests:
            raise ValueError(
                f"{misses} misses exceed {num_requests} requests"
            )
        log = cls(num_requests)
        if misses:
            log._incurred[:misses] = np.asarray(miss_costs, dtype=np.int64)
            log._missed[:misses] = True
        log._pos = num_requests
        return log

    def record_hit(self) -> None:
        self._pos += 1

    def record_miss(self, cost: int) -> None:
        self._incurred[self._pos] = cost
        self._missed[self._pos] = True
        self._pos += 1

    def __len__(self) -> int:
        return self._pos

    @property
    def incurred_costs(self) -> np.ndarray:
        """Incurred cost per request (0 for hits), trimmed to length."""
        return self._incurred[: self._pos]

    @property
    def miss_mask(self) -> np.ndarray:
        return self._missed[: self._pos]

    @property
    def hits(self) -> int:
        return self._pos - int(self._missed[: self._pos].sum())

    @property
    def misses(self) -> int:
        return int(self._missed[: self._pos].sum())

    @property
    def hit_rate(self) -> float:
        return self.hits / self._pos if self._pos else 0.0

    @property
    def total_recomputation_cost(self) -> int:
        """The paper's headline metric: sum of all incurred miss costs."""
        return int(self.incurred_costs.sum())

    def miss_costs(self) -> np.ndarray:
        """Costs of the missed requests only (Figure 12's population)."""
        return self._incurred[: self._pos][self._missed[: self._pos]]

    # -- latency statistics (Figures 9, 11, 13, 15) -------------------------------

    def average_latency_us(self, model: LatencyModel = PAPER_LATENCY_MODEL) -> float:
        return model.average_latency_us(self.incurred_costs)

    def percentile_latency_us(self, percentile: float = 99.0,
                              model: LatencyModel = PAPER_LATENCY_MODEL) -> float:
        return model.percentile_latency_us(self.incurred_costs, percentile)


def cost_cdf(costs: np.ndarray, points: int = 200) -> List[Tuple[float, float]]:
    """The empirical CDF of ``costs`` as (cost, fraction <= cost) pairs.

    Figure 12 plots this for the miss population of the baseline workload.
    """
    if len(costs) == 0:
        return []
    ordered = np.sort(costs)
    n = len(ordered)
    if n <= points:
        xs = ordered
        ys = (np.arange(1, n + 1)) / n
    else:
        idx = np.linspace(0, n - 1, points).astype(np.int64)
        xs = ordered[idx]
        ys = (idx + 1) / n
    return [(float(x), float(y)) for x, y in zip(xs, ys)]


@dataclass(frozen=True)
class GroupShares:
    """Fraction of misses falling in each cost band (Figure 12 summary)."""

    shares: Tuple[float, ...]

    @classmethod
    def from_misses(cls, miss_costs: np.ndarray,
                    bounds: Tuple[Tuple[int, int], ...]) -> "GroupShares":
        total = len(miss_costs)
        if total == 0:
            return cls(shares=tuple(0.0 for _ in bounds))
        shares = []
        for low, high in bounds:
            in_band = np.count_nonzero((miss_costs >= low) & (miss_costs <= high))
            shares.append(in_band / total)
        return cls(shares=tuple(shares))


def reduction_percent(baseline: float, improved: float) -> float:
    """The paper's "reduces X by N%" arithmetic (guarding zero baselines)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def normalized(baseline: float, value: float) -> float:
    """Figure 10/14 normalization: baseline = 100."""
    if baseline == 0:
        return 100.0 if value == 0 else float("inf")
    return 100.0 * value / baseline


def summarize_reductions(pairs: Dict[str, Tuple[float, float]]) -> Dict[str, float]:
    """avg/max reduction over {label: (baseline, improved)} (Table 4 rows)."""
    reductions = [reduction_percent(b, i) for b, i in pairs.values()]
    if not reductions:
        return {"avg": 0.0, "max": 0.0}
    return {"avg": float(np.mean(reductions)), "max": float(np.max(reductions))}
