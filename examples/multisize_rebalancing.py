#!/usr/bin/env python
"""Slab rebalancing in action: multi-size workload, three configurations.

Reproduces Section 6.4.2's setup as a runnable demo: key-value pairs come
in three sizes (192/256/320-byte values) tied to three cost bands, so each
band lives in its own slab class.  The demo runs the same stream under:

* LRU with memcached's original rebalancer,
* GD-Wheel with the original rebalancer, and
* GD-Wheel with the paper's cost-aware rebalancer,

then prints the per-class slab layout and the total recomputation cost of
each configuration.  Watch the original rebalancer move zero slabs (no
class ever has a zero-eviction window) while the cost-aware one shifts
memory toward the expensive classes.

Run: ``python examples/multisize_rebalancing.py``
"""

from __future__ import annotations

from repro.experiments.scales import SMALL
from repro.experiments.multi_size import CONFIGURATIONS
from repro.sim.driver import SimConfig, run_simulation
from repro.workloads import MULTI_SIZE_WORKLOADS


def main() -> None:
    spec = MULTI_SIZE_WORKLOADS["3"]  # TPC-W: 25% of keys in the 350-450 band
    print(f"workload: {spec.name} (multi-size, {spec.costs.name} costs)\n")
    baseline_cost = None
    for label, policy, rebalancer in CONFIGURATIONS:
        result = run_simulation(
            SimConfig(
                spec=spec,
                policy=policy,
                rebalancer=rebalancer,
                memory_limit=SMALL.memory_limit,
                slab_size=SMALL.slab_size,
                num_requests=SMALL.num_requests,
            )
        )
        if baseline_cost is None:
            baseline_cost = result.total_recomputation_cost
        norm = 100.0 * result.total_recomputation_cost / baseline_cost
        print(f"{label}:")
        print(
            f"  hit rate {result.hit_rate * 100:5.2f}%   "
            f"recomputation cost {result.total_recomputation_cost:>10,} "
            f"(normalized {norm:5.1f})   "
            f"slab moves {result.store_stats['slab_moves']}"
        )
        for cs in result.class_stats:
            print(
                f"    class {cs['class_id']:>2} "
                f"chunk {cs['chunk_size']:>4}B  "
                f"slabs {cs['num_slabs']:>3}  "
                f"items {cs['live_items']:>6}  "
                f"evictions {cs['evictions']:>7}  "
                f"avg cost/byte {cs['average_cost_per_byte']:.3f}"
            )
        print()


if __name__ == "__main__":
    main()
