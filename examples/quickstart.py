#!/usr/bin/env python
"""Quickstart: a cost-aware cache in a dozen lines.

Builds a small GD-Wheel-backed store, fills it past capacity with a mix of
cheap and expensive items, and shows the policy's defining behaviour: under
memory pressure the *cheap* items are sacrificed and the expensive ones
survive, while plain LRU evicts whatever is oldest regardless of cost.

Run: ``python examples/quickstart.py``
"""

from repro import GDWheelPolicy, KVStore, LRUPolicy


def fill_and_pressure(policy_factory):
    """Fill a 1-slab-class store beyond capacity; return surviving costs."""
    store = KVStore(
        memory_limit=256 * 1024,
        slab_size=64 * 1024,
        policy_factory=policy_factory,
    )
    # Insert 2000 same-sized items, alternating cheap (cost 10) and
    # expensive (cost 400); capacity holds only a fraction of them.
    for i in range(2000):
        cost = 400 if i % 2 else 10
        store.set(f"key-{i}".encode(), b"x" * 200, cost=cost)
    survivors = [item.cost for item in store.hashtable.items()]
    return store, survivors


def main() -> None:
    for name, factory in (("LRU", LRUPolicy), ("GD-Wheel", GDWheelPolicy)):
        store, survivors = fill_and_pressure(factory)
        expensive = sum(1 for c in survivors if c == 400)
        print(
            f"{name:>8}: {len(survivors)} items survive, "
            f"{expensive} expensive / {len(survivors) - expensive} cheap "
            f"({store.stats.evictions} evictions)"
        )
    print()
    print("GD-Wheel keeps the costly items; LRU is oblivious to cost.")


if __name__ == "__main__":
    main()
