#!/usr/bin/env python
"""Policy playground: every policy in the zoo over one identical trace.

Feeds the same Zipf request trace (baseline workload costs) through every
replacement policy in the registry — cost-aware and cost-oblivious — plus
the offline clairvoyant bounds, and prints hit rate vs total recomputation
cost.  The punchline the paper's related-work section hints at: policies
that maximize *hit rate* (2Q, ARC, even Belady's optimal) do not minimize
*cost*; the GreedyDual family trades a sliver of hit rate for most of the
cost.

Run: ``python examples/policy_playground.py``
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core import (
    ARCPolicy,
    CAMPPolicy,
    ClockPolicy,
    GDPQPolicy,
    GDSFPolicy,
    GDSPolicy,
    GDWheelPolicy,
    LRUKPolicy,
    LRUPolicy,
    PolicyEntry,
    RandomPolicy,
    TwoQPolicy,
    simulate_belady,
    simulate_cost_aware_offline,
)
from repro.workloads import SINGLE_SIZE_WORKLOADS, Trace

CAPACITY = 3_000  # cached entries
NUM_KEYS = 12_000
NUM_REQUESTS = 120_000


def run_policy(policy, trace: Trace) -> Tuple[float, int]:
    """Key-level cache simulation: returns (hit_rate, total_miss_cost)."""
    cached: Dict[int, PolicyEntry] = {}
    hits = total_cost = 0
    for key_id, cost, size in trace:
        entry = cached.get(key_id)
        if entry is not None:
            hits += 1
            policy.touch(entry)
            continue
        total_cost += cost
        if len(cached) >= CAPACITY:
            victim = policy.select_victim()
            del cached[victim.key]
        entry = PolicyEntry(key=key_id, size=size)
        cached[key_id] = entry
        policy.insert(entry, cost)
    return hits / len(trace), total_cost


def main() -> None:
    workload = SINGLE_SIZE_WORKLOADS["1"].materialize(NUM_KEYS, seed=3)
    trace = Trace.from_workload(workload, NUM_REQUESTS)
    cost_of = lambda key_id: int(trace.costs[key_id])

    policies = [
        ("lru", LRUPolicy()),
        ("clock", ClockPolicy()),
        ("random", RandomPolicy(seed=1)),
        ("2q", TwoQPolicy(capacity=CAPACITY)),
        ("arc", ARCPolicy(capacity=CAPACITY)),
        ("lru-2", LRUKPolicy(k=2)),
        ("gd-wheel", GDWheelPolicy()),
        ("gd-pq", GDPQPolicy()),
        ("gds", GDSPolicy()),
        ("gdsf", GDSFPolicy()),
        ("camp", CAMPPolicy(use_size=False)),
    ]

    print(f"{NUM_REQUESTS:,} Zipf requests, {NUM_KEYS:,} keys, "
          f"capacity {CAPACITY:,} entries (baseline cost bands)\n")
    print(f"{'policy':>10}  {'hit rate':>8}  {'total miss cost':>15}")
    print(f"{'-' * 10:>10}  {'-' * 8:>8}  {'-' * 15:>15}")
    rows = []
    for name, policy in policies:
        hit_rate, cost = run_policy(policy, trace)
        rows.append((name, hit_rate, cost))
        print(f"{name:>10}  {hit_rate * 100:7.2f}%  {cost:>15,}")

    belady = simulate_belady(list(trace.key_ids), CAPACITY, cost_of)
    greedy = simulate_cost_aware_offline(list(trace.key_ids), CAPACITY, cost_of)
    print(f"{'belady*':>10}  {belady.hit_rate * 100:7.2f}%  "
          f"{belady.total_miss_cost:>15,}")
    print(f"{'offline*':>10}  {greedy.hit_rate * 100:7.2f}%  "
          f"{greedy.total_miss_cost:>15,}")
    print("\n* clairvoyant: belady maximizes hit rate; offline greedily "
          "minimizes cost with future knowledge.")


if __name__ == "__main__":
    main()
