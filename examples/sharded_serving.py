"""Sharded serving demo — and the CI smoke for ``repro.shard``.

Boots a 2-worker :class:`~repro.shard.ShardSupervisor` (each worker is a
full GD-Wheel store behind its own asyncio server in its own process),
drives a short mixed GET/SET workload through a routed pool, kills one
worker to show the respawn-on-same-port recovery path, then shuts the
fleet down and *asserts* nothing is left running — CI runs this file as
the shard smoke job.

Run with::

    PYTHONPATH=src python examples/sharded_serving.py
"""

import asyncio

from repro.aio.backoff import RetryPolicy
from repro.shard import ShardSupervisor

NUM_ITEMS = 400

#: wide enough to ride out a worker respawn (~0.5 s)
RETRY = RetryPolicy(max_attempts=10, base_delay=0.05, max_delay=1.0)


async def mixed_workload(supervisor: ShardSupervisor) -> None:
    pool = supervisor.connect_pool(retry=RETRY)
    async with pool:
        items = [
            (b"user:%04d" % i, b"profile-%04d" % i, 10 + i % 90)
            for i in range(NUM_ITEMS)
        ]
        stored = await pool.multi_set(items)
        found = await pool.multi_get([key for key, _, _ in items])
        assert stored == NUM_ITEMS and len(found) == NUM_ITEMS
        assert await pool.delete(b"user:0000") is True
        print(f"mixed workload: stored {stored}, read back {len(found)}")

        per_shard = await pool.per_node_stats()
        for name in sorted(per_shard):
            stats = per_shard[name]
            print(
                f"  {name}: {stats['curr_items']} items, "
                f"{stats['get_hits']} hits (pid in its own process)"
            )

        # chaos: kill a worker mid-session.  The supervisor respawns it on
        # the SAME port, so the pooled client recovers by plain retry —
        # the cache contents die with the process, connectivity does not.
        victim = pool.node_for(b"user:0007")
        print(f"killing {victim} ...")
        supervisor.kill_worker(victim)
        assert await pool.get(b"user:0007") is None  # fresh, empty shard
        assert await pool.set(b"user:0007", b"rewritten", cost=10)
        assert await pool.get(b"user:0007") == b"rewritten"
        print(f"{victim} respawned on the same port; client retried through")


def main() -> None:
    with ShardSupervisor(
        num_shards=2,
        memory_limit=8 * 1024 * 1024,
        slab_size=64 * 1024,
        monitor_interval=0.1,
    ) as supervisor:
        endpoints = supervisor.endpoints()
        print(f"fleet up: {endpoints}")
        asyncio.run(mixed_workload(supervisor))
        aggregate = supervisor.aggregate_stats()
        print(
            f"aggregate: sets={aggregate['sets']} "
            f"get_hits={aggregate['get_hits']} curr_items={aggregate['curr_items']}"
        )
        handles = [handle.process for handle in supervisor._handles.values()]
    # the context manager SIGTERMs workers and joins them
    assert all(not process.is_alive() for process in handles), "workers leaked"
    print("clean shutdown: no live workers")


if __name__ == "__main__":
    main()
