"""Distributed tracing demo: follow one GET across a tiered 2-shard cluster.

Spins up a real :class:`ShardSupervisor` (two worker processes, each with
an emulated flash tier) with request tracing armed, then walks the whole
observability loop with asserted invariants:

1. a traced pool overcommits RAM so cold keys spill to flash, then reads
   them back — every sampled GET propagates its trace context over the
   plain memcached text protocol (a trailing ``tctx:`` pseudo-key),
2. while the fleet is live, renders the ``gdwheel-repro top`` cluster
   table and the fleet-merged ``stats trace`` event counts,
3. shuts the fleet down (workers flush their span buffers to JSONL on
   SIGTERM), exports the client's spans next to them, and
4. runs the offline collector over the merged directory: rebuilds each
   trace tree, prints the slowest traces, and renders one tier-hit trace
   hop by hop with its critical path — client, router, server, store,
   and flash tier stitched by one trace id.

Run with::

    PYTHONPATH=src python examples/traced_serving.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.obs.tracing import Tracer
from repro.obs.tracecollect import (
    TraceTree,
    group_traces,
    load_span_dir,
    render_trace,
    render_trace_top,
)
from repro.shard import ShardSupervisor

RAM_BYTES = 256 * 1024
NUM_KEYS = 1200


def print_section(title: str, body: str) -> None:
    print(f"\n== {title} ==")
    print(body)


def value_for(key: bytes) -> bytes:
    return (key + b":").ljust(1024, b"v")


async def run_workload(sup: ShardSupervisor, tracer: Tracer) -> int:
    keys = [f"demo-{i:05d}".encode() for i in range(NUM_KEYS)]
    async with sup.connect_pool() as pool:
        stored = await pool.multi_set(
            [(key, value_for(key), 5) for key in keys]
        )
        assert stored == NUM_KEYS, "every write must land"
    async with sup.connect_pool(tracer=tracer) as pool:
        hits = 0
        for key in keys[:400:7]:
            value = await pool.get(key)
            if value is not None:
                assert value == value_for(key), "tier round-trip corrupted"
                hits += 1
    assert hits > 0, "no early key survived anywhere"
    return hits


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="gdwheel-traced-")
    trace_dir = Path(tmp) / "traces"
    client_tracer = Tracer(process="client", sample_interval=1)

    with ShardSupervisor(
        num_shards=2,
        memory_limit=RAM_BYTES,
        slab_size=64 * 1024,
        policy="lru",
        tier_bytes=8 * 1024 * 1024,
        tier_dir=str(Path(tmp) / "tier"),
        trace_dir=str(trace_dir),
        trace_sample=1,
    ) as sup:
        hits = asyncio.run(run_workload(sup, client_tracer))
        tier_stats = sup.per_shard_stats("tier")
        spills = sum(int(s.get("spills", 0)) for s in tier_stats.values())
        assert spills > 0, "RAM was never overcommitted"
        print_section(
            "cluster under load",
            f"  {NUM_KEYS} keys written, {hits} early keys read back\n"
            f"  {spills} evictions spilled to the flash tier",
        )
        print_section("live cluster top", sup.cluster_top(seconds=0.3))
        aggregate = sup.aggregate_trace()
        assert aggregate["counts"].get("spill", 0) > 0
        print_section(
            "fleet-merged stats trace",
            "\n".join(
                f"  {kind:12s} {count}"
                for kind, count in sorted(aggregate["counts"].items())
            ),
        )

    # SIGTERM flushed each worker's spans; add the client's and collect
    client_tracer.export(str(trace_dir / "client.jsonl"))
    spans = load_span_dir(str(trace_dir))
    traces = group_traces(spans)
    assert traces, "no spans were exported"
    print_section("slowest traces", render_trace_top(traces, count=5))

    tiered = [
        tree for tree in (TraceTree(s) for s in traces.values())
        if "tier.read" in tree.span_names()
    ]
    assert tiered, "no traced GET fell through to the flash tier"
    tree = max(tiered, key=lambda t: t.duration_us)
    assert {span.trace_id for span, _ in tree.walk()} == {tree.trace_id}
    assert "client" in tree.processes() and len(tree.processes()) >= 2
    print_section("one tier-hit GET, hop by hop", render_trace(tree))

    print("\nall tracing invariants held")


if __name__ == "__main__":
    main()
