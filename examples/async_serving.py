"""Async serving demo: one event loop, many connections, a latency report.

Starts an asyncio GD-Wheel store server on an ephemeral loopback port,
drives it with the closed-loop YCSB-style load generator (Zipf keys, the
paper's Table 2 baseline cost groups), then scatter/gathers a multi-key
GET across a 3-node async pool.

Run with::

    PYTHONPATH=src python examples/async_serving.py
"""

import asyncio

from repro.aio import (
    AsyncStoreClient,
    AsyncStorePool,
    AsyncTCPStoreServer,
    loop_policy,
    run_closed_loop,
    uvloop_available,
)
from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.workloads import SINGLE_SIZE_WORKLOADS


def make_store(megabytes: int = 16) -> KVStore:
    return KVStore(
        memory_limit=megabytes * 1024 * 1024,
        slab_size=64 * 1024,
        policy_factory=GDWheelPolicy,
    )


async def single_server_load() -> None:
    workload = SINGLE_SIZE_WORKLOADS["1"].materialize(5_000, seed=42)
    async with AsyncTCPStoreServer(make_store()) as server:
        host, port = server.address
        print(f"async server listening on {host}:{port}")
        report = await run_closed_loop(
            host, port, workload,
            total_ops=20_000, concurrency=8, batch_size=16, seed=42,
        )
        print(report.format("closed-loop YCSB-B, 8 workers, batch 16"))
        print(
            f"server saw {server.total_connections} connections, "
            f"peak {server.peak_connections}, "
            f"{server.bytes_in:,} B in / {server.bytes_out:,} B out"
        )


async def cluster_fan_out() -> None:
    servers = {}
    for i in range(3):
        servers[f"node{i}"] = AsyncTCPStoreServer(make_store(4))
        await servers[f"node{i}"].start()
    clients = {
        name: AsyncStoreClient(*server.address, pool_size=4)
        for name, server in servers.items()
    }
    pool = AsyncStorePool(clients)
    try:
        items = [(b"page:%05d" % i, b"<html>%05d</html>" % i, 25) for i in range(3_000)]
        stored = await pool.multi_set(items)
        found = await pool.multi_get([key for key, _, _ in items])
        print(f"\n3-node pool: stored {stored}, multi_get returned {len(found)}")
        print(f"per-node ops: {pool.node_ops}")
        totals = await pool.aggregate_stats()
        print(f"fleet stats: sets={totals['sets']} get_hits={totals['get_hits']}")
    finally:
        await pool.aclose()
        for server in servers.values():
            await server.stop()


if __name__ == "__main__":
    # uvloop when installed, stdlib loop otherwise — same code either way
    asyncio.set_event_loop_policy(loop_policy())
    engine = "uvloop" if uvloop_available() else "asyncio (stdlib)"
    print(f"event loop engine: {engine}")
    asyncio.run(single_server_load())
    asyncio.run(cluster_fan_out())
