#!/usr/bin/env python
"""A distributed cost-aware cache: consistent hashing over GD-Wheel stores.

Demonstrates the paper's introduction in miniature — "combining the
distributed memory of different machines into a single, large pool" — and
its Section 2.2 argument against Facebook-style static pool partitioning:

1. builds a 4-node pool of GD-Wheel stores behind a ketama ring;
2. runs a Zipf workload with the paper's baseline cost mix;
3. scales the pool out by one node mid-run and shows how little of the
   key space remaps;
4. replays the same load against statically cost-partitioned LRU pools of
   the same total memory, and compares total recomputation cost after the
   workload mix shifts.

Run: ``python examples/distributed_pool.py``
"""

from __future__ import annotations

from repro.cluster import make_uniform_pool, pooling_report, run_pooling_comparison
from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.workloads import SINGLE_SIZE_WORKLOADS, Trace


def cache_aside(pool, workload, trace):
    hits = cost = 0
    for key_id, key_cost, _size in trace:
        key = workload.key_bytes(key_id)
        if pool.get(key) is not None:
            hits += 1
        else:
            cost += key_cost
            pool.set(key, workload.value_of(key_id), cost=key_cost)
    return hits / len(trace), cost


def main() -> None:
    # --- 1+2: a 4-node cost-aware pool under Zipf load --------------------
    pool = make_uniform_pool(4, 512 * 1024, GDWheelPolicy)
    workload = SINGLE_SIZE_WORKLOADS["1"].materialize(20_000, seed=9)
    trace = Trace.from_workload(workload, 60_000)
    hit_rate, cost = cache_aside(pool, workload, trace)
    print(f"4-node GD-Wheel pool: hit rate {hit_rate * 100:.1f}%, "
          f"recomputation cost {cost:,}")
    for name, store in sorted(pool.stores.items()):
        print(f"   {name}: {len(store):,} items, "
              f"{store.stats.evictions:,} evictions")

    # --- 3: scale out ------------------------------------------------------
    keys = [workload.key_bytes(i) for i in range(0, 20_000, 7)]
    before = {key: pool.store_for(key) for key in keys}
    pool.add_store(
        "node4",
        KVStore(memory_limit=512 * 1024, slab_size=64 * 1024,
                policy_factory=GDWheelPolicy, hash_func=hash),
    )
    moved = sum(1 for key in keys if pool.store_for(key) is not before[key])
    print(f"\nscale-out to 5 nodes: {moved / len(keys) * 100:.1f}% of keys "
          f"remapped (ideal: 20.0%)")

    # --- 4: the Section 2.2 pooling comparison -----------------------------
    print("\nstatic cost-partitioned pools vs one cost-aware pool "
          "(same memory, mix shift):\n")
    print(pooling_report(run_pooling_comparison(num_requests=40_000)))


if __name__ == "__main__":
    main()
