"""Observability demo: a fully instrumented async server under load.

Builds a deliberately small GD-Wheel store (so the load generator forces
evictions), wires a :class:`MetricsRegistry` and an :class:`EventTrace`
through the store and the asyncio server, then:

1. drives it with the closed-loop load generator while a
   :class:`SnapshotReporter` prints live rate-per-second telemetry,
2. scrapes ``stats metrics`` over the wire like a monitoring agent would,
3. renders the registry in Prometheus text format, and
4. prints the tail of the eviction/cascade trace ring.

Run with::

    PYTHONPATH=src python examples/observability.py
"""

import asyncio

from repro.aio import AsyncStoreClient, AsyncTCPStoreServer, run_closed_loop
from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.obs import EventTrace, MetricsRegistry, SnapshotReporter
from repro.obs.promtext import render_registry
from repro.workloads import SINGLE_SIZE_WORKLOADS


def make_instrumented_store(registry: MetricsRegistry, trace: EventTrace) -> KVStore:
    # 1 MB against a 5_000-key / 256 B-value universe (~1.3 MB of values)
    # guarantees eviction (and trace) traffic
    return KVStore(
        memory_limit=1024 * 1024,
        slab_size=64 * 1024,
        policy_factory=GDWheelPolicy,
        registry=registry,
        trace=trace,
    )


def print_section(title: str, body: str) -> None:
    print(f"\n== {title} ==")
    print(body)


async def main() -> None:
    registry = MetricsRegistry()
    trace = EventTrace(capacity=512)
    store = make_instrumented_store(registry, trace)
    workload = SINGLE_SIZE_WORKLOADS["1"].materialize(5_000, seed=7)

    async with AsyncTCPStoreServer(store, registry=registry) as server:
        host, port = server.address
        print(f"instrumented async server on {host}:{port}")

        # live telemetry: the reporter samples the registry once per
        # interval and prints counter deltas as rates-per-second
        reporter = SnapshotReporter(registry, include="_total")
        report = await run_closed_loop(
            host, port, workload,
            total_ops=30_000, concurrency=8, batch_size=16, seed=7,
            reporter=reporter, report_interval=0.5,
        )
        print_section("client-side closed-loop report",
                      report.format("YCSB-B, 8 workers, batch 16"))

        # scrape the same registry over the wire, memcached-style
        client = AsyncStoreClient(host, port)
        try:
            metrics = await client.stats("metrics")
        finally:
            await client.aclose()
        interesting = (
            "cmd_latency_us{cmd=get}", "store_op_latency_us{op=set}",
            "store_evictions_total", "gdwheel_cascades_total",
            "store_get_hits_total", "store_get_misses_total",
        )
        lines = [
            f"  {name:<44} {value}"
            for name, value in sorted(metrics.items())
            if name.startswith(interesting)
        ]
        print_section("stats metrics (over TCP, excerpt)", "\n".join(lines))

        # the same registry rendered for a Prometheus scrape
        prom = render_registry(registry)
        excerpt = [
            line for line in prom.splitlines()
            if "store_evictions_total" in line or "connections" in line
        ]
        print_section("Prometheus text format (excerpt)", "\n".join(excerpt))

        # structured eviction/cascade events from the trace ring
        print_section(
            f"eviction trace tail ({trace.total_recorded} events recorded, "
            f"ring keeps {trace.capacity})",
            "\n".join(trace.format_tail(8)),
        )


if __name__ == "__main__":
    asyncio.run(main())
