"""Tiered storage demo: spill evictions to flash, promote on hit, recover.

Builds a deliberately small GD-Wheel RAM store backed by an emulated
flash tier (append-only log segments on real disk), then walks the
tier's whole lifecycle with asserted invariants:

1. overcommits RAM so evictions spill into the tier (cheap items are
   turned away by the admission watermark as pressure rises),
2. GETs an evicted key — a tier hit promotes it back into RAM with its
   original cost, invisible to the client beyond the extra latency,
3. forces segment GC and shows live, still-valuable records being copied
   forward while dead and cheap space is reclaimed,
4. closes everything and reopens the tier directory cold, proving the
   spilled records survive a restart (torn-tail-tolerant recovery).

Run with::

    PYTHONPATH=src python examples/tiered_storage.py
"""

import tempfile

from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.tier import FlashTier, TierConfig

RAM_BYTES = 256 * 1024
TIER_BYTES = 1024 * 1024
VALUE = b"v" * 100  # one slab class: every key competes with every other


def print_section(title: str, body: str) -> None:
    print(f"\n== {title} ==")
    print(body)


def make_tiered_store(tier_dir: str) -> KVStore:
    tier = FlashTier(
        tier_dir,
        TierConfig(capacity_bytes=TIER_BYTES, segment_bytes=64 * 1024),
    )
    return KVStore(
        memory_limit=RAM_BYTES,
        slab_size=64 * 1024,
        policy_factory=GDWheelPolicy,
        tier=tier,
    )


def format_tier_stats(store: KVStore) -> str:
    tier = store.tier
    snapshot = tier.snapshot()
    lines = [
        f"  RAM items            {len(store)}",
        f"  tier entries         {len(tier)}",
        f"  tier used / capacity {tier.used_bytes:,} / "
        f"{tier.config.capacity_bytes:,} bytes",
        f"  spills / rejects     {tier.spills} / "
        f"{snapshot['admission']['rejected']}",
        f"  hits -> promotions   {store.stats.tier_hits} -> "
        f"{store.stats.tier_promotions}",
        f"  admission watermark  {snapshot['admission']['watermark']:.3f} "
        f"cost/byte",
        f"  gc runs / copied     {snapshot['gc']['runs']} / "
        f"{snapshot['gc']['records_copied']}",
    ]
    return "\n".join(lines)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="gdwheel-tier-") as tier_dir:
        store = make_tiered_store(tier_dir)

        # -- 1. overcommit RAM: evictions spill into the flash tier ------
        num_keys = 4_000  # ~4x RAM worth of values
        for i in range(num_keys):
            # costs span 3 orders of magnitude, like the paper's workloads
            store.set(f"key-{i:05d}".encode(), VALUE, cost=1 + (i * 37) % 1000)
        assert store.stats.evictions > 0, "RAM never overflowed"
        assert store.stats.tier_spills > 0, "evictions never reached the tier"
        assert store.stats.tier_spills == store.tier.spills
        store.check_invariants()
        print_section("after overcommitting RAM 4x", format_tier_stats(store))

        # -- 2. GET an evicted key: tier hit, promotion back into RAM ----
        victim = next(
            f"key-{i:05d}".encode()
            for i in range(num_keys)
            if store.tier.contains(f"key-{i:05d}".encode())
        )
        original_cost = store.tier.lookup(victim).cost
        sets_before = store.stats.sets
        item = store.get(victim)
        assert item is not None, "tier hit must be invisible to the client"
        assert item.cost == original_cost, "promotion must keep the SET cost"
        assert store.stats.sets == sets_before, "a promotion is not a SET"
        assert not store.tier.contains(victim), "RAM is authoritative again"
        print_section(
            "promotion on tier hit",
            f"  GET {victim.decode()} -> {len(item.value)}-byte value, "
            f"cost {item.cost} (tier hits {store.stats.tier_hits}, "
            f"promotions {store.stats.tier_promotions})",
        )

        # -- 3. keep writing until segment GC has to run -----------------
        for i in range(num_keys, 3 * num_keys):
            store.set(f"key-{i:05d}".encode(), VALUE, cost=1 + (i * 37) % 1000)
        snapshot = store.tier.snapshot()
        assert snapshot["gc"]["runs"] > 0, "tier never filled enough to GC"
        assert store.tier.used_bytes <= store.tier.config.capacity_bytes
        store.check_invariants()
        print_section("after forcing segment GC", format_tier_stats(store))

        # -- 4. cold restart: a new store recovers the tier from disk ----
        survivors = [
            key
            for i in range(3 * num_keys)
            if store.tier.contains(key := f"key-{i:05d}".encode())
        ]
        expected = {key: store.tier.lookup(key).cost for key in survivors[:50]}
        store.tier.close()

        reopened = make_tiered_store(tier_dir)
        assert reopened.tier.recovered_records > 0, "recovery found nothing"
        for key, cost in expected.items():
            item = reopened.get(key)  # RAM miss -> tier hit -> promotion
            assert item is not None, f"{key!r} lost across restart"
            assert item.cost == cost, "recovered record lost its cost"
        print_section(
            "cold restart over the same tier directory",
            f"  recovered {reopened.tier.recovered_records} records from "
            f"disk\n  re-served {len(expected)} spilled keys with their "
            f"original costs\n  tier hits after restart: "
            f"{reopened.stats.tier_hits}",
        )
        reopened.tier.close()

    print("\nall tiered-storage invariants held")


if __name__ == "__main__":
    main()
