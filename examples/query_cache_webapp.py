#!/usr/bin/env python
"""A RUBiS-style web application using the store as a database query cache.

This is the paper's Figure 1 end to end, over the real protocol stack: a
simulated auction site receives interactions (browse item, view bids, show
user history, ...) whose backing "database queries" have very different
execution times (Table 1's cost bands).  The app uses the cache-aside
pattern via :meth:`CostAwareClient.get_or_compute`, attaching each query's
cost to the cached result.

The script runs the same interaction stream against an LRU cache and a
GD-Wheel cache of identical size and reports the total simulated database
time each one incurs.

Run: ``python examples/query_cache_webapp.py``
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro import GDWheelPolicy, KVStore, LRUPolicy
from repro.protocol import CostAwareClient, StoreServer


@dataclass(frozen=True)
class Interaction:
    """One RUBiS-like interaction type with its simulated query time."""

    name: str
    cost_ms: int  # extra response time on a cache miss (Table 1)
    popularity: float  # share of traffic


INTERACTIONS = (
    Interaction("browse-item", 10, 0.50),
    Interaction("view-bid-history", 65, 0.30),
    Interaction("search-items", 90, 0.16),
    Interaction("show-user-history", 240, 0.04),  # buying+selling history
)


class AuctionDatabase:
    """The "database": deterministic results, accounted simulated time."""

    def __init__(self) -> None:
        self.simulated_ms = 0
        self.queries = 0

    def execute(self, interaction: Interaction, entity: int) -> bytes:
        self.queries += 1
        self.simulated_ms += interaction.cost_ms
        return f"<result of {interaction.name} for entity {entity}>".encode()


class AuctionApp:
    """The web tier: cache-aside over the cost-aware client."""

    def __init__(self, client: CostAwareClient, database: AuctionDatabase) -> None:
        self.client = client
        self.database = database

    def handle(self, interaction: Interaction, entity: int) -> bytes:
        key = f"{interaction.name}:{entity}".encode()
        value, _hit = self.client.get_or_compute(
            key,
            compute=lambda: self.database.execute(interaction, entity),
            cost_units=interaction.cost_ms,  # 1 unit == 1 ms of query time
        )
        return value


def run(policy_factory, requests: int, seed: int = 42) -> Dict[str, float]:
    store = KVStore(
        memory_limit=512 * 1024, slab_size=64 * 1024, policy_factory=policy_factory
    )
    database = AuctionDatabase()
    app = AuctionApp(CostAwareClient.loopback(StoreServer(store)), database)
    rng = random.Random(seed)
    weights = [i.popularity for i in INTERACTIONS]
    for _ in range(requests):
        interaction = rng.choices(INTERACTIONS, weights=weights)[0]
        # Zipf-ish entity popularity via a crude power-law draw
        entity = int(4000 * rng.random() ** 3)
        app.handle(interaction, entity)
    return {
        "db_time_ms": database.simulated_ms,
        "db_queries": database.queries,
        "hit_rate": store.stats.hit_rate,
        "evictions": store.stats.evictions,
    }


def main() -> None:
    requests = 40_000
    print(f"replaying {requests:,} auction-site interactions...\n")
    results = {
        name: run(factory, requests)
        for name, factory in (("LRU", LRUPolicy), ("GD-Wheel", GDWheelPolicy))
    }
    for name, stats in results.items():
        print(
            f"{name:>8}: db time {stats['db_time_ms'] / 1000:8.1f} s   "
            f"queries {stats['db_queries']:6d}   "
            f"hit rate {stats['hit_rate'] * 100:5.1f}%   "
            f"evictions {stats['evictions']}"
        )
    saved = 1 - results["GD-Wheel"]["db_time_ms"] / results["LRU"]["db_time_ms"]
    print(f"\nGD-Wheel cuts total database time by {saved * 100:.0f}% "
          f"at near-identical hit rate.")


if __name__ == "__main__":
    main()
