"""Replicated serving demo — and the CI smoke for ``repro.replica``.

Boots a 2-group x 2-replica :class:`~repro.shard.ShardSupervisor` (four
worker processes, each a full GD-Wheel store), drives a workload through
a quorum-writing :class:`~repro.replica.ReplicatedStorePool` at W=R,
SIGKILLs one replica to show that — unlike the unreplicated fleet in
``sharded_serving.py`` — the cached data *survives* the crash: reads
fail over to the surviving peer, the respawned worker bootstraps its
key range from that peer before serving, and an anti-entropy digest
check proves the group converged.  CI runs this file as the replica
smoke job.

Run with::

    PYTHONPATH=src python examples/replicated_serving.py
"""

import asyncio
import time

from repro.aio.backoff import RetryPolicy
from repro.shard import ShardSupervisor

NUM_ITEMS = 400

#: fail FAST — with a live replica there is no reason to wait out a
#: respawn; a dead primary should cost two quick dials, then the peer
#: answers (contrast with ``sharded_serving.py``, which must retry until
#: the respawn because the data exists nowhere else)
RETRY = RetryPolicy(max_attempts=2, base_delay=0.02, max_delay=0.1)


async def replicated_workload(supervisor: ShardSupervisor) -> None:
    pool = supervisor.connect_pool(retry=RETRY)  # W defaults to R
    async with pool:
        items = [
            (b"user:%04d" % i, b"profile-%04d" % i, 10 + i % 90)
            for i in range(NUM_ITEMS)
        ]
        stored = await pool.multi_set(items)
        found = await pool.multi_get([key for key, _, _ in items])
        assert stored == NUM_ITEMS and len(found) == NUM_ITEMS
        print(f"quorum workload: stored {stored} at W=R, read back {len(found)}")

        # chaos: SIGKILL one member of a replica group.  The sharded demo
        # loses that worker's keys; here every key has a live second copy,
        # so the SAME keys answer throughout the outage.
        group = supervisor.group_names[0]
        victim = supervisor.members_of(group)[0]
        print(f"killing {victim} ...")
        supervisor.kill_worker(victim)
        hits = 0
        for key, value, _ in items:
            if await pool.get(key) == value:
                hits += 1
        assert hits == NUM_ITEMS, f"lost {NUM_ITEMS - hits} keys to the crash"
        print(f"outage reads: {hits}/{NUM_ITEMS} answered by surviving peers "
              f"({pool.replica_failovers} failovers)")

        # recovery: the respawn bootstraps its key range from the peer
        # BEFORE opening its listener, so it comes back warm
        assert supervisor.wait_for_respawn(victim, timeout=30)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if supervisor.replicas_converged():
                break
            time.sleep(0.2)
        assert supervisor.replicas_converged(), "digests diverged after respawn"
        print(f"{victim} respawned warm; group digests converged")

        report = supervisor.repair_replicas()
        assert report.clean, f"anti-entropy found divergence: {report}"
        print(f"anti-entropy sweep: {report.groups_checked} groups clean")


def main() -> None:
    with ShardSupervisor(
        num_shards=2,
        replication=2,
        memory_limit=8 * 1024 * 1024,
        slab_size=64 * 1024,
        monitor_interval=0.1,
    ) as supervisor:
        print(f"fleet up: {supervisor.group_endpoints()}")
        asyncio.run(replicated_workload(supervisor))
        handles = [handle.process for handle in supervisor._handles.values()]
    # the context manager SIGTERMs workers and joins them
    assert all(not process.is_alive() for process in handles), "workers leaked"
    print("clean shutdown: no live workers")


if __name__ == "__main__":
    main()
