"""Chaos serving demo — and the CI smoke for ``repro.resilience``.

Boots a GD-Wheel store behind the asyncio server with overload
protection armed, interposes a seeded :class:`~repro.resilience.ChaosProxy`
between client and server, and drives a mixed workload through three
fault phases:

1. **degraded network** — latency + jitter + occasional split writes;
   every call still completes and no acknowledged write is lost,
2. **blackhole** — the proxy swallows all traffic; the client's circuit
   breaker trips and fail-fast short circuits replace timeout waits,
3. **recovery** — the faults lift, the breaker probes half-open and
   closes, and the workload finishes clean.

Phases are switched by appending override windows to the live schedule
(later windows win), so the demo never races wall-clock fault timing.
Every phase *asserts* its invariants — CI runs this file as the chaos
smoke job.  Total runtime is a few seconds.

Run with::

    PYTHONPATH=src python examples/chaos_serving.py
"""

import asyncio
import random

from repro.aio import AsyncStoreClient, AsyncTCPStoreServer
from repro.aio.backoff import RetryPolicy
from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.obs import EventTrace, MetricsRegistry
from repro.resilience import (
    BreakerOpenError,
    BreakerPolicy,
    ChaosProxy,
    CircuitBreaker,
    FaultSchedule,
    OverloadPolicy,
)

NUM_ITEMS = 120

#: an override window far longer than the demo ever runs
FOREVER = 3600.0

RETRY = RetryPolicy(max_attempts=4, base_delay=0.02, max_delay=0.2)


def build_store() -> KVStore:
    return KVStore(
        memory_limit=8 * 1024 * 1024,
        slab_size=64 * 1024,
        policy_factory=GDWheelPolicy,
    )


async def degraded_phase(
    client: AsyncStoreClient, store: KVStore, proxy: ChaosProxy
) -> None:
    acked = {}
    for i in range(NUM_ITEMS):
        key = b"item:%04d" % i
        value = b"payload-%04d" % i
        if await client.set(key, value, cost=10 + i % 90):
            acked[key] = value
        await client.get(b"item:%04d" % random.Random(i).randrange(NUM_ITEMS))
    for key, value in acked.items():
        item = store.get(key)
        assert item is not None and item.value == value, "acked write lost"
    print(
        f"degraded phase: {len(acked)} acked writes, all present; "
        f"faults so far: {dict(sorted(proxy.fault_counts.items()))}"
    )


async def blackhole_phase(
    client: AsyncStoreClient, breaker: CircuitBreaker
) -> None:
    failures = 0
    while breaker.state != "open":
        try:
            await client.get(b"item:0000")
        except (ConnectionError, OSError, asyncio.TimeoutError):
            failures += 1
        assert failures < 50, "breaker never tripped"
    short_circuited = 0
    for _ in range(5):
        try:
            await client.get(b"item:0000")
        except BreakerOpenError:
            short_circuited += 1
    assert short_circuited == 5, "open breaker must fail fast"
    print(
        f"blackhole phase: breaker open after {failures} transport "
        f"failures, {short_circuited} calls short-circuited"
    )


async def recovery_phase(
    client: AsyncStoreClient, breaker: CircuitBreaker, proxy: ChaosProxy
) -> None:
    deadline = asyncio.get_running_loop().time() + 10.0
    while True:
        assert asyncio.get_running_loop().time() < deadline, "never recovered"
        try:
            if await client.set(b"recovered", b"yes", cost=5):
                break
        except (ConnectionError, OSError, asyncio.TimeoutError, BreakerOpenError):
            await asyncio.sleep(0.1)
    assert breaker.state == "closed", breaker.state
    assert await client.get(b"recovered") == b"yes"
    print(
        f"recovery phase: breaker closed, reads clean; "
        f"proxy injected {proxy.total_injected} faults "
        f"{dict(sorted(proxy.fault_counts.items()))}"
    )


async def main_async() -> None:
    store = build_store()
    registry = MetricsRegistry()
    trace = EventTrace()
    overload = OverloadPolicy(idle_timeout=30.0, request_deadline=1.0)
    async with AsyncTCPStoreServer(store, overload=overload) as server:
        schedule = FaultSchedule(seed=42).always(
            latency=0.001, jitter=0.002, partial_write_prob=0.2
        )
        async with ChaosProxy(
            *server.address, schedule, registry=registry
        ) as proxy:
            breaker = CircuitBreaker(
                BreakerPolicy(failure_threshold=3, recovery_time=0.25),
                name="shard-0", registry=registry, trace=trace,
            )
            client = AsyncStoreClient(
                *proxy.address, timeout=0.25, retry=RETRY,
                rng=random.Random(7), breaker=breaker,
            )
            print(f"serving through chaos proxy {proxy.address} -> "
                  f"{server.address}")

            await degraded_phase(client, store, proxy)

            schedule.window(0.0, FOREVER, blackhole=True)
            await blackhole_phase(client, breaker)

            schedule.window(0.0, FOREVER)  # clean override: faults lift
            await recovery_phase(client, breaker, proxy)

            transitions = [
                (event.old_state, event.new_state)
                for event in trace.events(kind="breaker")
            ]
            assert ("closed", "open") in transitions
            assert ("half_open", "closed") in transitions
            await client.aclose()

    snapshot = registry.snapshot()
    opened = snapshot.get("client_breaker_opens_total{node=shard-0}", 0)
    print(
        f"clean shutdown: breaker opened {opened}x, "
        f"{proxy.connections} proxied connections, "
        f"trace recorded {len(trace.events(kind='breaker'))} transitions"
    )


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
