"""E-F14 — Figure 14: normalized total recomputation cost, multi-size.

Paper shape: LRU+Orig = 100; GD-Wheel+Orig achieves a modest reduction
(within-class cost variation only — the 10-30 / 120-180 / 350-450 spread
*within* each band); GD-Wheel+New cuts cost by 68% on average, up to 79%.
Also: the original rebalancer moves zero slabs.
"""

from repro.experiments.multi_size import fig14_report, fig14_rows, slab_moves_report


def test_fig14_multisize_cost(multi_suite, emit, benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig14_rows(multi_suite), rounds=1, iterations=1
    )
    emit("fig14", fig14_report(multi_suite) + "\n\n" + slab_moves_report(multi_suite))

    for wid, _name, lru_norm, wheel_orig_norm, wheel_new_norm, reduction in rows:
        assert lru_norm == 100.0
        # GD-Wheel alone helps somewhat but not dramatically
        assert wheel_orig_norm <= 100.0 + 3.0, wid
        # the combined stack dominates
        assert wheel_new_norm < wheel_orig_norm, wid
        assert reduction > 40, (wid, reduction)

    # the original rebalancer must not move slabs under LRU during the
    # measurement phase (the paper's Section 6.4.2 observation).  That
    # claim is about sustained load: at the reduced `small` scale some
    # class can post a zero-eviction window by chance, so the strict zero
    # only applies from the default scale up; a handful of moves are
    # tolerated otherwise (and always for GD-Wheel's protected classes).
    strict = scale.num_requests >= 100_000
    for (wid, label), result in multi_suite.items():
        if label == "LRU+Orig" and strict:
            assert result.store_stats["slab_moves"] == 0, (wid, label)
        elif label.endswith("Orig"):
            assert result.store_stats["slab_moves"] <= 20, (wid, label)

    avg = sum(r[5] for r in rows) / len(rows)
    assert avg > 50  # paper: 68%
