"""Shard-scaling smoke benchmark: the multi-process engine end to end.

Runs the checked-in ``run_shard_bench`` harness at reduced scale —
real worker processes, real driver processes, routed pools — and writes
the measured document to ``BENCH_shard.json`` at the repo root, so
regenerating the committed numbers is one pytest (or one
``python benchmarks/run_shard_bench.py``) away.

The ISSUE's >=2.5x 4-shard speedup is a *scaling* claim: it needs four
cores for four shards to land on.  The assertion is therefore gated on
``available_cpus() >= 4``; on smaller machines the harness still runs
and records honest raw throughput, but refuses to stamp any
``speedup_vs_single`` numbers — the document instead carries
``"scaling": "scaling_unverified"`` plus an explanatory note.

Marked ``slow`` so tier-1 runs (and ``-m 'not slow'``) skip it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from run_shard_bench import available_cpus, run_shard_scaling

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent
SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def document():
    return run_shard_scaling(
        shard_counts=SHARD_COUNTS,
        drivers=4,
        ops_per_driver=4_000,
        batch=16,
        num_keys=2_000,
    )


def test_every_config_serves(document):
    assert [r["shards"] for r in document["results"]] == list(SHARD_COUNTS)
    for result in document["results"]:
        assert result["ops_per_sec"] > 0
        assert result["hit_rate"] > 0.99  # warmed universe, pure GETs
        assert result["operations"] == 4 * 4_000


def test_scaling_when_cores_allow(document):
    """The acceptance bar: 4 shards >= 2.5x one process — on >=4 cores."""
    by_shards = {r["shards"]: r for r in document["results"]}
    if available_cpus() >= 4:
        speedup = by_shards[4]["speedup_vs_single"]
        assert speedup >= 2.5, f"4-shard speedup {speedup} < 2.5"
        assert "scaling" not in document
    else:
        # time-slicing one core: no speedup claim is stamped at all
        assert all(
            "speedup_vs_single" not in r for r in document["results"]
        )
        assert document["scaling"] == "scaling_unverified"
        assert "note" in document


def test_writes_bench_document(document, emit):
    out = REPO_ROOT / "BENCH_shard.json"
    out.write_text(json.dumps(document, indent=2) + "\n")
    lines = [
        f"Shard scaling on {document['environment']['cpus']} CPU(s), "
        "4 driver processes, pipelined GET batches of 16:",
        "",
        f"{'shards':>7} {'ops/s':>12} {'p99 us/batch':>13} {'speedup':>8}",
    ]
    for result in document["results"]:
        speedup = (
            f"{result['speedup_vs_single']:>8.2f}"
            if "speedup_vs_single" in result else f"{'n/a':>8}"
        )
        lines.append(
            f"{result['shards']:>7} {result['ops_per_sec']:>12,.0f} "
            f"{result['batch_latency_us']['p99']:>13,.0f} {speedup}"
        )
    if "note" in document:
        lines += ["", f"note: {document['note']}"]
    emit("shard_scaling", "\n".join(lines))
