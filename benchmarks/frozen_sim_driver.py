"""Frozen copy of the pre-optimization simulation request path.

``run_simulation_frozen`` replays one experiment cell through the request
path exactly as it stood before the hot-path pass (PR 5): the per-request
driver loop (one Python call per request for key bytes, cost lookup, value
construction, clock advance, and request-log recording) driving a store
whose GET/SET bodies, hash-table probe, item constructor, and policy
touch/insert methods carry the old, un-inlined implementations.  The
frozen pieces are subclasses pinning the old method bodies, so workload
generation, slab accounting, eviction logic, and result summarization stay
shared with the live code — the A/B difference is exactly the hot-path
work this PR removed.

``benchmarks/run_sim_bench.py`` A/B-interleaves this against the live
driver and asserts the results are identical (same hit rate, same
miss-cost sequence, same store stats) before trusting any speedup number.
Do not "improve" this file: its value is that it does not move.
"""

from __future__ import annotations

import heapq
import time

from repro.core.gdpq import GDPQPolicy
from repro.core.gdwheel import GDWheelPolicy
from repro.core.lru import LRUPolicy
from repro.core.policy import EvictionError, PolicyEntry
from repro.kvstore import KVStore, SimClock
from repro.kvstore.hashtable import HashTable
from repro.kvstore.item import ITEM_HEADER_SIZE, Item, NEVER_EXPIRES
from repro.obs.reporter import diff_snapshots
from repro.sim.driver import (
    SimConfig,
    estimate_capacity_items,
    make_policy_factory,
    make_rebalancer,
    resolve_num_keys,
)
from repro.sim.metrics import RequestLog
from repro.sim.results import SimResult


class FrozenLRUPolicy(LRUPolicy):
    """LRU with the old two-call touch (unlink then relink)."""

    def touch(self, entry: PolicyEntry) -> None:
        queue = self._queue
        queue.remove(entry)
        queue.push_head(entry)


class FrozenGDWheelPolicy(GDWheelPolicy):
    """GD-Wheel with the old _unlink/_place call chain on touch/insert."""

    def _place(self, entry: PolicyEntry) -> None:
        delta = entry.policy_h - self._inflation
        level = 0
        while level + 1 < self.num_wheels and delta >= self._pow[level + 1]:
            level += 1
        slot = (entry.policy_h // self._pow[level]) % self.num_queues
        self._wheels[level][slot].push_head(entry)
        self._level_counts[level] += 1
        entry.policy_slot = level

    def _unlink(self, entry: PolicyEntry) -> None:
        owner = entry.owner
        if owner is None or not isinstance(entry.policy_slot, int):
            raise ValueError("entry is not tracked by this policy")
        owner.remove(entry)
        self._level_counts[entry.policy_slot] -= 1
        entry.policy_slot = None

    def insert(self, entry: PolicyEntry, cost: int = 0) -> None:
        cost = self._effective_cost(cost)
        entry.cost = cost
        entry.policy_h = self._inflation + cost
        entry.policy_seq = 0
        self._place(entry)
        self._count += 1

    def touch(self, entry: PolicyEntry) -> None:
        self._unlink(entry)
        entry.policy_h = self._inflation + self._effective_cost(entry.cost)
        entry.policy_seq = 0
        self._place(entry)

    def select_victim(self) -> PolicyEntry:
        if self._count == 0:
            raise EvictionError("GD-Wheel tracks no entries")
        nq = self.num_queues
        wheel0 = self._wheels[0]
        while True:
            if self._level_counts[0]:
                queue = wheel0[self._inflation % nq]
                if queue:
                    victim: PolicyEntry = queue.pop_tail()  # type: ignore[assignment]
                    self._level_counts[0] -= 1
                    victim.policy_slot = None
                    self._count -= 1
                    if self._inflation_gauge is not None:
                        self._inflation_gauge.set(self._inflation)
                    return victim
                self._inflation += 1
                if self._inflation % nq == 0:
                    self._cascade()
            else:
                lowest = min(
                    i for i in range(self.num_wheels) if self._level_counts[i]
                )
                step = self._pow[lowest]
                self._inflation = (self._inflation // step + 1) * step
                self._cascade()


class FrozenGDPQPolicy(GDPQPolicy):
    """GD-PQ with the old method-per-step touch and heapq attribute calls."""

    def touch(self, entry: PolicyEntry) -> None:
        self._invalidate(entry)
        entry.policy_h = self._inflation + entry.cost
        self._push(entry)
        self._maybe_compact()

    def select_victim(self) -> PolicyEntry:
        while self._heap:
            slot = heapq.heappop(self._heap)
            entry = slot[2]
            if entry is None:
                continue
            entry.policy_ref = None
            self._live -= 1
            self._inflation = entry.policy_h
            self._maybe_deflate()
            if self._inflation_gauge is not None:
                self._inflation_gauge.set(self._inflation)
            return entry
        raise EvictionError("GD-PQ tracks no entries")


class FrozenHashTable(HashTable):
    """Hash table with the old find() (always through _locate)."""

    def find(self, key: bytes):
        _, _, _, item = self._locate(key, self._hash(key))
        return item


class FrozenItem(Item):
    """Item with the old super().__init__ construction chain."""

    __slots__ = ()

    def __init__(self, key, value, cost=0, flags=0, exptime=NEVER_EXPIRES):
        if not isinstance(key, bytes):
            raise TypeError("key must be bytes")
        if not isinstance(value, bytes):
            raise TypeError("value must be bytes")
        PolicyEntry.__init__(
            self, cost=cost, size=ITEM_HEADER_SIZE + len(key) + len(value), key=key
        )
        self.value = value
        self.flags = flags
        self.exptime = exptime
        self.h_next = None
        self.slab = None
        self.chunk_index = None
        self.last_access = 0.0
        self.cas_unique = 0


class FrozenKVStore(KVStore):
    """KVStore with the old GET/SET bodies (property-backed stats bumps,
    clock reads through the ``now`` property, un-inlined hash probe)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        hash_func = kwargs.get("hash_func")
        power = kwargs.get("hash_power", 10)
        if hash_func is not None:
            self.hashtable = FrozenHashTable(
                initial_power=power, hash_func=hash_func
            )
        else:
            self.hashtable = FrozenHashTable(initial_power=power)

    def get(self, key):
        on_request = self._on_request
        if on_request is not None:
            on_request()
        item = self.hashtable.find(key)
        stats = self.stats
        if item is None:
            stats.get_misses += 1
            return None
        now = self.clock.now
        exptime = item.exptime
        if exptime != NEVER_EXPIRES and now >= exptime:
            self._unlink_item(item, item.slab.owner)
            stats.get_expired += 1
            stats.get_misses += 1
            return None
        stats.get_hits += 1
        item.last_access = now
        slab = item.slab
        slab.last_access = now
        slab_class = slab.owner
        policy = slab_class.policy
        if policy is None:
            policy = self.policy_for(slab_class)
        policy.touch(item)
        return item

    def _store_item(self, key, value, cost, exptime, flags):
        old = self.hashtable.find(key)
        if old is not None:
            self._unlink_item(old, old.slab.owner)
        item = FrozenItem(
            key=key, value=value, cost=cost, flags=flags, exptime=exptime
        )
        slab_class = self.allocator.class_for_size(item.footprint)
        slab, index = self._allocate_chunk(slab_class)
        slab_class.store_item(item, slab, index)
        self.hashtable.insert(item)
        now = self.clock.now
        item.last_access = now
        slab.last_access = now
        self._cas_counter += 1
        item.cas_unique = self._cas_counter
        policy = slab_class.policy
        if policy is None:
            policy = self.policy_for(slab_class)
        policy.insert(item, cost)
        self.stats.sets += 1
        return item


def _frozen_policy_factory(name, capacity_items, max_cost, **kwargs):
    """make_policy_factory with the frozen variants for the bench policies."""
    if name == "lru":
        return lambda: FrozenLRUPolicy(**kwargs)
    if name == "gd-wheel":
        options = {"num_queues": 256, "num_wheels": 2}
        options.update(kwargs)
        wheel_capacity = options["num_queues"] ** options["num_wheels"] - 1
        if max_cost > wheel_capacity:
            raise ValueError(
                f"workload max cost {max_cost} exceeds wheel capacity "
                f"{wheel_capacity}; widen num_queues/num_wheels"
            )
        return lambda: FrozenGDWheelPolicy(**options)
    if name == "gd-pq":
        return lambda: FrozenGDPQPolicy(**kwargs)
    return make_policy_factory(name, capacity_items, max_cost, **kwargs)


def run_simulation_frozen(config: SimConfig) -> SimResult:
    """Warmup, measure, and summarize one cell — the pre-PR-5 request path."""
    started = time.perf_counter()
    num_keys = resolve_num_keys(config)
    workload = config.spec.materialize(num_keys=num_keys, seed=config.seed)
    probe_capacity = estimate_capacity_items(config, workload)

    clock = SimClock()
    measurement_seconds = config.num_requests * config.request_interval_s
    policy_factory = _frozen_policy_factory(
        config.policy, probe_capacity, workload.max_cost(), **config.policy_kwargs
    )
    rebalancer = make_rebalancer(
        config.rebalancer, measurement_seconds, **config.rebalancer_kwargs
    )
    store = FrozenKVStore(
        memory_limit=config.memory_limit,
        policy_factory=policy_factory,
        rebalancer=rebalancer,
        slab_size=config.slab_size,
        clock=clock,
        hash_power=14,
        hash_func=hash,
    )

    dt = config.request_interval_s
    key_bytes = workload.key_bytes
    # The pre-PR-5 Workload accessors resolved cost/value per request from
    # the numpy arrays (scalar index + int() + a fresh bytes allocation);
    # the live Workload now serves both from precomputed lists, so the
    # frozen behavior is replicated here rather than called.
    costs_arr = workload.costs
    sizes_arr = workload.value_sizes

    def cost_of(key_id):
        return int(costs_arr[key_id])

    def value_of(key_id):
        return b"v" * int(sizes_arr[key_id])

    # --- warmup phase: load the whole universe in seeded random order ----------
    for key_id in workload.warmup_order(seed=config.seed + 101).tolist():
        clock.advance(dt)
        store.set(key_bytes(key_id), value_of(key_id), cost=cost_of(key_id))

    warmup_stats = store.stats.snapshot()

    # --- measurement phase: Zipf GETs; miss -> recompute + SET ----------------
    log = RequestLog(config.num_requests)
    requests = workload.sample_requests(config.num_requests)
    get = store.get
    set_ = store.set
    for key_id in requests.tolist():
        clock.advance(dt)
        key = key_bytes(key_id)
        if get(key) is not None:
            log.record_hit()
        else:
            cost = cost_of(key_id)
            log.record_miss(cost)
            set_(key, value_of(key_id), cost=cost)

    store.check_invariants()
    measured_stats = diff_snapshots(warmup_stats, store.stats.snapshot())
    return SimResult(
        workload_id=config.spec.workload_id,
        workload_name=config.spec.name,
        policy=config.policy,
        rebalancer=config.rebalancer,
        num_keys=num_keys,
        num_requests=config.num_requests,
        capacity_items=probe_capacity,
        hit_rate=log.hit_rate,
        total_recomputation_cost=log.total_recomputation_cost,
        average_latency_us=log.average_latency_us(),
        p99_latency_us=log.percentile_latency_us(99.0),
        miss_costs=log.miss_costs(),
        store_stats=measured_stats,
        class_stats=[vars(cs) for cs in store.class_stats()],
        wall_seconds=time.perf_counter() - started,
    )
