"""A-4 — ablation: the policy zoo on hit rate vs total recomputation cost.

The related-work framing (Section 7), quantified: policies that chase hit
ratio (2Q, ARC, LRU-K, CLOCK) do not minimize cost; the GreedyDual family
trades a sliver of hit rate for most of the cost; the clairvoyant bounds
bracket everyone.
"""

import pytest

from repro.core import (
    ARCPolicy,
    CAMPPolicy,
    ClockPolicy,
    GDPQPolicy,
    GDSFPolicy,
    GDWheelPolicy,
    LRUKPolicy,
    LRUPolicy,
    PolicyEntry,
    RandomPolicy,
    TwoQPolicy,
    simulate_belady,
    simulate_cost_aware_offline,
)
from repro.experiments.report import render_table
from repro.workloads import SINGLE_SIZE_WORKLOADS, Trace

CAPACITY = 2_000
NUM_KEYS = 8_000
NUM_REQUESTS = 80_000

POLICIES = [
    ("lru", LRUPolicy),
    ("clock", ClockPolicy),
    ("random", lambda: RandomPolicy(seed=1)),
    ("2q", lambda: TwoQPolicy(capacity=CAPACITY)),
    ("arc", lambda: ARCPolicy(capacity=CAPACITY)),
    ("lru-2", lambda: LRUKPolicy(k=2)),
    ("gd-wheel", GDWheelPolicy),
    ("gd-pq", GDPQPolicy),
    ("gdsf", GDSFPolicy),
    ("camp", lambda: CAMPPolicy(use_size=False)),
]

_shared = {}


def fixture_trace():
    if "trace" not in _shared:
        workload = SINGLE_SIZE_WORKLOADS["1"].materialize(NUM_KEYS, seed=31)
        _shared["trace"] = Trace.from_workload(workload, NUM_REQUESTS)
    return _shared["trace"]


def run_policy(factory):
    trace = fixture_trace()
    policy = factory()
    cached, hits, total_cost = {}, 0, 0
    for key_id, cost, size in trace:
        entry = cached.get(key_id)
        if entry is not None:
            hits += 1
            policy.touch(entry)
            continue
        total_cost += cost
        if len(cached) >= CAPACITY:
            victim = policy.select_victim()
            del cached[victim.key]
        entry = PolicyEntry(key=key_id, size=size)
        cached[key_id] = entry
        policy.insert(entry, cost)
    return hits / len(trace), total_cost


@pytest.mark.parametrize("name,factory", POLICIES)
def test_policy(benchmark, name, factory):
    hit_rate, total_cost = benchmark.pedantic(
        lambda: run_policy(factory), rounds=1, iterations=1
    )
    _shared.setdefault("results", {})[name] = (hit_rate, total_cost)
    assert 0.5 < hit_rate < 1.0


def test_policy_zoo_report(emit, benchmark):
    results = {}
    for name, factory in POLICIES:
        results[name] = _shared.get("results", {}).get(name) or run_policy(factory)
    trace = fixture_trace()
    cost_of = lambda key_id: int(trace.costs[key_id])
    key_list = trace.key_ids.tolist()
    belady = benchmark.pedantic(
        lambda: simulate_belady(key_list, CAPACITY, cost_of),
        rounds=1,
        iterations=1,
    )
    offline = simulate_cost_aware_offline(key_list, CAPACITY, cost_of)

    rows = [
        [name, hit * 100, cost]
        for name, (hit, cost) in sorted(results.items(), key=lambda kv: kv[1][1])
    ]
    rows.append(["belady (offline)", belady.hit_rate * 100, belady.total_miss_cost])
    rows.append(
        ["cost-greedy (offline)", offline.hit_rate * 100, offline.total_miss_cost]
    )
    emit(
        "ablation_policy_zoo",
        render_table(
            ["policy", "hit rate %", "total miss cost"],
            rows,
            title="A-4: policy zoo on the baseline workload "
            f"({NUM_REQUESTS:,} requests, capacity {CAPACITY:,})",
        ),
    )

    # the cost-aware family beats every cost-oblivious policy on cost...
    oblivious_best = min(
        results[name][1] for name in ("lru", "clock", "random", "2q", "arc", "lru-2")
    )
    for name in ("gd-wheel", "gd-pq"):
        assert results[name][1] < oblivious_best
    # ...even though hit-ratio-oriented policies win on hit rate
    assert max(
        results[name][0] for name in ("2q", "arc", "lru-2")
    ) > results["gd-wheel"][0]
    # and the clairvoyant cost bound is below everyone
    assert offline.total_miss_cost <= min(r[1] for r in results.values())
