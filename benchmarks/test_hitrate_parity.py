"""E-HIT — Section 6.4.1: GD-Wheel's GET hit rate matches LRU's.

Paper: "the hit rates achieved by LRU and GD-Wheel differ by no more than
0.18% among all workloads."  At reduced simulation scale we enforce 1
percentage point, and typically see well under half of that.
"""

from repro.experiments.single_size import comparisons, hit_rate_report


def test_hit_rate_parity(single_suite, emit, benchmark):
    comps = benchmark.pedantic(
        lambda: comparisons(single_suite), rounds=1, iterations=1
    )
    emit("hitrate", hit_rate_report(comps))
    worst = max(c.hit_rate_delta_pct for c in comps)
    assert worst < 1.0, f"worst hit-rate delta {worst:.2f}pp"
    # and both policies actually operate near the calibrated 95% target
    for comp in comps:
        assert comp.baseline.hit_rate > 0.88
