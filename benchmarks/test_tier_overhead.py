"""Tier-disabled overhead guard: shipping store vs the pre-tier hot path.

The flash tier threads three hooks through the KVStore hot path: a
RAM-miss fallthrough in ``get``, an invalidate in ``_store_item``, and the
``_evict_item`` choke point under ``_evict_one``.  The contract is that a
store built with ``tier=None`` pays for none of it beyond a handful of
``is None`` branches.

This benchmark holds it to that: a frozen inline copy of the pre-tier
``get`` / ``_store_item`` / ``_evict_one`` serves as the baseline arm, the
shipping :class:`KVStore` with ``tier=None`` is the candidate arm, and the
candidate's mixed GET/SET throughput must stay within 3% of the baseline.
The arms are interleaved and best-of-N compared so host-load drift hits
both symmetrically.

Sized by ``TIER_OVERHEAD_OPS`` (default 60_000); raise it locally (e.g.
500_000) for a low-variance measurement.  Marked ``slow`` so quick local
runs can deselect it with ``-m 'not slow'``.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.kvstore.item import Item, NEVER_EXPIRES

pytestmark = pytest.mark.slow

TOTAL_OPS = int(os.environ.get("TIER_OVERHEAD_OPS", "60000"))
ROUNDS = int(os.environ.get("TIER_OVERHEAD_ROUNDS", "5"))
NUM_KEYS = 4_000
VALUE = b"v" * 100
MEMORY = 384 * 1024  # overcommitted ~2x so evictions stay in the mix
#: tier-disabled throughput must stay within this fraction of pre-tier
MAX_OVERHEAD = 0.03


class _FrozenPreTierStore(KVStore):
    """The pre-tier hot path, frozen verbatim as the baseline arm.

    Deliberately NOT kept in sync with the shipping methods: it preserves
    ``get``, ``_store_item``, and ``_evict_one`` exactly as they were
    before the tier existed, so the guard measures exactly what this PR
    added to the disabled path.
    """

    def get(self, key):
        on_request = self._on_request
        if on_request is not None:
            on_request()
        item = self.hashtable.find(key)
        if item is None:
            self._count_get_miss()
            return None
        now = self.clock._now
        exptime = item.exptime
        if exptime != NEVER_EXPIRES and now >= exptime:
            self._unlink_item(item, item.slab.owner)
            stats = self.stats
            stats.get_expired += 1
            stats.get_misses += 1
            return None
        self._count_get_hit()
        item.last_access = now
        slab = item.slab
        slab.last_access = now
        slab_class = slab.owner
        policy = slab_class.policy
        if policy is None:
            policy = self.policy_for(slab_class)
        policy.touch(item)
        return item

    def _store_item(self, key, value, cost, exptime, flags, count_set=True,
                    version=0):
        # ``version`` arrived with the replication LWW work; the frozen
        # pre-tier baseline predates it and ignores it.
        old = self.hashtable.find(key)
        if old is not None:
            self._unlink_item(old, old.slab.owner)
        item = Item(key=key, value=value, cost=cost, flags=flags, exptime=exptime)
        slab_class = self.allocator.class_for_size(item.footprint)
        slab, index = self._allocate_chunk(slab_class)
        slab_class.store_item(item, slab, index)
        self.hashtable.insert(item)
        now = self.clock._now
        item.last_access = now
        slab.last_access = now
        self._cas_counter += 1
        item.cas_unique = self._cas_counter
        policy = slab_class.policy
        if policy is None:
            policy = self.policy_for(slab_class)
        policy.insert(item, cost)
        self._count_set()
        return item

    def _evict_one(self, slab_class):
        policy = self.policy_for(slab_class)
        now = self.clock.now
        iter_tail = getattr(policy, "iter_tail", None)
        if iter_tail is not None:
            scanned = 0
            for entry in iter_tail():
                if scanned >= self.RECLAIM_SCAN_DEPTH:
                    break
                scanned += 1
                item = entry
                if item.expired(now):
                    self._unlink_item(item, slab_class)
                    self.stats.reclaims += 1
                    if self.trace is not None:
                        self._trace_eviction(policy, slab_class, item, expired=True)
                    return item
        victim = policy.select_victim()
        self.hashtable.delete(victim.key)
        slab_class.free_item(victim)
        expired = victim.expired(now)
        if expired:
            self.stats.reclaims += 1
        else:
            self.stats.evictions += 1
            self.stats.evicted_cost += victim.cost
            slab_class.evictions += 1
        if self.trace is not None:
            self._trace_eviction(policy, slab_class, victim, expired=expired)
        if not expired:
            self.rebalancer.on_eviction(slab_class, victim)
        return victim


def make_ops():
    """A deterministic 70/30 GET/SET stream over a fixed key universe."""
    rng = random.Random(17)
    keys = [f"key-{i:05d}".encode() for i in range(NUM_KEYS)]
    return [
        (rng.random() < 0.7, keys[int(rng.random() ** 2 * NUM_KEYS)])
        for _ in range(TOTAL_OPS)
    ]


def measure(store_cls, ops) -> float:
    """One mixed GET/SET run against a fresh tierless store; ops/s."""
    store = store_cls(
        memory_limit=MEMORY,
        slab_size=64 * 1024,
        policy_factory=GDWheelPolicy,
    )
    assert store.tier is None
    for i in range(NUM_KEYS):  # warm fill: steady-state eviction from op 0
        store.set(f"key-{i:05d}".encode(), VALUE, cost=1 + i % 100)
    get = store.get
    set_ = store.set
    start = time.perf_counter()
    for is_get, key in ops:
        if is_get:
            get(key)
        else:
            set_(key, VALUE, cost=7)
    elapsed = time.perf_counter() - start
    assert store.stats.evictions > 0, "no eviction pressure; shrink MEMORY"
    return len(ops) / elapsed


def test_disabled_tier_overhead_under_three_percent(emit):
    ops = make_ops()
    measure(KVStore, ops)  # joint warm-up (bytecode + allocator caches)
    baseline_runs, shipping_runs = [], []
    for _ in range(ROUNDS):
        baseline_runs.append(measure(_FrozenPreTierStore, ops))
        shipping_runs.append(measure(KVStore, ops))
    baseline = max(baseline_runs)
    shipping = max(shipping_runs)
    overhead = 1.0 - shipping / baseline
    emit(
        "tier_overhead",
        "== tier-disabled overhead guard ==\n"
        f"ops per run         {TOTAL_OPS}  (best of {ROUNDS})\n"
        f"frozen pre-tier     {baseline:12,.0f} ops/s\n"
        f"shipping (off)      {shipping:12,.0f} ops/s\n"
        f"overhead            {overhead:+.1%}  (budget {MAX_OVERHEAD:.0%})",
    )
    assert shipping >= (1.0 - MAX_OVERHEAD) * baseline, (
        f"tier-disabled throughput {shipping:,.0f} ops/s is more than "
        f"{MAX_OVERHEAD:.0%} below the frozen pre-tier baseline "
        f"{baseline:,.0f}"
    )
