"""E-F11 — Figure 11: 99th percentile read access latency, 10 workloads.

Paper shape: GD-Wheel's p99 stays low (<= 1364 µs on grouped-cost
workloads, 4136 µs on the random-cost workload) while LRU's p99 swings
wildly (up to 14476 µs on workload 5); avg reduction 69%, max 85%.
"""

from repro.experiments.single_size import comparisons, fig11_report
from repro.sim.latency import PAPER_LATENCY_MODEL


def test_fig11_tail_latency(single_suite, emit, benchmark):
    comps = benchmark.pedantic(
        lambda: comparisons(single_suite), rounds=1, iterations=1
    )
    emit("fig11", fig11_report(comps))
    by_id = {c.workload_id: c for c in comps}

    # baseline-band workloads (80% cheap keys): GD-Wheel's p99 is a
    # *low-band* miss -- no larger than the paper's 1364 µs bound
    # (= hit + up to 30 cost units)
    for wid in ("1", "6", "7", "8", "9", "10"):
        assert by_id[wid].candidate.p99_latency_us <= PAPER_LATENCY_MODEL.read_latency_us(30), wid

    # RUBiS/TPC-W LRU tails reach deep into the mid/high bands (their key
    # populations are mid/high-heavy)
    for wid in ("2", "3"):
        assert by_id[wid].baseline.p99_latency_us > PAPER_LATENCY_MODEL.read_latency_us(100), wid

    # GD-Wheel's tail is strictly better on every cost-varied workload
    for wid in ("1", "2", "3", "5", "6", "7", "8", "9", "10"):
        assert (
            by_id[wid].candidate.p99_latency_us
            < by_id[wid].baseline.p99_latency_us
        ), wid

    # random-cost workload: both tails are misses but GD-Wheel's are far
    # cheaper (paper: 4136 µs vs 14476 µs)
    assert (
        by_id["5"].candidate.p99_latency_us
        < 0.6 * by_id["5"].baseline.p99_latency_us
    )

    # uniform-cost control unchanged
    assert abs(by_id["4"].tail_reduction_pct) < 5

    varied = [c for c in comps if c.workload_id != "4"]
    avg = sum(c.tail_reduction_pct for c in varied) / len(varied)
    assert avg > 35  # paper: 69%; tail percentiles sit on band edges at
    # simulation scale, so the magnitude (not the decimal) is the check
