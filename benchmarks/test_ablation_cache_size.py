"""A-6 — ablation: GD-Wheel's benefit as a function of cache size.

The paper evaluates at a fixed ~95% hit rate (a 25 GB cache).  This
ablation sweeps the cache size with everything else fixed and maps where
cost-awareness matters:

* tiny caches (high miss rate): every policy misses constantly; keeping
  expensive items still helps, but hits are rare either way;
* the paper's regime (~90-97% hit rate): large relative reductions —
  misses are the tail, and choosing *which* tail costs 3-10x;
* cache >= working set: no evictions, no policy differences at all.
"""

import pytest

from repro.experiments.report import render_table
from repro.sim import SimConfig, run_simulation
from repro.workloads import SINGLE_SIZE_WORKLOADS

#: swept cache sizes (bytes); the key universe is held fixed
MEMORY_SIZES = tuple(mb * 1024 * 1024 for mb in (1, 2, 4, 8, 16))
NUM_KEYS = 24_000
NUM_REQUESTS = 60_000

_cells = {}


def run_cell(policy: str, memory: int):
    cell = (policy, memory)
    if cell not in _cells:
        _cells[cell] = run_simulation(
            SimConfig(
                spec=SINGLE_SIZE_WORKLOADS["1"],
                policy=policy,
                memory_limit=memory,
                slab_size=64 * 1024,
                num_requests=NUM_REQUESTS,
                num_keys=NUM_KEYS,
            )
        )
    return _cells[cell]


@pytest.mark.parametrize("memory", MEMORY_SIZES)
def test_sweep_cell(benchmark, memory):
    result = benchmark.pedantic(
        lambda: (run_cell("lru", memory), run_cell("gd-wheel", memory)),
        rounds=1,
        iterations=1,
    )
    lru, wheel = result
    assert lru.num_keys == wheel.num_keys == NUM_KEYS


def test_cache_size_sweep_report(emit, benchmark):
    rows = benchmark.pedantic(lambda: _build_rows(), rounds=1, iterations=1)
    emit(
        "ablation_cache_size",
        render_table(
            ["cache MB", "LRU hit %", "LRU cost", "GD-Wheel cost",
             "reduction %"],
            rows,
            title="A-6: cost reduction vs cache size (fixed 24k-key universe)",
        ),
    )

    reductions = {row[0]: row[4] for row in rows}
    hit_rates = {row[0]: row[1] for row in rows}

    # the largest cache holds the whole universe: no evictions, no benefit
    assert hit_rates[16] > 99.0
    assert abs(reductions[16]) < 2.0

    # every pressured cache shows a real reduction
    for mb in (1, 2, 4, 8):
        assert reductions[mb] > 25.0, (mb, reductions[mb])

    # the paper's regime (the largest still-pressured cache) is at least as
    # good as the most-starved cache — benefit doesn't decay as pressure
    # falls until evictions vanish entirely
    assert reductions[8] >= reductions[1] - 10.0


def _build_rows():
    rows = []
    for memory in MEMORY_SIZES:
        lru = run_cell("lru", memory)
        wheel = run_cell("gd-wheel", memory)
        lru_cost = lru.total_recomputation_cost
        wheel_cost = wheel.total_recomputation_cost
        reduction = (
            100.0 * (lru_cost - wheel_cost) / lru_cost if lru_cost else 0.0
        )
        rows.append(
            [
                memory // (1024 * 1024),
                lru.hit_rate * 100,
                lru_cost,
                wheel_cost,
                reduction,
            ]
        )
    return rows
