"""E-F13 — Figure 13: average read latency, multi-size workloads.

Paper shape: the original rebalancer never moves slabs, so GD-Wheel+Orig
improves only slightly over LRU+Orig (within-class cost variation only);
GD-Wheel with the cost-aware rebalancer improves much more (avg 37%,
max 56% vs LRU+Orig).
"""

from repro.experiments.multi_size import fig13_report, fig13_rows


def test_fig13_multisize_avg_latency(multi_suite, emit, benchmark):
    rows = benchmark.pedantic(
        lambda: fig13_rows(multi_suite), rounds=1, iterations=1
    )
    emit("fig13", fig13_report(multi_suite))

    for wid, _name, lru_orig, wheel_orig, wheel_new, reduction in rows:
        # ordering: LRU+Orig >= GD-Wheel+Orig >= GD-Wheel+New (some slack
        # for the small within-class effect)
        assert wheel_new < lru_orig, wid
        assert wheel_new <= wheel_orig * 1.02, wid
        assert wheel_orig <= lru_orig * 1.05, wid
        # the full stack gives a substantial reduction
        assert reduction > 20, (wid, reduction)

    avg = sum(r[5] for r in rows) / len(rows)
    assert 25 < avg < 65  # paper: 37% avg, 56% max
