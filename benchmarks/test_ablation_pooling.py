"""A-5 — ablation: single cost-aware pool vs Facebook-style static pools.

Quantifies Section 2.2's argument: static cost-partitioned pools sized by
"prior usage analysis" waste memory when the workload mix shifts, while a
single pool with cost-aware replacement re-arbitrates continuously.
"""

from repro.cluster import pooling_report, run_pooling_comparison

_results = {}


def get_results():
    if not _results:
        _results["r"] = run_pooling_comparison()
    return _results["r"]


def test_pooling_comparison(benchmark, emit):
    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    emit("ablation_pooling", pooling_report(results))

    single = results["single-gdwheel"]
    parts = results["partitioned-lru"]

    # same-memory single cost-aware pool wins overall...
    assert single.total_cost < parts.total_cost

    # ...and the static partition's disadvantage explodes after the mix
    # shifts away from what it was provisioned for
    gap1 = parts.phases[0].total_recomputation_cost / max(
        single.phases[0].total_recomputation_cost, 1
    )
    gap2 = parts.phases[1].total_recomputation_cost / max(
        single.phases[1].total_recomputation_cost, 1
    )
    assert gap2 > gap1
    assert gap2 > 2.0  # the shifted phase is where partitioning really loses
