"""FROZEN pre-transport-overhaul serving stack — benchmark baseline only.

This is the ``asyncio.start_server``/StreamReader/StreamWriter transport
exactly as it shipped before the BufferedProtocol overhaul: the server's
per-connection handler task reads chunks, feeds the parser, and drains
on a cork threshold; the client writes a batch and awaits each response
under a per-response ``asyncio.wait_for``.  The live code moved to
low-level transports; this copy exists so the transport A/B in
``run_net_bench.py`` always measures against the identical old wire
path, the same way PR 5/6/9 froze their baselines.

Do not "fix" or modernize this file — its value is that it does not
change.  Retry/breaker/tracing machinery that is disabled in benchmark
runs is elided; the hot path (read loop, parser feed, cork/drain logic,
pool semantics) is verbatim.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.kvstore.store import KVStore
from repro.obs.registry import MetricsRegistry
from repro.protocol.commands import GetResponse, MultiGetCommand, ProtocolError
from repro.protocol.server import StoreConnection, StoreServer
from repro.protocol.text import ResponseParser, encode_command_into

READ_SIZE = 65536
CORK_BYTES = 64 * 1024


class FrozenStreamsServer:
    """The old streams server's unprotected fast path, verbatim."""

    def __init__(self, store: KVStore, host: str = "127.0.0.1", port: int = 0) -> None:
        self.engine = StoreServer(store)
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        # same accounting the old server paid per read/write
        self.metrics = MetricsRegistry()
        self._bytes_in = self.metrics.counter(
            "server_bytes_in_total", help="request bytes received",
            transport="frozen-streams",
        )
        self._bytes_out = self.metrics.counter(
            "server_bytes_out_total", help="response bytes sent",
            transport="frozen-streams",
        )

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def address(self) -> Tuple[str, int]:
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()
        self._writers.clear()

    async def __aenter__(self) -> "FrozenStreamsServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._writers.add(writer)
        connection = StoreConnection(self.engine)
        try:
            undrained = 0
            while connection.open:
                data = await reader.read(READ_SIZE)
                if not data:
                    break
                self._bytes_in.inc(len(data))
                response = connection.feed(data)
                if response:
                    self._bytes_out.inc(len(response))
                    writer.write(response)
                    undrained += len(response)
                    if undrained >= CORK_BYTES:
                        await writer.drain()
                        undrained = 0
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class _FrozenConnection:
    """The old ``_Connection``: streams + per-response wait_for."""

    __slots__ = ("reader", "writer", "parser", "scratch")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.parser = ResponseParser()
        self.scratch = bytearray()

    async def execute(self, commands: Sequence[object], timeout: Optional[float]) -> List[object]:
        scratch = self.scratch
        del scratch[:]
        for command in commands:
            encode_command_into(scratch, command)
        self.writer.write(bytes(scratch))
        if len(scratch) >= CORK_BYTES:
            await self.writer.drain()
        responses = []
        for _ in commands:
            responses.append(
                await asyncio.wait_for(self._next_response(), timeout)
            )
        return responses

    async def _next_response(self):
        while True:
            response = self.parser.try_parse()
            if response is not None:
                return response
            data = await self.reader.read(READ_SIZE)
            if not data:
                raise ConnectionError("server closed the connection")
            self.parser.feed(data)

    async def aclose(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class FrozenStreamsClient:
    """The old pooled client's hot path: semaphore-bounded idle deque,
    one pipelined batch per checkout, MGET framing for ``get_many``."""

    def __init__(self, host: str, port: int, pool_size: int = 4,
                 timeout: Optional[float] = 5.0) -> None:
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.timeout = timeout
        self._idle: Deque[_FrozenConnection] = deque()
        self._slots: Optional[asyncio.Semaphore] = None

    def _semaphore(self) -> asyncio.Semaphore:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.pool_size)
        return self._slots

    async def _dial(self) -> _FrozenConnection:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        return _FrozenConnection(reader, writer)

    async def execute(self, commands: Sequence[object]) -> List[object]:
        slots = self._semaphore()
        await slots.acquire()
        connection: Optional[_FrozenConnection] = None
        try:
            connection = self._idle.popleft() if self._idle else await self._dial()
            responses = await connection.execute(commands, self.timeout)
            self._idle.append(connection)
            return responses
        except (ConnectionError, OSError, asyncio.TimeoutError):
            if connection is not None:
                await connection.aclose()
            raise
        finally:
            slots.release()

    async def get_many(self, keys: Sequence[bytes]) -> Dict[bytes, bytes]:
        if not keys:
            return {}
        result = await self.execute([MultiGetCommand(keys=tuple(keys))])
        response = result[0]
        if not isinstance(response, GetResponse):
            raise ProtocolError(f"unexpected MGET response: {response!r}")
        return {v.key: v.value for v in response.values}

    async def set_many(self, items) -> int:
        from repro.protocol.commands import (
            MultiSetCommand,
            MultiSetResponse,
            StoreCommand,
        )

        command = MultiSetCommand(
            items=tuple(
                StoreCommand(verb="set", key=key, flags=0, exptime=0,
                             value=value, cost=cost)
                for key, value, cost in items
            )
        )
        result = await self.execute([command])
        response = result[0]
        if not isinstance(response, MultiSetResponse):
            raise ProtocolError(f"unexpected MSET response: {response!r}")
        return sum(1 for s in response.statuses if s == b"STORED")

    async def aclose(self) -> None:
        while self._idle:
            await self._idle.popleft().aclose()

    async def __aenter__(self) -> "FrozenStreamsClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
