"""Tracing overhead guard: tracer at 1-in-100 vs tracing disabled.

The tracing contract (DESIGN.md §12): with no tracer attached nothing
runs, and with the default 1-in-100 head sample an unsampled request pays
one counter bump plus two ``perf_counter`` reads client-side and one
attribute check server-side.  This benchmark holds the *enabled* path to
that: the same closed-loop GET workload is driven over loopback with
tracing off and with both ends tracing at ``sample_interval=100``, and
the traced run must stay within 3% of the untraced throughput.

Sized by ``TRACE_OVERHEAD_OPS`` (default 8_000) and
``TRACE_OVERHEAD_ROUNDS`` (default 5); raise them locally for a
low-variance measurement.  The arms are interleaved and best-of-N
compared so host-load drift hits both symmetrically.

Marked ``slow`` so quick local runs can deselect it with ``-m 'not slow'``.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.aio import AsyncStoreClient, AsyncTCPStoreServer
from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.obs.tracing import Tracer

pytestmark = pytest.mark.slow

TOTAL_OPS = int(os.environ.get("TRACE_OVERHEAD_OPS", "8000"))
ROUNDS = int(os.environ.get("TRACE_OVERHEAD_ROUNDS", "5"))
NUM_KEYS = 1_000
CONCURRENCY = 4
VALUE = b"v" * 100
#: traced-at-1/100 throughput must stay within this fraction of untraced
MAX_OVERHEAD = 0.03
SAMPLE_INTERVAL = 100


def make_store() -> KVStore:
    return KVStore(
        memory_limit=8 * 1024 * 1024,
        slab_size=64 * 1024,
        policy_factory=GDWheelPolicy,
    )


def measure(traced: bool) -> float:
    """One closed-loop GET run over loopback; returns ops/s."""
    keys = [f"key-{i:05d}".encode() for i in range(NUM_KEYS)]

    async def main() -> float:
        store = make_store()
        server_tracer = (
            Tracer(process="server", sample_interval=SAMPLE_INTERVAL)
            if traced else None
        )
        client_tracer = (
            Tracer(process="client", sample_interval=SAMPLE_INTERVAL)
            if traced else None
        )
        if server_tracer is not None:
            server_tracer.instrument_store(store)
        async with AsyncTCPStoreServer(store, tracer=server_tracer) as server:
            host, port = server.address
            client = AsyncStoreClient(
                host, port, pool_size=CONCURRENCY, tracer=client_tracer
            )
            for key in keys:
                await client.set(key, VALUE, cost=3)

            per_worker = TOTAL_OPS // CONCURRENCY

            async def worker(offset: int) -> None:
                get = client.get
                for i in range(per_worker):
                    await get(keys[(offset + i * 7) % NUM_KEYS])

            loop = asyncio.get_running_loop()
            start = loop.time()
            await asyncio.gather(*(worker(i * 251) for i in range(CONCURRENCY)))
            elapsed = loop.time() - start
            await client.aclose()
            if traced:
                # sanity: the sampler actually fired, so the traced arm
                # really paid for span recording on ~1% of requests
                assert len(client_tracer.buffer) > 0
            return per_worker * CONCURRENCY / elapsed

    return asyncio.run(main())


def test_trace_overhead_under_three_percent(emit):
    # interleave the arms, compare best-of-N (least-disturbed run each)
    untraced_runs, traced_runs = [], []
    for _ in range(ROUNDS):
        untraced_runs.append(measure(traced=False))
        traced_runs.append(measure(traced=True))
    baseline = max(untraced_runs)
    traced = max(traced_runs)
    overhead = 1.0 - traced / baseline
    emit(
        "trace_overhead",
        "== tracing overhead guard ==\n"
        f"ops per run        {TOTAL_OPS}  (best of {ROUNDS})\n"
        f"tracing disabled   {baseline:12,.0f} ops/s\n"
        f"traced @ 1/{SAMPLE_INTERVAL}     {traced:12,.0f} ops/s\n"
        f"overhead           {overhead:+.1%}  (budget {MAX_OVERHEAD:.0%})",
    )
    assert traced >= (1.0 - MAX_OVERHEAD) * baseline, (
        f"traced throughput {traced:,.0f} ops/s is more than "
        f"{MAX_OVERHEAD:.0%} below the untraced baseline {baseline:,.0f}"
    )
