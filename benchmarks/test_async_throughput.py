"""Threaded vs. asyncio server throughput at 1 / 8 / 64 connections.

The paper's Figure 8 measures memcached throughput under 8 closed-loop
clients; this benchmark compares our two serving stacks on the same
workload shape over loopback.  The threaded server pays one OS thread per
connection; the asyncio server multiplexes the whole fan-in on one loop
with pipelined batches, which is where the gap opens as connections grow.

Marked ``slow`` so CI (and quick local runs) can deselect it with
``-m 'not slow'``.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.aio import AsyncTCPStoreServer, run_closed_loop
from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.protocol import CostAwareClient, TCPStoreServer
from repro.workloads import SINGLE_SIZE_WORKLOADS

pytestmark = pytest.mark.slow

CONNECTION_COUNTS = (1, 8, 64)
OPS_PER_CONNECTION = 600
BATCH = 16
NUM_KEYS = 2_000


def make_store() -> KVStore:
    return KVStore(
        memory_limit=32 * 1024 * 1024,
        slab_size=64 * 1024,
        policy_factory=GDWheelPolicy,
    )


def threaded_ops_per_sec(connections: int) -> float:
    """Closed-loop sync clients, one thread per connection."""
    workload = SINGLE_SIZE_WORKLOADS["1"].materialize(NUM_KEYS, seed=9)
    with TCPStoreServer(make_store()) as server:
        host, port = server.address
        warm = CostAwareClient.tcp(host, port)
        for key_id in workload.warmup_order():
            warm.set(
                workload.key_bytes(key_id),
                workload.value_of(key_id),
                cost=workload.cost_of(key_id),
            )
        warm.close()
        barrier = threading.Barrier(connections + 1)
        done = threading.Barrier(connections + 1)

        def worker(worker_id: int) -> None:
            client = CostAwareClient.tcp(host, port)
            key_ids = workload.sample_requests(OPS_PER_CONNECTION)
            barrier.wait()
            for start in range(0, OPS_PER_CONNECTION, BATCH):
                chunk = key_ids[start : start + BATCH]
                client.get_many([workload.key_bytes(int(k)) for k in chunk])
            done.wait()
            client.close()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(connections)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        done.wait()
        elapsed = time.perf_counter() - started
        for thread in threads:
            thread.join(timeout=10)
    return connections * OPS_PER_CONNECTION / elapsed


def async_ops_per_sec(connections: int) -> float:
    """The asyncio stack under the closed-loop load generator."""
    workload = SINGLE_SIZE_WORKLOADS["1"].materialize(NUM_KEYS, seed=9)

    async def main() -> float:
        async with AsyncTCPStoreServer(make_store()) as server:
            host, port = server.address
            report = await run_closed_loop(
                host, port, workload,
                total_ops=connections * OPS_PER_CONNECTION,
                concurrency=connections, batch_size=BATCH,
                read_fraction=1.0, set_on_miss=False, seed=9,
            )
            return report.throughput

    return asyncio.run(main())


def test_threaded_vs_async_throughput(emit):
    lines = [
        "Throughput over loopback, pipelined GET batches of "
        f"{BATCH} ({OPS_PER_CONNECTION} ops/connection):",
        "",
        f"{'conns':>6} {'threaded ops/s':>16} {'asyncio ops/s':>16} {'ratio':>7}",
    ]
    for connections in CONNECTION_COUNTS:
        threaded = threaded_ops_per_sec(connections)
        async_ = async_ops_per_sec(connections)
        lines.append(
            f"{connections:>6} {threaded:>16,.0f} {async_:>16,.0f} "
            f"{async_ / threaded:>7.2f}"
        )
        assert threaded > 0 and async_ > 0
    emit("async_throughput", "\n".join(lines))
