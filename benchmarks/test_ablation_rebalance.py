"""A-3 — ablation: cost-aware rebalancer aggressiveness.

The paper leaves "the number of slabs moved" open; DESIGN.md fixes it to
``ceil(evicted footprint / donor chunk)`` capped by ``max_slabs_per_move``.
This bench sweeps the cap on a multi-size workload and reports total
recomputation cost and slab-move counts — showing the result is robust to
the knob (the rebalancer converges to the same layout, just faster or
slower).
"""

import pytest

from repro.experiments.report import render_table
from repro.sim import SimConfig, run_simulation
from repro.workloads import MULTI_SIZE_WORKLOADS

CAPS = (1, 2, 4, 8)

SCALE = dict(
    memory_limit=4 * 1024 * 1024,
    slab_size=64 * 1024,
    num_requests=40_000,
)

_results = {}


def run_with_cap(cap):
    if cap not in _results:
        _results[cap] = run_simulation(
            SimConfig(
                spec=MULTI_SIZE_WORKLOADS["3"],
                policy="gd-wheel",
                rebalancer="cost-aware",
                rebalancer_kwargs={"max_slabs_per_move": cap},
                **SCALE,
            )
        )
    return _results[cap]


@pytest.mark.parametrize("cap", CAPS)
def test_rebalance_cap(benchmark, cap):
    result = benchmark.pedantic(lambda: run_with_cap(cap), rounds=1, iterations=1)
    assert result.hit_rate > 0.7


def test_rebalance_ablation_report(emit, benchmark):
    baseline = benchmark.pedantic(
        lambda: run_simulation(
            SimConfig(
                spec=MULTI_SIZE_WORKLOADS["3"],
                policy="gd-wheel",
                rebalancer="none",
                **SCALE,
            )
        ),
        rounds=1,
        iterations=1,
    )
    rows = [["none", 0, baseline.total_recomputation_cost, 100.0]]
    for cap in CAPS:
        result = run_with_cap(cap)
        rows.append(
            [
                f"cap={cap}",
                result.store_stats["slab_moves"],
                result.total_recomputation_cost,
                100.0
                * result.total_recomputation_cost
                / baseline.total_recomputation_cost,
            ]
        )
    emit(
        "ablation_rebalance",
        render_table(
            ["config", "slab moves (measured phase)", "total miss cost", "vs no-rebalance"],
            rows,
            title="A-3: cost-aware rebalancer aggressiveness (TPC-W multi-size)",
        ),
    )
    # every cap beats no rebalancing decisively, and the knob matters
    # far less than having the rebalancer at all
    costs = [r[2] for r in rows[1:]]
    assert max(costs) < 0.7 * baseline.total_recomputation_cost
    assert max(costs) < 2.0 * min(costs)
