"""E-F15 — Figure 15: 99th percentile read latency, multi-size workloads.

Paper shape: GD-Wheel+New reduces p99 by 73% on average (max 83%); on
workload 1 GD-Wheel alone already fixes the tail (80% of keys live in the
cheapest class), while workloads 2 and 3 need the rebalancer for the full
improvement.
"""

from repro.experiments.multi_size import fig15_report, fig15_rows


def test_fig15_multisize_tail(multi_suite, emit, benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig15_rows(multi_suite), rounds=1, iterations=1
    )
    emit("fig15", fig15_report(multi_suite))

    for wid, _name, lru_orig, wheel_orig, wheel_new, reduction in rows:
        assert wheel_new < lru_orig, wid
        assert reduction > 20, (wid, reduction)

    by_id = {r[0]: r for r in rows}
    # workload 1: GD-Wheel alone already captures most of the tail win --
    # 80% of keys live in the cheapest slab class (paper's observation).
    # The effect needs sustained load; below the default scale only the
    # weak ordering is required.
    _, _, lru1, wheel_orig1, wheel_new1, _ = by_id["1"]
    if scale.num_requests >= 100_000:
        assert wheel_orig1 < 0.85 * lru1
    assert wheel_orig1 <= lru1
    assert wheel_new1 <= wheel_orig1

    avg = sum(r[5] for r in rows) / len(rows)
    assert avg > 40  # paper: 73%; band-edge effects cap this at sim scale
