"""Observability overhead guard: instrumented vs NullRegistry throughput.

The whole point of ``repro.obs`` is that it can stay on in production runs;
this benchmark holds it to that.  The same closed-loop asyncio workload is
driven twice over loopback — once against a store/server built with a
:class:`NullRegistry` (every instrument a no-op, timing skipped) and once
fully instrumented (per-op latency histograms, per-command histograms,
eviction trace) — and the instrumented run must stay within 10% of the
baseline's throughput.

Sized by ``OBS_OVERHEAD_OPS`` (default 8_000; CI's smoke step runs 4_000
over 3 rounds); raise it locally (e.g. 100_000) for a low-variance
measurement.  The arms are interleaved and best-of-N runs compared so
host-load drift does not fail the guard.

Marked ``slow`` so quick local runs can deselect it with ``-m 'not slow'``.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.aio import AsyncTCPStoreServer, run_closed_loop
from repro.core import GDWheelPolicy
from repro.kvstore import KVStore
from repro.obs import EventTrace, MetricsRegistry, NullRegistry
from repro.workloads import SINGLE_SIZE_WORKLOADS

pytestmark = pytest.mark.slow

TOTAL_OPS = int(os.environ.get("OBS_OVERHEAD_OPS", "8000"))
ROUNDS = int(os.environ.get("OBS_OVERHEAD_ROUNDS", "5"))
NUM_KEYS = 1_000
CONCURRENCY = 4
BATCH = 16
#: instrumented throughput must stay within this fraction of the baseline
MAX_OVERHEAD = 0.10


def make_store(instrumented: bool) -> KVStore:
    registry = MetricsRegistry() if instrumented else NullRegistry()
    trace = EventTrace() if instrumented else None
    return KVStore(
        memory_limit=8 * 1024 * 1024,
        slab_size=64 * 1024,
        policy_factory=GDWheelPolicy,
        registry=registry,
        trace=trace,
    )


def measure(instrumented: bool) -> float:
    """One serving run; returns ops/s."""
    workload = SINGLE_SIZE_WORKLOADS["1"].materialize(NUM_KEYS, seed=17)

    async def main() -> float:
        store = make_store(instrumented)
        async with AsyncTCPStoreServer(store) as server:
            host, port = server.address
            report = await run_closed_loop(
                host,
                port,
                workload,
                total_ops=TOTAL_OPS,
                concurrency=CONCURRENCY,
                batch_size=BATCH,
                seed=17,
            )
            return report.throughput

    return asyncio.run(main())


def test_instrumentation_overhead_under_ten_percent(emit):
    # interleave the two arms so host-load drift hits both symmetrically,
    # then compare best-of-N (the least-disturbed run of each arm)
    null_runs, instrumented_runs = [], []
    for _ in range(ROUNDS):
        null_runs.append(measure(instrumented=False))
        instrumented_runs.append(measure(instrumented=True))
    baseline = max(null_runs)
    instrumented = max(instrumented_runs)
    overhead = 1.0 - instrumented / baseline
    emit(
        "obs_overhead",
        "== observability overhead guard ==\n"
        f"ops per run       {TOTAL_OPS}  (best of {ROUNDS})\n"
        f"null registry     {baseline:12,.0f} ops/s\n"
        f"instrumented      {instrumented:12,.0f} ops/s\n"
        f"overhead          {overhead:+.1%}  (budget {MAX_OVERHEAD:.0%})",
    )
    assert instrumented >= (1.0 - MAX_OVERHEAD) * baseline, (
        f"instrumented throughput {instrumented:,.0f} ops/s is more than "
        f"{MAX_OVERHEAD:.0%} below the NullRegistry baseline {baseline:,.0f}"
    )
