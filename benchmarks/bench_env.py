"""Shared environment stamping for the ``BENCH_*.json`` writers.

Every benchmark document carries the facts needed to interpret its
numbers on a different machine: the CPU count actually available to this
process (affinity-aware — a 64-core host running us in a 1-core cgroup
reports 1), the Python version, and the platform string.  Scaling
benchmarks additionally attach a note when the machine cannot express the
claim being measured, so a ~1x speedup in the JSON reads as "expected
here", not "regression".
"""

from __future__ import annotations

import os
import platform
from typing import Dict, Optional

#: document marker stamped instead of a speedup when the machine cannot
#: express the scaling claim (fewer cores than parallel participants)
SCALING_UNVERIFIED = "scaling_unverified"


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def environment_facts() -> Dict[str, object]:
    """The ``environment`` block shared by every BENCH_*.json document."""
    return {
        "cpus": available_cpus(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def scaling_note(cpus: int, required: int, subject: str,
                 unaffected: str = "") -> Optional[str]:
    """The small-machine disclaimer, or ``None`` when cores suffice.

    ``subject`` names what time-slices (e.g. "shard processes"); the
    optional ``unaffected`` clause names measurements the reader can still
    trust on this machine.
    """
    if cpus >= required:
        return None
    note = (
        f"only {cpus} CPU(s) available: {subject} time-slice the same "
        f"core(s), so the parallel speedup cannot exceed ~1x here; rerun "
        f"on a >={required}-core machine to observe the scaling claim"
    )
    if unaffected:
        note += f" ({unaffected})"
    return note


def net_config(
    batch_sizes, pipeline_depths, num_keys: int, value_size: int,
    ops_per_mode: int,
) -> Dict[str, object]:
    """The ``config`` block for ``BENCH_net.json`` (net throughput A/B).

    Batch size and pipeline depth are first-class config facts here —
    the batched-wire-protocol claim ("MGET ≥ 1.25x per-key at batch 16")
    is meaningless without them, so every net bench document stamps the
    exact sweep it ran.
    """
    return {
        "batch_sizes": list(batch_sizes),
        "pipeline_depths": list(pipeline_depths),
        "num_keys": num_keys,
        "value_size_bytes": value_size,
        "ops_per_mode": ops_per_mode,
        "transport": "loopback_tcp",
    }


def scaling_verifiable(cpus: int, required: int) -> bool:
    """Whether a multi-process speedup measured here is a *claim* or noise.

    Benchmarks must not stamp speedup numbers into their BENCH_*.json
    documents when this is False — a "0.97x speedup" measured on a 1-core
    container is scheduler churn, not a regression, and a checked-in
    number cannot carry that nuance.  Writers stamp
    :data:`SCALING_UNVERIFIED` instead and omit the speedup fields.
    """
    return cpus >= required
