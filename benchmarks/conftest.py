"""Shared benchmark plumbing.

Every module here regenerates one of the paper's tables or figures.  The
simulation-backed figures share one result cache on disk (populated on the
first run; see ``repro.experiments.cache``), so the whole harness can be run
module-by-module without re-simulating.

Reports are printed (visible with ``pytest -s``) *and* written under
``.repro-results/reports/`` so the regenerated figures survive the run.

Scale comes from ``REPRO_SCALE`` (small / default / large).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.cache import cache_dir
from repro.experiments.scales import active_scale


@pytest.fixture(scope="session")
def scale():
    return active_scale()


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it to .repro-results/reports/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        directory = cache_dir() / "reports"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def prefilled(scale):
    """One parallel pass filling the cache for every simulation suite.

    Both figure grids (and Table 4, which reuses them) read pure cache
    hits afterwards, so the whole harness pays for each cell once — in
    parallel when the machine has cores to spare.
    """
    from repro.experiments.parallel import default_jobs, prefill_suites

    return prefill_suites(scale=scale, jobs=default_jobs())


@pytest.fixture(scope="session")
def single_suite(scale, prefilled):
    """The 10x2 single-size result grid (Figures 9-12, hit-rate parity)."""
    from repro.experiments.single_size import run_single_size_suite

    return run_single_size_suite(scale=scale)


@pytest.fixture(scope="session")
def multi_suite(scale, prefilled):
    """The 3x3 multi-size result grid (Figures 13-15)."""
    from repro.experiments.multi_size import run_multi_size_suite

    return run_multi_size_suite(scale=scale)


@pytest.fixture(scope="session")
def opcost_samples():
    """The Figure 7/8 per-operation cost sweep (measured once per session)."""
    from repro.experiments.opcost_exp import run_opcost_sweep

    return run_opcost_sweep(ops=20_000)
