"""E-F10 — Figure 10: normalized total recomputation cost, 10 workloads.

Paper shape: LRU = 100 everywhere; GD-Wheel cuts total recomputation cost
by at least 66% on every cost-varied workload (avg 74%, max 90%); workload
4 (uniform cost) is unchanged.
"""

from repro.experiments.single_size import comparisons, fig10_report


def test_fig10_recomputation_cost(single_suite, emit, benchmark):
    comps = benchmark.pedantic(
        lambda: comparisons(single_suite), rounds=1, iterations=1
    )
    emit("fig10", fig10_report(comps))
    by_id = {c.workload_id: c for c in comps}

    # every cost-varied workload: a large reduction (paper: >= 66%).
    # RUBiS (75% mid-band keys) and the unstructured random distribution
    # have the least headroom at simulation scale, so they get the looser
    # bound.
    for wid in ("1", "3", "6", "7", "8", "9", "10"):
        assert by_id[wid].cost_reduction_pct > 55, (
            wid,
            by_id[wid].cost_reduction_pct,
        )
    for wid in ("2", "5"):
        assert by_id[wid].cost_reduction_pct > 35, (
            wid,
            by_id[wid].cost_reduction_pct,
        )

    # uniform-cost control: GreedyDual degenerates to LRU
    assert abs(by_id["4"].cost_reduction_pct) < 8

    # aggregate shape vs the paper's avg 74% / max 90%
    varied = [c for c in comps if c.workload_id != "4"]
    avg = sum(c.cost_reduction_pct for c in varied) / len(varied)
    best = max(c.cost_reduction_pct for c in varied)
    assert avg > 55
    assert best > 70
