"""Shard-scaling benchmark: 1/2/4-shard throughput vs a single process.

Measures aggregate pipelined-GET throughput against a
:class:`repro.shard.ShardSupervisor` fleet at several shard counts and
writes the results (plus environment facts needed to interpret them) to
``BENCH_shard.json``.

Method
------
Every configuration is driven by the *same* fixed set of load-generator
processes (default 4), so the client side is held constant while the
server side scales.  Each driver process builds a
:class:`~repro.shard.ShardRouter` over the fleet's endpoints, opens one
routed :class:`~repro.aio.pool.AsyncStorePool`, and runs a closed loop of
pipelined ``multi_get`` batches over its own Zipf-sampled key stream.  A
``multiprocessing.Barrier`` releases all drivers at once; the parent
stamps the wall clock around the barrier release and the last driver
report, so aggregate throughput is honest under overload (closed loop:
offered load adapts to service rate).

The cache is warmed with the full key universe before timing, and each
shard gets the full per-shard memory limit, so the timed phase is ~100%
hits — this isolates *serving* scalability (the paper's Figure 8 axis)
from eviction behaviour, which is covered by the simulation benchmarks.

Interpretation on small machines
--------------------------------
Shared-nothing sharding buys throughput only when shards land on
distinct cores.  On a 1-CPU container, N worker processes time-slice one
core and N-shard throughput can only match (or slightly trail, from
scheduler churn) the single-process number.  The JSON therefore records
``environment.cpus``; ``tests``/CI assert the >=2.5x 4-shard speedup
only when at least 4 cores are actually available.

Run it::

    PYTHONPATH=src python benchmarks/run_shard_bench.py --out BENCH_shard.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from bench_env import (
    SCALING_UNVERIFIED,
    available_cpus,
    environment_facts,
    scaling_note,
    scaling_verifiable,
)
from repro.shard import ShardRouter, ShardSupervisor
from repro.sim.histogram import LatencyHistogram
from repro.workloads import SINGLE_SIZE_WORKLOADS

DEFAULT_SHARD_COUNTS = (1, 2, 4)
DEFAULT_DRIVERS = 4
DEFAULT_OPS_PER_DRIVER = 8_000
DEFAULT_BATCH = 16
DEFAULT_KEYS = 4_000
DEFAULT_WORKLOAD = "1"
#: generous per-shard budget so the warmed universe always fits (pure-GET
#: timed phase => ~100% hits; serving scalability, not eviction, is measured)
PER_SHARD_MEMORY = 32 * 1024 * 1024
SLAB_SIZE = 256 * 1024


def _driver_main(
    driver_id: int,
    endpoints: Dict[str, Tuple[str, int]],
    workload_id: str,
    num_keys: int,
    ops: int,
    batch: int,
    seed: int,
    barrier,
    queue,
) -> None:
    """One load-generator process: closed-loop routed GET batches.

    Keys are deterministic functions of the key id (seed-independent), so
    drivers share the warmed universe while sampling independent Zipf
    request streams (``seed`` differs per driver).
    """
    workload = SINGLE_SIZE_WORKLOADS[workload_id].materialize(num_keys, seed=seed)
    key_ids = workload.sample_requests(ops)
    keys: List[bytes] = [workload.key_bytes(int(k)) for k in key_ids]
    router = ShardRouter(endpoints)

    async def run() -> Dict[str, float]:
        perf_counter = time.perf_counter
        histogram = LatencyHistogram(max_value=1e9, sub_buckets=32)
        pool = router.connect_pool(pool_size=2)
        async with pool:
            # prime every connection before the barrier so the timed
            # phase measures serving, not TCP setup
            await pool.multi_get(keys[:batch])
            barrier.wait()
            hits = 0
            done = 0
            started = perf_counter()
            while done < ops:
                chunk = keys[done : done + batch]
                batch_start = perf_counter()
                found = await pool.multi_get(chunk)
                histogram.record((perf_counter() - batch_start) * 1e6)
                for key in chunk:  # per requested key: Zipf repeats count
                    if key in found:
                        hits += 1
                done += len(chunk)
            duration = perf_counter() - started
        return {
            "driver": driver_id,
            "operations": done,
            "hits": hits,
            "duration_seconds": duration,
            "histogram": histogram,
        }

    queue.put(asyncio.run(run()))


async def _warm(supervisor: ShardSupervisor, workload) -> None:
    pool = supervisor.connect_pool()
    async with pool:
        order = workload.warmup_order()
        for start in range(0, len(order), 64):
            chunk = order[start : start + 64]
            await pool.multi_set(
                [
                    (
                        workload.key_bytes(int(k)),
                        workload.value_of(int(k)),
                        workload.cost_of(int(k)),
                    )
                    for k in chunk
                ]
            )


def measure_config(
    shards: int,
    drivers: int = DEFAULT_DRIVERS,
    ops_per_driver: int = DEFAULT_OPS_PER_DRIVER,
    batch: int = DEFAULT_BATCH,
    num_keys: int = DEFAULT_KEYS,
    workload_id: str = DEFAULT_WORKLOAD,
    seed: int = 11,
) -> Dict[str, object]:
    """Throughput + tail latency for one shard count (real processes)."""
    workload = SINGLE_SIZE_WORKLOADS[workload_id].materialize(num_keys, seed=seed)
    with ShardSupervisor(
        num_shards=shards,
        memory_limit=PER_SHARD_MEMORY,
        slab_size=SLAB_SIZE,
    ) as supervisor:
        asyncio.run(_warm(supervisor, workload))
        endpoints = supervisor.endpoints()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        barrier = ctx.Barrier(drivers + 1)
        queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=_driver_main,
                args=(
                    i, endpoints, workload_id, num_keys, ops_per_driver,
                    batch, seed * 1000 + i, barrier, queue,
                ),
                daemon=True,
            )
            for i in range(drivers)
        ]
        for process in processes:
            process.start()
        barrier.wait()  # all drivers primed: release and start the clock
        started = time.perf_counter()
        reports = [queue.get() for _ in range(drivers)]
        wall = time.perf_counter() - started
        for process in processes:
            process.join(timeout=30)

    merged = LatencyHistogram(max_value=1e9, sub_buckets=32)
    total_ops = 0
    total_hits = 0
    for report in reports:
        merged.merge(report["histogram"])
        total_ops += report["operations"]
        total_hits += report["hits"]
    return {
        "shards": shards,
        "drivers": drivers,
        "operations": total_ops,
        "wall_seconds": round(wall, 4),
        "ops_per_sec": round(total_ops / wall, 1) if wall > 0 else 0.0,
        "hit_rate": round(total_hits / total_ops, 4) if total_ops else 0.0,
        "batch_latency_us": {
            "mean": round(merged.mean, 1),
            "p50": round(merged.percentile(50), 1),
            "p95": round(merged.percentile(95), 1),
            "p99": round(merged.percentile(99), 1),
        },
        "per_driver_ops_per_sec": [
            round(r["operations"] / r["duration_seconds"], 1)
            for r in sorted(reports, key=lambda r: r["driver"])
        ],
    }


def run_shard_scaling(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    drivers: int = DEFAULT_DRIVERS,
    ops_per_driver: int = DEFAULT_OPS_PER_DRIVER,
    batch: int = DEFAULT_BATCH,
    num_keys: int = DEFAULT_KEYS,
    workload_id: str = DEFAULT_WORKLOAD,
) -> Dict[str, object]:
    """Measure every shard count and assemble the BENCH_shard document."""
    cpus = available_cpus()
    results = []
    for shards in shard_counts:
        result = measure_config(
            shards,
            drivers=drivers,
            ops_per_driver=ops_per_driver,
            batch=batch,
            num_keys=num_keys,
            workload_id=workload_id,
        )
        results.append(result)
        print(
            f"shards={shards}: {result['ops_per_sec']:,.0f} ops/s "
            f"(p99 {result['batch_latency_us']['p99']:,.0f} us/batch)",
            file=sys.stderr,
        )
    verifiable = scaling_verifiable(cpus, max(shard_counts))
    if verifiable:
        baseline = results[0]["ops_per_sec"] or 1.0
        for result in results:
            result["speedup_vs_single"] = round(
                result["ops_per_sec"] / baseline, 3
            )
    document: Dict[str, object] = {
        "benchmark": "shard_scaling",
        "generated_unix": int(time.time()),
        "environment": environment_facts(),
        "config": {
            "workload": workload_id,
            "num_keys": num_keys,
            "drivers": drivers,
            "ops_per_driver": ops_per_driver,
            "batch": batch,
            "per_shard_memory_bytes": PER_SHARD_MEMORY,
            "read_fraction": 1.0,
        },
        "results": results,
    }
    if not verifiable:
        # refuse to stamp a speedup the machine cannot express: raw
        # per-config throughput stays, the scaling *claim* does not
        document["scaling"] = SCALING_UNVERIFIED
    note = scaling_note(cpus, max(shard_counts), "shard processes")
    if note is not None:
        document["note"] = note
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_shard.json",
                        help="output JSON path (default: ./BENCH_shard.json)")
    parser.add_argument("--shards", type=int, nargs="+",
                        default=list(DEFAULT_SHARD_COUNTS))
    parser.add_argument("--drivers", type=int, default=DEFAULT_DRIVERS)
    parser.add_argument("--ops-per-driver", type=int,
                        default=DEFAULT_OPS_PER_DRIVER)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--keys", type=int, default=DEFAULT_KEYS)
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD,
                        choices=sorted(SINGLE_SIZE_WORKLOADS))
    args = parser.parse_args(argv)
    document = run_shard_scaling(
        shard_counts=tuple(args.shards),
        drivers=args.drivers,
        ops_per_driver=args.ops_per_driver,
        batch=args.batch,
        num_keys=args.keys,
        workload_id=args.workload,
    )
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
