"""E-EQ (performance side) — microbenchmarks of the three GreedyDual
implementations plus LRU: touch cost and evict+insert cost at two resident
sizes.  GD-Wheel's advantage over GD-PQ is the whole point of the paper.
"""

import pytest

from repro.core import GDPQPolicy, GDWheelPolicy, LRUPolicy, NaiveGreedyDual, PolicyEntry

SIZES = (4_000, 64_000)


def _filled(factory, n, seed=17):
    policy = factory()
    entries = []
    for i in range(n):
        entry = PolicyEntry(key=i)
        policy.insert(entry, (i * 37) % 450 + 1)
        entries.append(entry)
    return policy, entries


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize(
    "name,factory",
    [
        ("lru", LRUPolicy),
        ("gd-wheel", lambda: GDWheelPolicy(num_queues=256, num_wheels=2)),
        ("gd-pq", GDPQPolicy),
    ],
)
def test_touch(benchmark, name, factory, size):
    policy, entries = _filled(factory, size)
    state = [0]

    def touch():
        state[0] = (state[0] + 7919) % size  # pseudo-random walk
        policy.touch(entries[state[0]])

    benchmark(touch)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize(
    "name,factory",
    [
        ("lru", LRUPolicy),
        ("gd-wheel", lambda: GDWheelPolicy(num_queues=256, num_wheels=2)),
        ("gd-pq", GDPQPolicy),
    ],
)
def test_evict_insert(benchmark, name, factory, size):
    policy, _ = _filled(factory, size)
    counter = [size]

    def evict_insert():
        policy.select_victim()
        entry = PolicyEntry(key=counter[0])
        counter[0] += 1
        policy.insert(entry, (counter[0] * 37) % 450 + 1)

    benchmark(evict_insert)


def test_naive_greedydual_eviction_is_linear(benchmark):
    """The O(n) strawman, for scale: one eviction walks every entry."""
    policy, _ = _filled(NaiveGreedyDual, 4_000)
    counter = [4_000]

    def evict_insert():
        policy.select_victim()
        entry = PolicyEntry(key=counter[0])
        counter[0] += 1
        policy.insert(entry, (counter[0] * 37) % 450 + 1)

    benchmark(evict_insert)
