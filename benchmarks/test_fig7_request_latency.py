"""E-F7 — Figure 7: average GET/SET request latencies vs cache size.

The paper's shape: GET latency is flat for every policy (the replacement
update happens after the response); SET latency is flat for LRU and
GD-Wheel but grows with cache size for GD-PQ (O(log n) priority queue).
"""

import pytest

from repro.core import GDPQPolicy, GDWheelPolicy, LRUPolicy
from repro.experiments.opcost_exp import DEFAULT_SIZES, fig7_report, fig7_rows
from repro.sim.opcost import measure_policy_opcost

SMALL, LARGE = DEFAULT_SIZES[0], DEFAULT_SIZES[-1]


@pytest.mark.parametrize(
    "name,factory",
    [
        ("lru", LRUPolicy),
        ("gd-wheel", lambda: GDWheelPolicy(num_queues=256, num_wheels=2)),
        ("gd-pq", GDPQPolicy),
    ],
)
def test_set_side_policy_work(benchmark, name, factory):
    """pytest-benchmark measurement of one evict+insert at the largest
    cache size — the SET-latency component Figure 7 varies."""
    policy = factory()
    entries = []
    from repro.core import PolicyEntry

    for i in range(LARGE):
        entry = PolicyEntry(key=i)
        policy.insert(entry, (i * 37) % 450 + 1)
        entries.append(entry)
    counter = [LARGE]

    def evict_insert():
        policy.select_victim()
        entry = PolicyEntry(key=counter[0])
        counter[0] += 1
        policy.insert(entry, (counter[0] * 37) % 450 + 1)

    benchmark(evict_insert)


def test_fig7_shape_and_report(opcost_samples, emit, benchmark):
    def build():
        return fig7_rows(opcost_samples)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig7", fig7_report(opcost_samples))

    by_cell = {(r[0], r[2]): r for r in rows}
    sizes = sorted({r[2] for r in rows})

    # GET latency is identical across policies and sizes (the replacement
    # update happens after the response is sent)
    gets = {r[3] for r in rows}
    assert len(gets) == 1

    # At every cache size, GD-PQ's SET-side replacement work clearly
    # exceeds GD-Wheel's and LRU's (the paper's level separation)
    for size in sizes:
        pq = by_cell[("gd-pq", size)][5]
        assert pq > 1.2 * by_cell[("gd-wheel", size)][5], size
        assert pq > 1.2 * by_cell[("lru", size)][5], size

    # GD-PQ grows across the 64x span; LRU and GD-Wheel stay flat (within
    # a noise band).  Compare the two largest against the two smallest to
    # damp residual jitter.
    def band(policy):
        work = [by_cell[(policy, s)][5] for s in sizes]
        small = (work[0] + work[1]) / 2
        large = (work[-2] + work[-1]) / 2
        return large / small

    assert band("gd-pq") > 1.0
    # flat == within a +-60% noise band across a 64x size span
    assert 0.4 < band("gd-wheel") < 1.6
    assert 0.4 < band("lru") < 1.6
