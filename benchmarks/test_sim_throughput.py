"""Simulation-throughput guard: the hot-path pass must actually pay off.

Runs the checked-in ``run_sim_bench`` harness — A/B-interleaved live
driver vs the frozen pre-optimization loop, plus a serial-vs-parallel
grid pass — and writes the measured document to ``BENCH_sim.json`` at the
repo root, so regenerating the committed numbers is one pytest (or one
``python benchmarks/run_sim_bench.py``) away.

Two bars, guarded honestly:

* the *driver* bar (mean >=1.25x over the frozen loop) is single-process
  and asserted everywhere;
* the *grid* bar (>=2.5x at ``jobs=4``) is a scaling claim that needs
  four cores for four workers to land on, so — exactly like
  ``test_shard_scaling.py`` — it is gated on ``available_cpus() >= 4``;
  on smaller machines the harness still runs and records the raw wall
  times, but refuses to stamp a ``speedup`` — the grid block instead
  carries ``"scaling": "scaling_unverified"`` plus an explanatory note.

Neither number is trusted before the equivalence checks pass: frozen vs
live results byte-identical per policy, serial vs parallel grids
byte-identical per cell.

Scale knobs for CI: ``SIM_BENCH_REQUESTS``, ``SIM_BENCH_KEYS``,
``SIM_BENCH_ROUNDS``, ``SIM_BENCH_GRID_REQUESTS``.

Marked ``slow`` so tier-1 runs (and ``-m 'not slow'``) skip it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from run_sim_bench import available_cpus, run_sim_bench

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent

REQUESTS = int(os.environ.get("SIM_BENCH_REQUESTS", "300000"))
KEYS = int(os.environ.get("SIM_BENCH_KEYS", "30000"))
ROUNDS = int(os.environ.get("SIM_BENCH_ROUNDS", "4"))
GRID_REQUESTS = int(os.environ.get("SIM_BENCH_GRID_REQUESTS", "60000"))


@pytest.fixture(scope="module")
def document():
    return run_sim_bench(
        rounds=ROUNDS,
        num_requests=REQUESTS,
        num_keys=KEYS,
        grid_requests=GRID_REQUESTS,
    )


def test_frozen_and_live_results_identical(document):
    """No speedup counts until the drivers agree bit for bit."""
    for entry in document["driver_ab"]["policies"]:
        assert entry["results_identical"], (
            f"{entry['policy']}: live driver diverged from the frozen loop"
        )


def test_serial_and_parallel_grids_identical(document):
    assert document["grid"]["results_identical"], (
        "parallel grid diverged from the serial loop"
    )


def test_driver_speedup(document):
    """The acceptance bar: mean >=1.25x across policies vs the frozen loop."""
    mean = document["driver_ab"]["mean_speedup"]
    per_policy = {
        e["policy"]: e["speedup"] for e in document["driver_ab"]["policies"]
    }
    assert mean >= 1.25, f"mean driver speedup {mean} < 1.25 ({per_policy})"


def test_grid_scaling_when_cores_allow(document):
    """The parallel bar: >=2.5x at jobs=4 — on >=4 cores."""
    if available_cpus() >= 4:
        speedup = document["grid"]["speedup"]
        assert speedup >= 2.5, f"jobs=4 grid speedup {speedup} < 2.5"
        assert "scaling" not in document["grid"]
    else:
        # time-slicing one core: no speedup claim is stamped at all
        assert "speedup" not in document["grid"]
        assert document["grid"]["scaling"] == "scaling_unverified"
        assert "note" in document


def test_writes_bench_document(document, emit):
    out = REPO_ROOT / "BENCH_sim.json"
    out.write_text(json.dumps(document, indent=2) + "\n")
    lines = [
        f"Simulation driver A/B on {document['environment']['cpus']} CPU(s), "
        f"{document['config']['num_requests']:,} requests x "
        f"{document['config']['rounds']} interleaved rounds:",
        "",
        f"{'policy':>9} {'old req/s':>11} {'new req/s':>11} {'speedup':>8}",
    ]
    for entry in document["driver_ab"]["policies"]:
        lines.append(
            f"{entry['policy']:>9} {entry['old_requests_per_sec']:>11,.0f} "
            f"{entry['new_requests_per_sec']:>11,.0f} "
            f"{entry['speedup']:>8.2f}"
        )
    lines.append(f"{'mean':>9} {'':>11} {'':>11} "
                 f"{document['driver_ab']['mean_speedup']:>8.2f}")
    grid = document["grid"]
    grid_speedup = (
        f"speedup {grid['speedup']:.2f}x"
        if "speedup" in grid else "speedup n/a (scaling_unverified)"
    )
    lines += [
        "",
        f"grid ({grid['cells']} cells): serial {grid['serial_seconds']:.2f}s, "
        f"jobs={grid['jobs']} {grid['parallel_seconds']:.2f}s, "
        f"{grid_speedup}",
    ]
    if "note" in document:
        lines += ["", f"note: {document['note']}"]
    emit("sim_throughput", "\n".join(lines))
