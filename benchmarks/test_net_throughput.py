"""A/B guard for the batched wire protocol (PR 8's tentpole claim).

Runs the net benchmark at reduced scale and asserts the claim that
justifies MGET/MSET existing at all: at batch 16 over loopback, one MGET
frame per batch must deliver >= 1.25x the ops/s of the pipelined
per-key GET path.  Correctness is asserted unconditionally — the harness
compares both modes' results for identical key batches before any clock
starts (``run_net_bench._verify_identical``), so a fast wrong answer
can never pass.

Unlike the multi-process scaling guards, this ratio does not need spare
cores: server and clients share one event loop on one core either way,
and the per-key mode burns strictly more cycles per delivered value.  On
a 1-CPU machine the measured ratio still clears 2.5x, so the 1.25x
floor is applied whenever at least one CPU is available — i.e. always —
but we keep the gate shape of the other bench guards so a future
stricter threshold can hang off ``available_cpus()``.

Marked ``slow``; deselect with ``-m 'not slow'``.
"""

from __future__ import annotations

import os

import pytest

from bench_env import available_cpus
from run_net_bench import run_net_bench

pytestmark = pytest.mark.slow

BATCH = 16
OPS_PER_MODE = int(os.environ.get("NET_BENCH_OPS", 8_000))
NUM_KEYS = 1_000
REQUIRED_SPEEDUP = 1.25


@pytest.fixture(scope="module")
def document():
    return run_net_bench(
        batch_sizes=(BATCH,),
        pipeline_depths=(1,),
        ops_per_mode=OPS_PER_MODE,
        num_keys=NUM_KEYS,
    )


def test_document_shape(document):
    assert document["benchmark"] == "net_throughput"
    assert document["config"]["batch_sizes"] == [BATCH]
    assert document["config"]["pipeline_depths"] == [1]
    assert document["config"]["transport"] == "loopback_tcp"
    assert document["environment"]["cpus"] >= 1
    (result,) = document["results"]
    assert result["batch"] == BATCH
    assert result["pipeline_depth"] == 1


def test_both_modes_measured_on_warm_store(document):
    (result,) = document["results"]
    for mode in ("perkey", "mget"):
        measured = result["modes"][mode]
        assert measured["operations"] >= OPS_PER_MODE
        assert measured["ops_per_sec"] > 0
        # warmed universe, pure GETs: both modes must actually serve hits
        assert measured["hit_rate"] > 0.99
        assert measured["batch_latency_us"]["p50"] > 0


def test_mget_beats_per_key_at_batch_16(document, emit):
    (result,) = document["results"]
    perkey = result["modes"]["perkey"]["ops_per_sec"]
    mget = result["modes"]["mget"]["ops_per_sec"]
    speedup = result["mget_speedup"]
    emit(
        "net_throughput",
        "Batched wire protocol A/B at batch "
        f"{BATCH}, pipeline depth 1 ({available_cpus()} CPU(s)):\n\n"
        f"  per-key GET frames   {perkey:>12,.0f} ops/s\n"
        f"  one MGET per batch   {mget:>12,.0f} ops/s\n"
        f"  speedup              {speedup:>12.2f}x",
    )
    if available_cpus() >= 1:  # see module docstring: always meaningful
        assert speedup >= REQUIRED_SPEEDUP, (
            f"MGET speedup {speedup} < {REQUIRED_SPEEDUP} at batch {BATCH}"
        )
