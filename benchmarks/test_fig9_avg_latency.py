"""E-F9 — Figure 9: average application read access latency, 10 workloads.

Paper shape: GD-Wheel reduces the average read latency on every workload
with cost variation (avg 33%, max 53%); workload 4 (uniform cost) shows no
difference; size-varied workloads (6-9) and the coarse-cost workload (10)
improve about as much as the baseline.
"""

from repro.experiments.single_size import comparisons, fig9_report


def test_fig9_average_latency(single_suite, emit, benchmark):
    comps = benchmark.pedantic(
        lambda: comparisons(single_suite), rounds=1, iterations=1
    )
    emit("fig9", fig9_report(comps))
    by_id = {c.workload_id: c for c in comps}
    assert len(by_id) == 10

    # cost-varied workloads improve substantially
    for wid in ("1", "2", "3", "5", "6", "7", "8", "9", "10"):
        assert by_id[wid].latency_reduction_pct > 10, wid

    # workload 4 (same cost for everything): no benefit to cost-awareness
    assert abs(by_id["4"].latency_reduction_pct) < 5

    # value size doesn't change the story (workloads 6-9 vs baseline 1)
    baseline = by_id["1"].latency_reduction_pct
    for wid in ("6", "7", "8", "9"):
        assert abs(by_id[wid].latency_reduction_pct - baseline) < 20

    # cost precision doesn't change the story (workload 10 vs 1)
    assert abs(by_id["10"].latency_reduction_pct - baseline) < 12

    # the paper's aggregate: average reduction around a third
    avg = sum(c.latency_reduction_pct for c in comps) / len(comps)
    assert 20 < avg < 55
